"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimError, SimInterrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        return sim.now

    assert sim.run_process(proc(sim)) == 5.0
    assert sim.now == 5.0


def test_timeouts_accumulate():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc(sim)) == 4.0


def test_zero_timeout_is_allowed():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.0)
        return "ok"

    assert sim.run_process(proc(sim)) == "ok"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc(sim)) == "payload"


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    assert sim.run_process(proc(sim)) == 42


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(3.0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter(sim):
        value = yield gate
        seen.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(7.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert seen == [(7.0, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim):
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def failer(sim):
        yield sim.timeout(1.0)
        gate.fail(ValueError("boom"))

    proc = sim.process(waiter(sim))
    sim.process(failer(sim))
    sim.run()
    assert proc.value == "caught boom"


def test_event_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimError):
        gate.succeed(2)
    with pytest.raises(SimError):
        gate.fail(ValueError())


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_event_value_unavailable_until_triggered():
    sim = Simulator()
    gate = sim.event()
    with pytest.raises(SimError):
        gate.value


def test_process_waits_on_subprocess():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(4.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (sim.now, result)

    assert sim.run_process(parent(sim)) == (4.0, "child-result")


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.process(lambda: None)


def test_yield_non_event_fails_the_process():
    sim = Simulator()

    def proc(sim):
        yield 3.0

    spawned = sim.process(proc(sim))
    sim.run()  # the loop keeps running; the error is routed into the process
    assert not spawned.is_alive
    assert not spawned.ok
    assert isinstance(spawned.value, SimError)
    assert "yielded 3.0" in str(spawned.value)


def test_yield_non_event_does_not_stall_other_processes():
    sim = Simulator()
    seen = []

    def bad(sim):
        yield "nope"

    def good(sim):
        yield sim.timeout(5.0)
        seen.append(sim.now)

    sim.process(bad(sim))
    sim.process(good(sim))
    sim.run()
    assert seen == [5.0]


def test_yield_non_event_failure_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield object()

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except SimError as exc:
            return f"caught: {exc}"

    result = sim.run_process(parent(sim))
    assert result.startswith("caught: ")


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc(sim):
        values = yield sim.all_of(
            [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        )
        return (sim.now, values)

    assert sim.run_process(proc(sim)) == (3.0, ["slow", "fast"])


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def proc(sim):
        values = yield sim.all_of([])
        return values

    assert sim.run_process(proc(sim)) == []


def test_any_of_returns_first():
    sim = Simulator()

    def proc(sim):
        value = yield sim.any_of(
            [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        )
        return (sim.now, value)

    assert sim.run_process(proc(sim)) == (1.0, "fast")


def test_all_of_with_already_triggered_children():
    sim = Simulator()

    def proc(sim):
        early = sim.timeout(0.0, "early")
        yield sim.timeout(2.0)
        values = yield sim.all_of([early, sim.timeout(1.0, "late")])
        return (sim.now, values)

    assert sim.run_process(proc(sim)) == (3.0, ["early", "late"])


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            hits.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_excludes_boundary_event():
    sim = Simulator()
    hits = []

    def ticker(sim):
        yield sim.timeout(2.0)
        hits.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=2.0)
    assert hits == []
    assert sim.now == 2.0


def test_interrupt_raises_in_process():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except SimInterrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    def attacker(sim, target):
        yield sim.timeout(5.0)
        target.interrupt("reason")

    target = sim.process(victim(sim))
    sim.process(attacker(sim, target))
    sim.run()
    assert target.value == ("interrupted", 5.0, "reason")


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimError):
        proc.interrupt()


def test_process_exception_propagates_via_run_process():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except KeyError:
            return "caught"

    assert sim.run_process(parent(sim)) == "caught"


def test_schedule_callback():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, value="x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 2.0


def test_events_processed_counter_increases():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.run_process(proc(sim))
    assert sim.events_processed >= 3


def test_starved_process_detected_by_run_process():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # nobody will ever trigger this

    with pytest.raises(SimError, match="starved"):
        sim.run_process(stuck(sim))


def test_determinism_of_interleavings():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(sim, tag, delays):
            for delay in delays:
                yield sim.timeout(delay)
                trace.append((sim.now, tag))

        sim.process(proc(sim, "a", [1.0, 2.0, 1.0]))
        sim.process(proc(sim, "b", [2.0, 1.0, 1.0]))
        sim.process(proc(sim, "c", [1.0, 1.0, 2.0]))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


def test_interrupt_of_process_waiting_on_already_fired_event():
    """An interrupt that lands while a process waits on an already-fired
    event is delivered at that wait (detaching the pending direct resume)."""
    sim = Simulator()
    fired = sim.event()
    fired.succeed("early")
    sim.run()  # 'fired' is processed before anyone waits on it
    log = []

    def victim(sim):
        gate = sim.event()
        while True:
            try:
                got = yield gate
                log.append(("got", got))
                return got
            except SimInterrupt as intr:
                log.append(("intr", intr.cause))
                gate = fired  # next wait is on the already-fired event

    def attacker(sim, target, tag):
        yield sim.timeout(1.0)
        target.interrupt(tag)

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v, "one"))
    sim.process(attacker(sim, v, "two"))
    sim.run()
    # First interrupt detaches the pending-event wait; the second cancels
    # the scheduled resume of the fired event; the re-issued wait still
    # observes the fired event's value.
    assert log == [("intr", "one"), ("intr", "two"), ("got", "early")]
    assert v.ok and v.value == "early"


def test_fired_event_value_delivered_before_later_interrupt():
    """A process that yields an already-fired event receives its value
    before an interrupt issued later in the same tick."""
    sim = Simulator()
    fired = sim.event()
    fired.succeed(41)
    sim.run()
    log = []

    def victim(sim):
        yield sim.timeout(1.0)
        try:
            got = yield fired
            log.append(("got", got))
            yield sim.timeout(10.0)
        except SimInterrupt:
            log.append(("intr", sim.now))

    def attacker(sim, target):
        yield sim.timeout(1.0)
        target.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert log == [("got", 41), ("intr", 1.0)]


def test_any_of_with_pre_triggered_member():
    sim = Simulator()

    def proc(sim):
        early = sim.timeout(0.0, "early")
        yield sim.timeout(2.0)
        value = yield sim.any_of([sim.timeout(5.0, "slow"), early])
        return (sim.now, value)

    assert sim.run_process(proc(sim)) == (2.0, "early")


def test_all_of_with_all_pre_triggered_members():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(0.0, "a")
        b = sim.timeout(1.0, "b")
        yield sim.timeout(2.0)
        values = yield sim.all_of([a, b])
        return (sim.now, values)

    assert sim.run_process(proc(sim)) == (2.0, ["a", "b"])


def test_events_processed_stable_across_identical_runs():
    """Two identical runs process exactly the same number of events in the
    same order (deterministic same-time tie-breaking)."""

    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(sim, tag):
            for delay in (1.0, 0.0, 2.0):
                yield sim.timeout(delay)
                trace.append((sim.now, tag, sim.events_processed))
            gate = sim.event()
            sim.schedule(1.0, lambda _v: gate.succeed(tag))
            got = yield gate
            trace.append((sim.now, got, sim.events_processed))

        for tag in ("a", "b", "c"):
            sim.process(worker(sim, tag))
        sim.run()
        return trace, sim.events_processed

    first = build_and_run()
    second = build_and_run()
    assert first == second
    assert first[1] > 0
