"""Unit tests for the statistics collectors."""

import math

import pytest

from repro.sim.stats import (
    Counter,
    OpRecorder,
    SummaryStats,
    TimeWeighted,
    percentile,
)


def test_summary_empty():
    s = SummaryStats()
    assert s.n == 0
    assert s.variance == 0.0


def test_summary_mean_min_max_total():
    s = SummaryStats()
    for x in [2.0, 4.0, 6.0]:
        s.add(x)
    assert s.n == 3
    assert s.mean == pytest.approx(4.0)
    assert s.min == 2.0
    assert s.max == 6.0
    assert s.total == pytest.approx(12.0)


def test_summary_variance_matches_definition():
    samples = [1.0, 2.0, 3.0, 4.0, 10.0]
    s = SummaryStats()
    for x in samples:
        s.add(x)
    mean = sum(samples) / len(samples)
    var = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    assert s.variance == pytest.approx(var)
    assert s.stdev == pytest.approx(math.sqrt(var))


def test_summary_merge_equals_combined():
    left, right, combined = SummaryStats(), SummaryStats(), SummaryStats()
    for x in [1.0, 5.0, 2.0]:
        left.add(x)
        combined.add(x)
    for x in [9.0, 3.0]:
        right.add(x)
        combined.add(x)
    left.merge(right)
    assert left.n == combined.n
    assert left.mean == pytest.approx(combined.mean)
    assert left.variance == pytest.approx(combined.variance)
    assert left.min == combined.min
    assert left.max == combined.max


def test_summary_merge_into_empty():
    left, right = SummaryStats(), SummaryStats()
    right.add(3.0)
    left.merge(right)
    assert left.n == 1
    assert left.mean == 3.0


def test_percentile_basics():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 1.0) == 4.0
    assert percentile(samples, 0.5) == pytest.approx(2.5)


def test_percentile_single_sample():
    assert percentile([7.0], 0.9) == 7.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_counter():
    c = Counter()
    c.incr("a")
    c.incr("a", by=2)
    c.incr("b")
    assert c["a"] == 3
    assert c["b"] == 1
    assert c["missing"] == 0
    assert "a" in c
    assert c.as_dict() == {"a": 3, "b": 1}


def test_op_recorder_means():
    rec = OpRecorder()
    rec.record("create", 2.0)
    rec.record("create", 4.0)
    rec.record("stat", 1.0)
    assert rec.ops() == ["create", "stat"]
    assert rec.mean("create") == pytest.approx(3.0)
    assert rec.count("create") == 2
    assert rec.mean("stat") == 1.0
    assert rec.mean("never") == 0.0
    assert rec.total("create") == pytest.approx(6.0)


def test_op_recorder_samples_and_percentiles():
    rec = OpRecorder(keep_samples=True)
    for x in [1.0, 2.0, 3.0]:
        rec.record("op", x)
    assert rec.samples("op") == [1.0, 2.0, 3.0]
    assert rec.percentile("op", 0.5) == 2.0


def test_op_recorder_samples_disabled():
    rec = OpRecorder()
    rec.record("op", 1.0)
    with pytest.raises(ValueError):
        rec.samples("op")


def test_op_recorder_merge():
    a, b = OpRecorder(), OpRecorder()
    a.record("x", 1.0)
    b.record("x", 3.0)
    b.record("y", 5.0)
    a.merge(b)
    assert a.mean("x") == pytest.approx(2.0)
    assert a.mean("y") == 5.0


def test_time_weighted_average():
    tw = TimeWeighted(t0=0.0, level=0.0)
    tw.update(10.0, 2.0)   # level 0 for 10ms
    tw.update(20.0, 4.0)   # level 2 for 10ms
    # level 4 for 10ms
    assert tw.average(30.0) == pytest.approx((0 * 10 + 2 * 10 + 4 * 10) / 30)
    assert tw.level == 4.0


def test_time_weighted_rejects_backwards_time():
    tw = TimeWeighted()
    tw.update(5.0, 1.0)
    with pytest.raises(ValueError):
        tw.update(4.0, 2.0)
