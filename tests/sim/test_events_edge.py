"""Edge cases of conditions, events and processes."""

import pytest

from repro.sim import SimError, Simulator


def test_all_of_fails_when_child_fails():
    sim = Simulator()

    def failer(sim):
        yield sim.timeout(1.0)
        raise ValueError("child boom")

    def parent(sim):
        try:
            yield sim.all_of([
                sim.timeout(5.0),
                sim.process(failer(sim)),
            ])
        except ValueError as exc:
            return (sim.now, str(exc))

    now, message = sim.run_process(parent(sim))
    assert now == 1.0  # failure propagates before the slow child
    assert message == "child boom"


def test_any_of_failure_first():
    sim = Simulator()

    def failer(sim):
        yield sim.timeout(1.0)
        raise KeyError("fast failure")

    def parent(sim):
        try:
            yield sim.any_of([sim.timeout(3.0), sim.process(failer(sim))])
        except KeyError:
            return "failed-first"

    assert sim.run_process(parent(sim)) == "failed-first"


def test_any_of_with_instant_event():
    sim = Simulator()

    def parent(sim):
        value = yield sim.any_of([sim.timeout(0.0, "now"), sim.timeout(9.0)])
        return value

    assert sim.run_process(parent(sim)) == "now"


def test_nested_all_of():
    sim = Simulator()

    def parent(sim):
        inner = sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        outer = yield sim.all_of([inner, sim.timeout(3.0, "c")])
        return (sim.now, outer)

    now, outer = sim.run_process(parent(sim))
    assert now == 3.0
    assert outer == [["a", "b"], "c"]


def test_process_chain_return_values():
    sim = Simulator()

    def level3(sim):
        yield sim.timeout(1.0)
        return 3

    def level2(sim):
        value = yield sim.process(level3(sim))
        return value + 10

    def level1(sim):
        value = yield sim.process(level2(sim))
        return value + 100

    assert sim.run_process(level1(sim)) == 113


def test_event_triggered_before_yield_is_seen():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def waiter(sim):
        value = yield gate
        return value

    assert sim.run_process(waiter(sim)) == "early"


def test_many_waiters_on_one_event():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter(sim, tag):
        value = yield gate
        got.append((tag, value))

    for tag in range(5):
        sim.process(waiter(sim, tag))
    sim.schedule(2.0, lambda _v: gate.succeed("open"))
    sim.run()
    assert got == [(tag, "open") for tag in range(5)]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    spawned = sim.process(proc(sim))
    assert spawned.is_alive
    sim.run(until=2.0)
    assert spawned.is_alive
    sim.run()
    assert not spawned.is_alive
    assert spawned.ok


def test_run_process_propagates_failure():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("surfaced")

    with pytest.raises(RuntimeError, match="surfaced"):
        sim.run_process(proc(sim))
