"""Unit tests for resources and stores."""

import pytest

from repro.sim import SimError, Simulator
from repro.sim.resources import Resource, Store


def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def proc(sim):
        with res.request() as req:
            yield req
            return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_resource_serializes_single_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def proc(sim, tag):
        with res.request() as req:
            yield req
            start = sim.now
            yield sim.timeout(10.0)
            spans.append((tag, start, sim.now))

    for tag in range(3):
        sim.process(proc(sim, tag))
    sim.run()
    assert spans == [(0, 0.0, 10.0), (1, 10.0, 20.0), (2, 20.0, 30.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    finish = []

    def proc(sim, tag):
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)
            finish.append((tag, sim.now))

    for tag in range(4):
        sim.process(proc(sim, tag))
    sim.run()
    assert finish == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(sim, tag, arrival):
        yield sim.timeout(arrival)
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(5.0)

    sim.process(proc(sim, "first", 0.0))
    sim.process(proc(sim, "second", 1.0))
    sim.process(proc(sim, "third", 2.0))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimError):
        Resource(sim, capacity=0)


def test_release_of_unknown_request_is_error():
    sim = Simulator()
    res_a = Resource(sim)
    res_b = Resource(sim)
    req = res_a.request()
    with pytest.raises(SimError):
        res_b.release(req)


def test_release_of_queued_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    assert holder.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while still queued
    res.release(holder)
    assert res.count == 0


def test_acquire_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def proc(sim):
        req = yield from res.acquire()
        yield sim.timeout(1.0)
        res.release(req)
        return sim.now

    assert sim.run_process(proc(sim)) == 1.0


def test_resource_count_property():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1 = res.request()
    assert res.count == 1
    res.request()
    assert res.count == 2
    res.release(r1)
    assert res.count == 1


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")

    def proc(sim):
        first = yield store.get()
        second = yield store.get()
        return [first, second]

    assert sim.run_process(proc(sim)) == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim):
        item = yield store.get()
        return (sim.now, item)

    def producer(sim):
        yield sim.timeout(3.0)
        store.put("late")

    consumer_proc = sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert consumer_proc.value == (3.0, "late")


def test_store_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(sim):
        yield sim.timeout(1.0)
        store.put("x")
        store.put("y")

    sim.process(consumer(sim, 0))
    sim.process(consumer(sim, 1))
    sim.process(producer(sim))
    sim.run()
    assert got == [(0, "x"), (1, "y")]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1
