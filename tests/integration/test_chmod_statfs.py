"""chmod/chown/statfs across both systems (paper §III-C attribute set)."""

import pytest

from repro.pfs import FsError
from tests.core.conftest import MountedCofs
from tests.pfs.conftest import MountedPfs


@pytest.fixture(params=["pfs", "cofs"])
def system(request):
    if request.param == "pfs":
        host = MountedPfs(2)
        return host, host.clients[0], host.clients[1]
    host = MountedCofs(2)
    return host, host.mounts[0], host.mounts[1]


def test_chmod_visible_across_nodes(system):
    host, fs, fs2 = system

    def main():
        fh = yield from fs.create("/f", mode=0o644)
        yield from fs.close(fh)
        yield from fs.chmod("/f", 0o600)
        return (yield from fs2.stat("/f")).mode

    assert host.run(main()) == 0o600


def test_chown_visible_across_nodes(system):
    host, fs, fs2 = system

    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.chown("/f", 1000, 2000)
        attr = yield from fs2.stat("/f")
        return (attr.uid, attr.gid)

    assert host.run(main()) == (1000, 2000)


def test_chmod_missing_enoent(system):
    host, fs, _fs2 = system

    def main():
        yield from fs.chmod("/ghost", 0o600)

    with pytest.raises(FsError) as err:
        host.run(main())
    assert err.value.code == "ENOENT"


def test_chmod_updates_ctime(system):
    host, fs, _fs2 = system

    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        before = (yield from fs.stat("/f")).ctime
        yield host.sim.timeout(5.0)
        yield from fs.chmod("/f", 0o755)
        after = (yield from fs.stat("/f")).ctime
        return (before, after)

    before, after = host.run(main())
    assert after > before


def test_statfs_counts_files(system):
    host, fs, _fs2 = system

    def main():
        yield from fs.mkdir("/d")
        for i in range(4):
            fh = yield from fs.create(f"/d/f{i}")
            yield from fs.close(fh)
        return (yield from fs.statfs())

    stats = host.run(main())
    assert stats["files"] >= 4
    assert stats["servers"] == 2


def test_cofs_statfs_reports_virtual_directories():
    host = MountedCofs(1)
    fs = host.mounts[0]

    def main():
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        return (yield from fs.statfs())

    stats = host.run(main())
    assert stats["virtual_directories"] >= 3  # root + /a + /b
