"""Scaled-down qualitative checks of every reproduced result.

The full grids live in benchmarks/; these integration tests assert the same
*shapes* at sizes that keep `pytest tests/` fast:

- Fig 1: single-node cache cliff and create slope;
- Fig 2: parallel create collapse, revocation-bound stats;
- Figs 4-5: COFS vs GPFS orderings and bands;
- Fig 6 (reduced): hierarchical cluster, COFS wins every op;
- Table I rows: cached-read slowdown, single-node write drawback,
  multi-node relative write improvement, shared-file comparability.
"""

import pytest

from repro.bench import build_flat_testbed, build_hier_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.units import MB
from repro.workloads import IorConfig, MetaratesConfig, run_ior, run_metarates


def gpfs_stack(n, topology="flat"):
    build = build_flat_testbed if topology == "flat" else build_hier_testbed
    return PfsStack(build(n))


def cofs_stack(n, topology="flat"):
    build = build_flat_testbed if topology == "flat" else build_hier_testbed
    return CofsStack(build(n, with_mds=True))


def metarates(stack, nodes, fpn, ops, ppn=1):
    return run_metarates(stack, MetaratesConfig(
        nodes=nodes, procs_per_node=ppn, files_per_proc=fpn, ops=ops,
    ))


# -- Fig 1 shapes -------------------------------------------------------------

def test_fig1_shape_stat_cliff():
    below = metarates(gpfs_stack(1), 1, 512, ("stat",)).mean_ms("stat")
    above = metarates(gpfs_stack(1), 1, 2048, ("stat",)).mean_ms("stat")
    assert below < 0.6
    assert above > 1.5


def test_fig1_shape_create_slope():
    at_512 = metarates(gpfs_stack(1), 1, 512, ("create",)).mean_ms("create")
    at_2048 = metarates(gpfs_stack(1), 1, 2048, ("create",)).mean_ms("create")
    assert 1.0 < at_512 < 3.0
    assert at_2048 > at_512 * 1.3


def test_fig1_shape_two_procs_no_worse_beyond_cliff():
    # The paper's "2 processes slightly compensate" effect is marginal in
    # the reproduction (request batching saves a few percent at best); what
    # must hold is that a second process does not make things worse.
    one = metarates(gpfs_stack(1), 1, 2048, ("stat",), ppn=1).mean_ms("stat")
    two = metarates(gpfs_stack(1), 1, 1024, ("stat",), ppn=2).mean_ms("stat")
    assert two <= one * 1.05  # same 2048-entry directory, 2 processes


# -- Fig 2 shapes ----------------------------------------------------------------

def test_fig2_shape_parallel_create_collapse():
    solo = metarates(gpfs_stack(1), 1, 256, ("create",)).mean_ms("create")
    four = metarates(gpfs_stack(4), 4, 64, ("create",)).mean_ms("create")
    eight = metarates(gpfs_stack(8), 8, 32, ("create",)).mean_ms("create")
    assert four > solo * 4
    assert eight > four * 1.2


def test_fig2_shape_stat_revocation_queue_grows_with_nodes():
    four = metarates(gpfs_stack(4), 4, 256, ("stat",)).mean_ms("stat")
    eight = metarates(gpfs_stack(8), 8, 128, ("stat",)).mean_ms("stat")
    assert eight > four * 1.4


def test_fig5_shape_gpfs_stat_converges_beyond_creator_cache():
    expensive = metarates(gpfs_stack(4), 4, 256, ("stat",)).mean_ms("stat")
    converged = metarates(gpfs_stack(4), 4, 1024, ("stat",)).mean_ms("stat")
    assert converged < expensive


# -- Figs 4-5 orderings ---------------------------------------------------------------

def test_fig4_shape_cofs_create_speedup():
    gpfs = metarates(gpfs_stack(4), 4, 128, ("create",)).mean_ms("create")
    cofs = metarates(cofs_stack(4), 4, 128, ("create",)).mean_ms("create")
    assert gpfs / cofs > 3
    assert cofs < 8


def test_fig4_shape_cofs_scaling_overhead_eliminated():
    four = metarates(cofs_stack(4), 4, 64, ("create",)).mean_ms("create")
    eight = metarates(cofs_stack(8), 8, 64, ("create",)).mean_ms("create")
    assert eight < four * 1.6


def test_fig5_shape_cofs_stat_about_1ms():
    cofs = metarates(cofs_stack(4), 4, 512, ("stat",)).mean_ms("stat")
    assert cofs < 1.5


def test_fig5b_shape_utime_gpfs_vs_cofs():
    # In the contended regime the paper emphasizes (files within the
    # creator's token span), GPFS utime pays revocations; COFS pays one MDS
    # update transaction.
    gpfs = metarates(gpfs_stack(4), 4, 256, ("utime",)).mean_ms("utime")
    cofs = metarates(cofs_stack(4), 4, 256, ("utime",)).mean_ms("utime")
    assert cofs < gpfs / 2


def test_fig5b_shape_open_tracks_stat_for_cofs():
    res = metarates(cofs_stack(4), 4, 256, ("stat", "open"))
    assert res.mean_ms("open") < res.mean_ms("stat") * 3 + 1.0


# -- Fig 6 (reduced scale) ---------------------------------------------------------

def test_fig6_shape_hierarchical_cluster():
    gpfs = metarates(gpfs_stack(16, "hier"), 16, 32,
                     ("create", "stat")).recorder
    cofs = metarates(cofs_stack(16, "hier"), 16, 32,
                     ("create", "stat")).recorder
    assert cofs.mean("create") < gpfs.mean("create") / 3
    assert cofs.mean("stat") < gpfs.mean("stat")


# -- Table I rows ----------------------------------------------------------------------

def test_table1_shape_cached_read_slowdown():
    """Seq read of small separate files: GPFS serves from cache; COFS pays."""
    agg = 64 * MB  # 16 MB per node over 4 nodes: cache-resident
    gpfs = run_ior(gpfs_stack(4), IorConfig(nodes=4, aggregate_bytes=agg))
    cofs = run_ior(cofs_stack(4), IorConfig(nodes=4, aggregate_bytes=agg))
    assert gpfs.read_mbps > cofs.read_mbps * 1.5


def test_table1_shape_single_node_write_drawback():
    agg = 256 * MB
    gpfs = run_ior(gpfs_stack(1), IorConfig(
        nodes=1, aggregate_bytes=agg, do_read=False))
    cofs = run_ior(cofs_stack(1), IorConfig(
        nodes=1, aggregate_bytes=agg, do_read=False))
    assert cofs.write_mbps < gpfs.write_mbps
    assert cofs.write_mbps > gpfs.write_mbps * 0.6  # a drawback, not a cliff


def test_table1_shape_multi_node_write_gap_closes():
    agg = 128 * MB
    ratios = {}
    for nodes in (1, 4, 8):
        gpfs = run_ior(gpfs_stack(nodes), IorConfig(
            nodes=nodes, aggregate_bytes=agg, do_read=False))
        cofs = run_ior(cofs_stack(nodes), IorConfig(
            nodes=nodes, aggregate_bytes=agg, do_read=False))
        ratios[nodes] = cofs.write_mbps / gpfs.write_mbps
    # COFS is relatively better with more nodes (the write-behind pool
    # absorbs much of the paper's open-stagger effect at this scale, so the
    # trend is softer than Table I's prose but points the same way).
    assert ratios[4] > ratios[1]
    assert ratios[8] > 0.85


def test_table1_shape_shared_file_comparable():
    agg = 128 * MB
    gpfs = run_ior(gpfs_stack(4), IorConfig(
        nodes=4, aggregate_bytes=agg, target="shared"))
    cofs = run_ior(cofs_stack(4), IorConfig(
        nodes=4, aggregate_bytes=agg, target="shared"))
    assert cofs.write_mbps > gpfs.write_mbps * 0.7
    assert cofs.read_mbps > gpfs.read_mbps * 0.55
