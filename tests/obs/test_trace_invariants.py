"""TraceChecker: green on real runs, loud on doctored histories.

The synthetic cases build span trees by hand — one per invariant — and
prove the checker actually rejects the histories the prose invariants
forbid; the real-run cases prove the instrumented tier emits histories
the checker accepts.
"""

import pytest

from repro import obs
from repro.core.sharding import SubtreeSharding
from repro.obs.trace import Span
from tests.core.conftest import ShardedCofs


class _FakeTracer:
    def __init__(self, spans):
        self.spans = spans


def _span(spans, kind, name, parent=None, outcome="ok", start=0.0, end=1.0,
          events=(), **extra):
    span = Span(len(spans) + 1, parent, 1, kind, name, None, None, start,
                extra or None)
    span.end = end
    span.outcome = outcome
    span.events.extend(events)
    spans.append(span)
    return span


def _checker(spans):
    return obs.TraceChecker(_FakeTracer(spans))


# ---------------------------------------------------------------------------
# Synthetic histories, one per invariant
# ---------------------------------------------------------------------------

def test_ack_without_quorum_is_a_violation():
    spans = []
    op = _span(spans, "client_op", "create_node", end=4.0)
    _span(spans, "group_rpc", "create_node", parent=op, end=3.0)
    with pytest.raises(obs.TraceViolation, match="quorum_ack"):
        _checker(spans).check_quorum_ack()


def test_quorum_ack_anywhere_in_the_subtree_satisfies():
    spans = []
    op = _span(spans, "client_op", "create_node", end=4.0)
    rpc = _span(spans, "group_rpc", "create_node", parent=op, end=3.0)
    _span(spans, "ship", "s0", parent=rpc, end=2.5,
          events=[("quorum_ack", 2.5, {})])
    _checker(spans).check_quorum_ack()


def test_failed_or_unreplicated_ops_need_no_quorum():
    spans = []
    # Unreplicated pass-through: no group_rpc in the subtree.
    _span(spans, "client_op", "create_node", end=1.0)
    # Failed op: never acked, so nothing to prove.
    failed = _span(spans, "client_op", "unlink", outcome="ENOENT", end=2.0)
    _span(spans, "group_rpc", "unlink", parent=failed, outcome="ENOENT")
    # rename may legally no-op (no ship → no commit to prove).
    ren = _span(spans, "client_op", "rename", end=3.0)
    _span(spans, "group_rpc", "rename", parent=ren, end=2.5)
    _checker(spans).check_quorum_ack()


def test_shipped_rename_must_still_ack():
    spans = []
    op = _span(spans, "client_op", "rename", end=4.0)
    rpc = _span(spans, "group_rpc", "rename", parent=op, end=3.0)
    _span(spans, "ship", "s0", parent=rpc, end=2.5)
    with pytest.raises(obs.TraceViolation, match="quorum_ack"):
        _checker(spans).check_quorum_ack()


def _promote(spans, names, times=None):
    times = times or list(range(len(names)))
    return _span(spans, "promote", "s0", end=float(len(names)),
                 events=[(n, float(t), {}) for n, t in zip(names, times)])


def test_promotion_order_enforced():
    spans = []
    _promote(spans, ["epoch_bump", "gate_close", "tier_fence",
                     "reseat", "gate_open"])
    with pytest.raises(obs.TraceViolation, match="sub-steps"):
        _checker(spans).check_promotion_order()


def test_promotion_order_accepts_repeated_member_fences():
    spans = []
    _promote(spans, ["gate_close", "epoch_bump", "tier_fence",
                     "member_fence", "member_fence", "reseat", "gate_open"])
    _promote(spans, ["gate_close", "epoch_bump", "tier_fence",
                     "reseat", "gate_open"])  # zero live fellows
    _checker(spans).check_promotion_order()


def test_promotion_timestamps_must_be_monotonic():
    spans = []
    _promote(spans, ["gate_close", "epoch_bump", "tier_fence",
                     "reseat", "gate_open"], times=[0, 2, 1, 3, 4])
    with pytest.raises(obs.TraceViolation, match="time order"):
        _checker(spans).check_promotion_order()


def test_failed_promotion_is_not_checked():
    spans = []
    span = _promote(spans, ["gate_close", "epoch_bump"])
    span.outcome = "error"
    _checker(spans).check_promotion_order()


def test_resync_before_intent_completion_is_a_violation():
    spans = []
    rec = _span(spans, "recover", "s0", end=10.0)
    _span(spans, "recover_pass", "complete_intents", parent=rec,
          start=4.0, end=6.0)
    _span(spans, "recover_pass", "resync_skeleton", parent=rec,
          start=5.0, end=8.0)
    with pytest.raises(obs.TraceViolation, match="resync_skeleton"):
        _checker(spans).check_recovery_order()


def test_resync_after_completion_passes():
    spans = []
    rec = _span(spans, "recover", "s0", end=10.0)
    _span(spans, "recover_pass", "complete_intents", parent=rec,
          start=4.0, end=6.0)
    _span(spans, "recover_pass", "resync_skeleton", parent=rec,
          start=6.0, end=8.0)
    _checker(spans).check_recovery_order()


def test_resync_without_completion_is_a_violation():
    spans = []
    rec = _span(spans, "recover", "s0", end=10.0)
    _span(spans, "recover_pass", "resync_skeleton", parent=rec,
          start=5.0, end=8.0)
    with pytest.raises(obs.TraceViolation, match="without"):
        _checker(spans).check_recovery_order()


def test_follower_served_mutation_is_a_violation():
    spans = []
    _span(spans, "group_rpc", "setattr", role="backup")
    with pytest.raises(obs.TraceViolation, match="backup"):
        _checker(spans).check_no_follower_mutations()


def test_follower_served_read_passes():
    spans = []
    _span(spans, "group_rpc", "getattr", role="backup")
    _span(spans, "group_rpc", "setattr", role="primary")
    _checker(spans).check_no_follower_mutations()


# ---------------------------------------------------------------------------
# Real runs
# ---------------------------------------------------------------------------

def test_real_replicated_run_passes_all_checks(traced):
    tracer, _metrics = traced
    host = ShardedCofs(
        n_clients=2, shards=2, replicas=2,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def body(fs, root):
        yield from fs.mkdir(root)
        for i in range(4):
            fh = yield from fs.create(f"{root}/f{i}")
            yield from fs.close(fh)
        yield from fs.utime(f"{root}/f0", mtime=1.0)
        yield from fs.unlink(f"{root}/f3")
        yield from fs.rename(f"{root}/f1", f"{root}/g1")

    host.run_all([body(host.mounts[0], "/a"), body(host.mounts[1], "/b")])
    checker = obs.TraceChecker(tracer).check_all()
    # The run actually exercised the rules: replicated mutations shipped.
    assert any(s.kind == "ship" for s in checker.spans)
    assert any(s.kind == "client_op" and s.name == "create_node"
               for s in checker.spans)


def test_recovery_trace_orders_completion_before_resync(traced):
    """Crash-and-recover a shard; the recover span's passes obey order.

    The resync passes only run when the crash actually lost journal
    records, so the shard runs with the async (lazy-dump) log policy and
    crashes past a checkpoint.
    """
    from repro.core.config import CofsConfig
    from repro.db.service import DbConfig

    tracer, _metrics = traced
    host = ShardedCofs(
        n_clients=1, shards=2, replicas=1,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}),
        cofs_config=CofsConfig(db=DbConfig(sync_updates=False)))

    def seed():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        fh = yield from fs.create("/a/durable")
        yield from fs.close(fh)
        yield from host.shards[0].dbsvc.checkpoint()
        fh = yield from fs.create("/a/volatile")
        yield from fs.close(fh)

    host.run(seed())
    host.run(host.shards[0].recover())
    recovers = [s for s in tracer.spans if s.kind == "recover"]
    assert recovers, "recover() opened no recover span"
    passes = {s.name for s in tracer.spans if s.kind == "recover_pass"}
    assert "complete_intents" in passes
    assert "resync_skeleton" in passes
    obs.TraceChecker(tracer).check_all()


def test_retire_overlapping_stage_is_a_violation():
    """Phase 2 starting before phase 1 finished reopens the window."""
    spans = []
    op = _span(spans, "client_op", "rename", end=10.0)
    _span(spans, "peer_rpc", "mirror_rename_stage", parent=op,
          start=1.0, end=6.0)
    _span(spans, "peer_rpc", "mirror_rename", parent=op,
          start=5.0, end=8.0)
    with pytest.raises(obs.TraceViolation, match="phase-1"):
        _checker(spans).check_rename_visibility()
    # The same history with the stage safely finished first is clean.
    spans[1].end = 4.0
    _checker(spans).check_rename_visibility()


def test_real_replicated_rename_stages_before_it_retires(traced):
    """A live directory rename emits both phases, in order."""
    tracer, _metrics = traced
    host = ShardedCofs(
        n_clients=1, shards=3,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def body():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/a/d")
        fh = yield from fs.create("/a/d/f")
        yield from fs.close(fh)
        yield from fs.rename("/a/d", "/b")

    host.run(body())
    checker = obs.TraceChecker(tracer).check_all()
    names = {s.name for s in checker.spans if s.kind == "peer_rpc"}
    assert "mirror_rename_stage" in names, "the flip never staged"
    assert "mirror_rename" in names, "the flip never retired"
