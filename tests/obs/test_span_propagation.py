"""Span-context propagation across the metadata tier's hard paths.

The two scenarios the span model must survive: a cross-shard rename
(router → owning shard → peer RPCs to the other shard, all inline in the
client's process) and a failover absorbed mid-op (the router's retry
drives promotion *inside* the client op, so the failover and promote
spans must nest under the op that triggered them).
"""

from repro import obs
from repro.core.sharding import SubtreeSharding
from repro.sim import Simulator
from tests.core.conftest import ShardedCofs


def _host(replicas=1):
    return ShardedCofs(
        n_clients=1, shards=2, replicas=replicas,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}))


def _seed(host):
    def body():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)

    host.run(body())


def _rename(host):
    def body():
        yield from host.mounts[0].rename("/a/f", "/b/f")

    host.run(body())


def _subtree(tracer, root):
    children = {}
    for span in tracer.spans:
        if span.parent is not None:
            children.setdefault(span.parent.span_id, []).append(span)
    out, stack = [], [root]
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(children.get(span.span_id, ()))
    return out


def test_cross_shard_rename_spans_both_shards(traced):
    tracer, _metrics = traced
    host = _host()
    _seed(host)
    mark = len(tracer.spans)
    _rename(host)

    ops = [s for s in tracer.spans[mark:]
           if s.kind == "client_op" and s.name == "rename"]
    assert len(ops) == 1
    op = ops[0]
    assert op.outcome == "ok"
    subtree = _subtree(tracer, op)
    # Everything the rename caused shares its trace id and nests inside
    # its simulated-time window.
    assert all(s.trace_id == op.trace_id for s in subtree)
    assert all(op.start <= s.start and s.end <= op.end for s in subtree)
    # The source shard owns the op; the peer leg reaches the other shard.
    peers = [s for s in subtree if s.kind == "peer_rpc"]
    assert peers, "cross-shard rename produced no peer RPC spans"
    origins = {s.shard for s in peers}
    targets = {s.extra["target"] for s in peers}
    assert len(origins | targets) == 2, (origins, targets)


def test_replicated_rename_ships_before_ack(traced):
    tracer, _metrics = traced
    host = _host(replicas=2)
    _seed(host)
    mark = len(tracer.spans)
    _rename(host)

    op = [s for s in tracer.spans[mark:]
          if s.kind == "client_op" and s.name == "rename"][0]
    subtree = _subtree(tracer, op)
    ships = [s for s in subtree if s.kind == "ship"]
    assert ships, "replicated rename never shipped its journal"
    acks = [ev for s in subtree for ev in s.find_events("quorum_ack")]
    assert acks, "replicated rename was acked without a quorum_ack event"
    # The quorum ack precedes the client op's completion.
    assert min(t for _n, t, _x in acks) <= op.end
    obs.TraceChecker(tracer).check_all()


def test_failover_nests_inside_the_op_that_absorbs_it(traced):
    from repro.core.faults import kill_primary

    tracer, metrics = traced
    host = _host(replicas=2)
    _seed(host)
    kill_primary(host.groups[0])
    mark = len(tracer.spans)

    def body():
        fh = yield from host.mounts[0].create("/a/g")
        yield from host.mounts[0].close(fh)

    host.run(body())

    creates = [s for s in tracer.spans[mark:]
               if s.kind == "client_op" and s.name == "create_node"]
    assert creates and all(s.outcome == "ok" for s in creates)
    failovers = [s for s in tracer.spans[mark:] if s.kind == "failover"]
    promotes = [s for s in tracer.spans[mark:] if s.kind == "promote"]
    assert len(failovers) == 1, "the retry path must drive exactly one failover"
    assert len(promotes) == 1
    assert failovers[0].duration > 0
    # The failover was driven *inside* whichever client op first hit the
    # dead primary — it has a client_op ancestor, and the promotion ran
    # under the failover's single-flight gate in the same trace.
    ancestor = failovers[0].parent
    while ancestor is not None and ancestor.kind != "client_op":
        ancestor = ancestor.parent
    assert ancestor is not None, "failover span has no client_op ancestor"
    assert promotes[0].trace_id == failovers[0].trace_id
    assert metrics.counter("router_retry") >= 1
    obs.TraceChecker(tracer).check_all()


def test_spawned_process_inherits_ambient_context(traced):
    """A process spawned while a span is active lands under that span."""
    tracer, _metrics = traced
    sim = Simulator()
    seen = []

    def child():
        yield sim.timeout(1.0)
        seen.append(tracer.active())

    def parent():
        span = tracer.start("client_op", "outer", sim.now)
        sim.process(child(), name="child")
        yield sim.timeout(2.0)
        tracer.finish(span, sim.now)
        return span

    outer = sim.run_process(parent())
    assert seen == [outer]


def test_disabled_tracing_leaves_processes_bare():
    from repro.sim import kernel

    assert obs.TRACER is None
    assert kernel.TRACE is None
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return True

    assert sim.run_process(proc()) is True
