"""Metrics registry, JSONL exporters, aggregates, and the bench gate."""

import json

import pytest

from repro import obs
from repro.bench.quick import check_fingerprints, latest_reference
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def test_counters_key_by_shard_and_sum_across():
    reg = MetricsRegistry()
    reg.incr("epoch_fenced", 0)
    reg.incr("epoch_fenced", 0)
    reg.incr("epoch_fenced", 1, by=3)
    assert reg.counter("epoch_fenced", 0) == 2
    assert reg.counter("epoch_fenced", 1) == 3
    assert reg.counter("epoch_fenced") == 5
    assert reg.counter("router_retry") == 0


def test_histograms_merge_across_shards():
    reg = MetricsRegistry()
    for shard, value in ((0, 1.0), (0, 3.0), (1, 5.0)):
        reg.observe("quorum_ack_ms", shard, value)
    assert reg.histogram("quorum_ack_ms", 0).n == 2
    merged = reg.histogram("quorum_ack_ms")
    assert merged.n == 3
    assert merged.max == 5.0
    assert merged.p50 == 3.0
    # The merged view is a copy: observing more does not mutate it.
    reg.observe("quorum_ack_ms", 1, 100.0)
    assert merged.n == 3


def test_rows_flatten_for_export():
    reg = MetricsRegistry()
    reg.incr("router_retry", 2)
    reg.observe("op_ms.create_node", 0, 4.0)
    rows = reg.rows()
    kinds = {(row["metric"], row["shard"]) for row in rows}
    assert ("router_retry", 2) in kinds
    assert ("op_ms.create_node", 0) in kinds
    hist = [r for r in rows if r["metric"] == "op_ms.create_node"][0]
    assert hist["count"] == 1 and hist["p99"] == 4.0


def _finished_span(kind, name, start, end, outcome="ok"):
    span = Span(1, None, 1, kind, name, None, None, start, None)
    span.end = end
    span.outcome = outcome
    return span


def test_aggregate_spans_reports_percentiles():
    spans = [_finished_span("ship", "s0", 0.0, float(d)) for d in (1, 2, 3)]
    spans.append(_finished_span("ship", "s1", 0.0, 9.0, outcome="EAGAIN"))
    agg = obs.aggregate_spans(spans)
    assert agg["ship"]["count"] == 4
    assert agg["ship"]["errors"] == 1
    assert agg["ship"]["max_ms"] == 9.0
    assert agg["ship"]["p50_ms"] == 2.5


def test_jsonl_exports_round_trip(tmp_path, traced):
    tracer, metrics = traced
    span = tracer.start("client_op", "create_node", 1.0, shard=0)
    # event() routes through the executing process; none exists outside
    # the kernel, so attach the point event directly.
    span.events.append(("quorum_ack", 2.0, {"lsn": 7}))
    tracer.finish(span, 3.0)
    metrics.incr("router_retry", 0)
    metrics.observe("op_ms.create_node", 0, 2.0)

    trace_path = tmp_path / "t.trace.jsonl"
    metrics_path = tmp_path / "t.metrics.jsonl"
    obs.write_trace_jsonl(trace_path, tracer)
    obs.write_metrics_jsonl(metrics_path, metrics)

    [line] = trace_path.read_text().splitlines()
    record = json.loads(line)
    assert record["kind"] == "client_op"
    assert record["events"] == [{"name": "quorum_ack", "t": 2.0, "lsn": 7}]
    rows = [json.loads(l) for l in metrics_path.read_text().splitlines()]
    assert {row["metric"] for row in rows} == {
        "router_retry", "op_ms.create_node"}


# ---------------------------------------------------------------------------
# The quick-bench fingerprint gate
# ---------------------------------------------------------------------------

def _run(virtual_ms):
    return {"experiments": {
        name: {"virtual_ms": value} for name, value in virtual_ms.items()}}


def _reference(tmp_path, virtual_ms):
    path = tmp_path / "BENCH_PR1.json"
    path.write_text(json.dumps({"runs": [_run(virtual_ms)]}))
    return path


def test_gate_passes_on_identical_fingerprints(tmp_path, capsys):
    ref = _reference(tmp_path, {"fig1": 100.5, "fig2": 7.25})
    check_fingerprints(_run({"fig1": 100.5, "fig2": 7.25}), ref)
    assert "2 experiments match" in capsys.readouterr().out


def test_gate_fails_loudly_on_drift(tmp_path):
    ref = _reference(tmp_path, {"fig1": 100.5})
    with pytest.raises(SystemExit, match="fig1"):
        check_fingerprints(_run({"fig1": 100.6}), ref)


def test_gate_refuses_vacuous_checks(tmp_path):
    ref = _reference(tmp_path, {"fig1": 100.5})
    with pytest.raises(SystemExit, match="nothing was checked"):
        check_fingerprints(_run({"table9": 1.0}), ref)


def test_latest_reference_picks_highest_pr(tmp_path):
    for n in (1, 2, 10):
        (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
    (tmp_path / "BENCH_PR3.json.bak").write_text("{}")
    assert latest_reference(tmp_path) == str(tmp_path / "BENCH_PR10.json")


def test_latest_reference_empty_dir_is_none(tmp_path):
    assert latest_reference(tmp_path) is None
