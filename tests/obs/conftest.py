"""Fixtures for the observability suite: an enabled tracer per test."""

import pytest

from repro import obs


@pytest.fixture
def traced():
    """Enable tracing + metrics for the test; always disable after.

    Yields the ``(tracer, metrics)`` pair so tests can read spans and
    counters directly.
    """
    pair = obs.enable()
    try:
        yield pair
    finally:
        obs.disable()
