"""Durable-before-dependent-ack: the async group commit trace rule.

Synthetic histories prove the checker rejects acks that externalize
un-forced state; the real-run case drives an async-commit tier with a
genuine cross-client dependency and shows the instrumented path emits a
history the checker accepts — with the dependency actually exercised.
"""

import pytest

from repro import obs
from repro.core.config import CofsConfig
from repro.core.sharding import SubtreeSharding
from repro.obs.trace import Span
from repro.pfs.errors import FsError
from tests.core.conftest import ShardedCofs


class _FakeTracer:
    def __init__(self, spans):
        self.spans = spans


def _span(spans, kind, name, parent=None, outcome="ok", start=0.0, end=1.0,
          shard=None, events=(), **extra):
    span = Span(len(spans) + 1, parent, 1, kind, name, shard, None, start,
                extra or None)
    span.end = end
    span.outcome = outcome
    span.events.extend(events)
    spans.append(span)
    return span


def _checker(spans):
    return obs.TraceChecker(_FakeTracer(spans))


def _force(spans, shard, head, start, end, outcome="ok"):
    return _span(spans, "force", "group_force", shard=shard, start=start,
                 end=end, outcome=outcome, base=0, head=head)


def _ack(spans, shard, when, lsn, dep):
    return _span(spans, "client_op", "create_node", end=when, events=[
        ("commit_ack", when,
         {"shard": shard, "lsn": lsn, "dep": dep, "deferred": lsn > dep}),
    ])


# ---------------------------------------------------------------------------
# Synthetic histories
# ---------------------------------------------------------------------------

def test_dependent_ack_without_any_force_is_a_violation():
    spans = []
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    with pytest.raises(obs.TraceViolation, match="depends on LSN 3"):
        _checker(spans).check_durable_dependent_ack()


def test_force_after_the_ack_does_not_count():
    spans = []
    _force(spans, 0, head=4, start=2.5, end=3.5)  # mis-ordered: too late
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    with pytest.raises(obs.TraceViolation, match="depends on LSN 3"):
        _checker(spans).check_durable_dependent_ack()


def test_force_below_the_dependency_does_not_count():
    spans = []
    _force(spans, 0, head=2, start=0.5, end=1.5)  # head < dep
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    with pytest.raises(obs.TraceViolation, match="depends on LSN 3"):
        _checker(spans).check_durable_dependent_ack()


def test_force_on_another_shard_does_not_count():
    spans = []
    _force(spans, 1, head=9, start=0.5, end=1.5)
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    with pytest.raises(obs.TraceViolation, match="shard 0"):
        _checker(spans).check_durable_dependent_ack()


def test_covering_force_before_the_ack_passes():
    spans = []
    _force(spans, 0, head=3, start=0.5, end=1.5)
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    _checker(spans).check_durable_dependent_ack()


def test_dependent_read_ack_needs_a_force_too():
    spans = []
    _ack(spans, 0, when=2.0, lsn=0, dep=3)  # read: no own record
    with pytest.raises(obs.TraceViolation, match="depends on LSN 3"):
        _checker(spans).check_durable_dependent_ack()


def test_dependency_free_and_own_force_acks_pass():
    spans = []
    _ack(spans, 0, when=2.0, lsn=5, dep=0)   # deferred, no dependency
    _ack(spans, 0, when=3.0, lsn=7, dep=7)   # waited for its own force
    _checker(spans).check_durable_dependent_ack()


def test_stale_force_outcome_does_not_count():
    spans = []
    _force(spans, 0, head=3, start=0.5, end=1.5, outcome="stale")
    _ack(spans, 0, when=2.0, lsn=5, dep=3)
    with pytest.raises(obs.TraceViolation, match="depends on LSN 3"):
        _checker(spans).check_durable_dependent_ack()


# ---------------------------------------------------------------------------
# Real async-commit run
# ---------------------------------------------------------------------------

def test_real_async_run_emits_checkable_dependencies(traced):
    """A reader observing another client's un-forced create must be held
    until the force — and the emitted trace must prove it."""
    tracer, _metrics = traced
    host = ShardedCofs(
        n_clients=2, shards=2,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}),
        cofs_config=CofsConfig(async_commit=True))

    def writer(fs):
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)

    def reader(fs):
        # Poll until the create is visible; the successful stat observes
        # a foreign commit whose redo may still be in the loss window.
        while True:
            try:
                yield from fs.stat("/a/f")
                return
            except FsError:
                yield self_sim.timeout(0.05)

    self_sim = host.sim
    host.run_all([writer(host.mounts[0]), reader(host.mounts[1])])
    checker = obs.TraceChecker(tracer).check_all()
    acks = [extra for span in checker.spans
            for _n, _t, extra in span.find_events("commit_ack")]
    assert acks, "async tier emitted no commit_ack events"
    assert any(a["dep"] > 0 for a in acks), (
        "the cross-client read never recorded a dependency")
    assert any(s.kind == "force" and s.outcome == "ok"
               for s in checker.spans), "no force spans recorded"


def test_real_async_run_deferred_acks_pass_checker(traced):
    """Independent writers get deferred acks; the history stays legal."""
    tracer, metrics = traced
    host = ShardedCofs(
        n_clients=2, shards=2,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}),
        cofs_config=CofsConfig(async_commit=True))

    def body(fs, root):
        yield from fs.mkdir(root)
        for i in range(6):
            fh = yield from fs.create(f"{root}/f{i}")
            yield from fs.close(fh)
            yield from fs.utime(f"{root}/f{i}", mtime=1.0)

    host.run_all([body(host.mounts[0], "/a"), body(host.mounts[1], "/b")])
    obs.TraceChecker(tracer).check_all()
    deferred = sum(s.dbsvc.deferred_acks for s in host.shards)
    assert deferred > 0, "async tier never deferred an ack"
    # The new metrics land in the registry (and so in every export).
    assert metrics.counter("deferred_acks") == deferred
    for name in ("commit_batch_size", "group_force_ms", "ack_to_durable_ms"):
        cell = metrics.histogram(name)
        assert cell is not None and cell.n > 0, f"no samples for {name}"
