"""Every script under examples/ must keep running (no silent rot)."""

import os
import subprocess
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES = os.path.join(_REPO, "examples")
_SCRIPTS = sorted(
    name for name in os.listdir(_EXAMPLES) if name.endswith(".py")
)


def test_every_example_is_covered():
    assert _SCRIPTS, "examples/ has no scripts?"


@pytest.mark.parametrize("script", _SCRIPTS)
def test_example_runs(script):
    env = dict(os.environ)
    src = os.path.join(_REPO, "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script)],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, (
        f"{script} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
