"""Unit tests for path helpers and attribute types."""

import pytest

from repro.pfs.types import (
    DIRECTORY, FILE, SYMLINK, FileAttr, OpenFlags, components, join,
    normalize, split,
)


def test_normalize_plain():
    assert normalize("/a/b/c") == "/a/b/c"


def test_normalize_root():
    assert normalize("/") == "/"


def test_normalize_collapses_slashes_and_dots():
    assert normalize("//a/./b//") == "/a/b"


def test_normalize_parent_refs():
    assert normalize("/a/b/../c") == "/a/c"
    assert normalize("/../a") == "/a"


def test_normalize_rejects_relative():
    with pytest.raises(ValueError):
        normalize("a/b")
    with pytest.raises(ValueError):
        normalize("")


def test_split_basic():
    assert split("/a/b/c") == ("/a/b", "c")
    assert split("/a") == ("/", "a")
    assert split("/") == ("/", "")


def test_components():
    assert components("/") == ()
    assert components("/a/b") == ("a", "b")


def test_components_memoized_and_immutable():
    first = components("/a/b/c")
    assert first == ("a", "b", "c")
    assert components("/a/b/c") is first  # memo hit returns the same tuple


def test_join():
    assert join("/a", "b") == "/a/b"
    assert join("/", "b") == "/b"


def test_open_flags_wants_write():
    assert OpenFlags.wants_write(OpenFlags.WRONLY)
    assert OpenFlags.wants_write(OpenFlags.RDWR)
    assert not OpenFlags.wants_write(OpenFlags.RDONLY)
    assert OpenFlags.wants_write(OpenFlags.RDWR | OpenFlags.CREAT)


def test_fileattr_kind_predicates():
    attr = FileAttr(ino=1, kind=FILE, mode=0o644, uid=0, gid=0, size=0,
                    nlink=1, atime=0, mtime=0, ctime=0)
    assert attr.is_file and not attr.is_dir and not attr.is_symlink
    attr.kind = DIRECTORY
    assert attr.is_dir
    attr.kind = SYMLINK
    assert attr.is_symlink
