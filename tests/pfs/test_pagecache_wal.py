"""Page pool (write-behind, prefetch, capacity) and client WAL."""

import pytest

from repro.pfs.config import PfsConfig
from repro.units import MB
from tests.pfs.conftest import MountedPfs


def test_write_behind_drains_to_servers():
    fsx = MountedPfs(1)
    client = fsx.clients[0]

    def main():
        fh = yield from client.create("/f")
        yield from client.write(fh, 0, size=8 * MB)
        yield from client.close(fh)  # fsync-on-close waits for the drain

    fsx.run(main())
    written = sum(nsd.data_disk.bytes_written for nsd in fsx.pfs.nsds)
    assert written == 8 * MB


def test_chunks_stripe_across_servers():
    fsx = MountedPfs(1)
    client = fsx.clients[0]

    def main():
        fh = yield from client.create("/f")
        yield from client.write(fh, 0, size=16 * MB)
        yield from client.close(fh)

    fsx.run(main())
    per_server = [nsd.data_disk.bytes_written for nsd in fsx.pfs.nsds]
    assert all(w > 0 for w in per_server)
    assert max(per_server) <= 2 * min(per_server)


def test_pool_capacity_is_respected():
    config = PfsConfig(page_pool_bytes=4 * MB)
    fsx = MountedPfs(1, config=config)
    client = fsx.clients[0]

    def main():
        fh = yield from client.create("/f")
        yield from client.write(fh, 0, size=16 * MB)
        yield from client.close(fh)
        return len(client.data._chunks)

    resident = fsx.run(main())
    assert resident <= 4  # 4 MB pool at 1 MB chunks


def test_cached_read_is_memory_fast():
    fsx = MountedPfs(1)
    client = fsx.clients[0]
    sim = fsx.sim

    def main():
        fh = yield from client.create("/f")
        yield from client.write(fh, 0, size=4 * MB)
        yield from client.close(fh)
        fh = yield from client.open("/f")
        t0 = sim.now
        yield from client.read(fh, 0, 4 * MB)
        warm = sim.now - t0
        yield from client.close(fh)
        return warm

    warm_ms = fsx.run(main())
    assert warm_ms < 4.0  # memcpy speed, far below network (8 ms/MB)


def test_sequential_read_prefetches():
    fsx = MountedPfs(2)
    writer, reader = fsx.clients

    def main():
        fh = yield from writer.create("/f")
        yield from writer.write(fh, 0, size=8 * MB)
        yield from writer.close(fh)
        fh = yield from reader.open("/f")
        for chunk in range(8):
            yield from reader.read(fh, chunk * MB, MB)
        yield from reader.close(fh)
        return (reader.data.cache_hits, reader.data.cache_misses)

    hits, misses = fsx.run(main())
    assert hits > 0  # read-ahead turned later chunk reads into hits


def test_random_read_does_not_prefetch_everything():
    fsx = MountedPfs(2)
    writer, reader = fsx.clients

    def main():
        fh = yield from writer.create("/f")
        yield from writer.write(fh, 0, size=8 * MB)
        yield from writer.close(fh)
        fh = yield from reader.open("/f")
        for chunk in (5, 1, 7, 3):  # non-sequential
            yield from reader.read(fh, chunk * MB, MB)
        yield from reader.close(fh)
        return reader.data.cache_misses

    misses = fsx.run(main())
    assert misses >= 4


def test_wal_batches_concurrent_forces():
    fsx = MountedPfs(1)
    client = fsx.clients[0]
    done = []

    def forcer(tag):
        yield from client.wal.force()
        done.append(tag)

    fsx.run_all([forcer(i) for i in range(6)])
    assert sorted(done) == list(range(6))
    # 6 simultaneous forces ride far fewer round trips
    assert client.wal.forces <= 2


def test_wal_serial_forces_each_pay():
    fsx = MountedPfs(1)
    client = fsx.clients[0]

    def main():
        for _ in range(3):
            yield from client.wal.force()

    fsx.run(main())
    assert client.wal.forces == 3
