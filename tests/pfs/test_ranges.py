"""Byte-range token server: splitting, widening, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.ranges import EOF, RO, XW
from repro.units import MB
from tests.pfs.conftest import MountedPfs


def acquire(fsx, node_index, ino, lo, hi, mode):
    client = fsx.clients[node_index]
    return fsx.run(client.data.ensure_range(ino, lo, hi, mode))


def grants(fsx, ino):
    return fsx.pfs.range_server.grants_of(ino)


def test_first_writer_gets_everything():
    fsx = MountedPfs(2)
    acquire(fsx, 0, 7, 0, 1 * MB, XW)
    assert grants(fsx, 7) == [(0, EOF, "node0", XW)]


def test_second_writer_splits_at_its_offset():
    fsx = MountedPfs(2)
    acquire(fsx, 0, 7, 0, 1 * MB, XW)
    acquire(fsx, 1, 7, 32 * MB, 33 * MB, XW)
    got = sorted(grants(fsx, 7))
    assert got == [
        (0, 32 * MB, "node0", XW),
        (32 * MB, EOF, "node1", XW),
    ]


def test_segmented_writers_settle_with_one_acquire_each():
    fsx = MountedPfs(4)
    seg = 16 * MB
    for node in range(4):
        acquire(fsx, node, 7, node * seg, node * seg + MB, XW)
    before = fsx.pfs.range_server.acquires
    # every node can now write its whole segment without server traffic
    for node in range(4):
        for chunk in range(16):
            offset = node * seg + chunk * MB
            covered = fsx.clients[node].data._covered(7, offset, offset + MB, XW)
            assert covered, (node, chunk)
    assert fsx.pfs.range_server.acquires == before


def test_readers_share_ranges():
    fsx = MountedPfs(2)
    acquire(fsx, 0, 7, 0, MB, RO)
    acquire(fsx, 1, 7, 0, MB, RO)
    holders = {g[2] for g in grants(fsx, 7)}
    assert holders == {"node0", "node1"}


def test_reader_after_writer_forces_flush():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients

    def main():
        yield from c0.data.ensure_range(7, 0, MB, XW)
        yield from c0.data.write(7, 0, MB)       # dirty chunk at node0
        yield from c1.data.ensure_range(7, 0, MB, RO)
        return c0.data._chunks.get((7, 0))

    slot = fsx.run(main())
    assert slot is None or slot[0] != "dirty"  # flushed by the revoke
    assert fsx.pfs.range_server.range_revokes >= 1


def test_release_all_forgets_node():
    fsx = MountedPfs(2)
    acquire(fsx, 0, 7, 0, MB, XW)

    def main():
        yield from fsx.clients[0].machine.call(
            fsx.pfs.range_machine, "rangemgr", "release_all",
            args=("node0", 7),
        )

    fsx.run(main())
    assert grants(fsx, 7) == []


def test_forget_drops_file_state():
    fsx = MountedPfs(1)
    acquire(fsx, 0, 7, 0, MB, XW)
    fsx.pfs.range_server.forget(7)
    assert grants(fsx, 7) == []


RANGES = st.tuples(
    st.integers(0, 3),                       # node
    st.integers(0, 63),                      # lo chunk
    st.integers(1, 16),                      # span chunks
    st.sampled_from([RO, XW]),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(RANGES, min_size=1, max_size=12))
def test_no_conflicting_grants_ever(requests):
    """After any acquire sequence, grants never conflict."""
    fsx = MountedPfs(4)

    def main():
        for node, lo_chunk, span, mode in requests:
            lo = lo_chunk * MB
            hi = lo + span * MB
            yield from fsx.clients[node].data.ensure_range(7, lo, hi, mode)

    fsx.run(main())
    final = grants(fsx, 7)
    for i, (a_lo, a_hi, a_node, a_mode) in enumerate(final):
        assert a_lo < a_hi
        for b_lo, b_hi, b_node, b_mode in final[i + 1:]:
            if b_node == a_node:
                continue
            overlap = a_lo < b_hi and b_lo < a_hi
            if overlap:
                assert a_mode == RO and b_mode == RO, (final)
