"""Shared fixtures: a small mounted parallel FS."""

import pytest

from repro.bench import build_flat_testbed
from repro.pfs import Pfs


class MountedPfs:
    """A 2-client testbed with helpers to run coroutines to completion."""

    def __init__(self, n_clients=2, config=None):
        self.testbed = build_flat_testbed(n_clients=n_clients)
        self.sim = self.testbed.sim
        self.pfs = Pfs(self.sim, self.testbed.servers, config)
        self.clients = [self.pfs.client(m) for m in self.testbed.clients]

    def run(self, coro):
        """Run one coroutine to completion, returning its value."""
        return self.sim.run_process(coro)

    def run_all(self, coros):
        """Run several coroutines concurrently; returns their values."""
        procs = [self.sim.process(c) for c in coros]

        def waiter():
            values = yield self.sim.all_of(procs)
            return values

        return self.sim.run_process(waiter())


@pytest.fixture
def fsx():
    return MountedPfs(n_clients=2)


@pytest.fixture
def fs(fsx):
    return fsx.clients[0]


@pytest.fixture
def fs2(fsx):
    return fsx.clients[1]
