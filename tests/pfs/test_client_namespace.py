"""POSIX namespace semantics of the parallel-FS client."""

import pytest

from repro.pfs import FsError, OpenFlags


def run(fsx, gen):
    return fsx.run(gen)


def test_mkdir_and_readdir(fsx, fs):
    def main():
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/a/b")
        return (yield from fs.readdir("/a"))

    assert run(fsx, main()) == ["b"]


def test_mkdir_existing_fails(fsx, fs):
    def main():
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/a")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EEXIST"


def test_mkdir_missing_parent_fails(fsx, fs):
    def main():
        yield from fs.mkdir("/ghost/sub")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOENT"


def test_create_stat_roundtrip(fsx, fs):
    def main():
        fh = yield from fs.create("/f.txt", mode=0o600)
        yield from fs.close(fh)
        return (yield from fs.stat("/f.txt"))

    attr = run(fsx, main())
    assert attr.is_file
    assert attr.mode == 0o600
    assert attr.size == 0
    assert attr.nlink == 1


def test_create_duplicate_fails(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.create("/f")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EEXIST"


def test_create_under_file_fails(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.create("/f/child")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOTDIR"


def test_stat_missing(fsx, fs):
    def main():
        yield from fs.stat("/nope")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOENT"


def test_unlink_removes(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.unlink("/f")
        return (yield from fs.readdir("/"))

    assert run(fsx, main()) == []


def test_unlink_missing(fsx, fs):
    def main():
        yield from fs.unlink("/nope")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOENT"


def test_unlink_directory_is_eisdir(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        yield from fs.unlink("/d")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EISDIR"


def test_rmdir(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        yield from fs.rmdir("/d")
        return (yield from fs.readdir("/"))

    assert run(fsx, main()) == []


def test_rmdir_non_empty(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        fh = yield from fs.create("/d/f")
        yield from fs.close(fh)
        yield from fs.rmdir("/d")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOTEMPTY"


def test_rmdir_of_file_is_enotdir(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.rmdir("/f")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOTDIR"


def test_directory_nlink_counts_subdirs(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        yield from fs.mkdir("/d/s1")
        yield from fs.mkdir("/d/s2")
        before = (yield from fs.stat("/d")).nlink
        yield from fs.rmdir("/d/s1")
        after = (yield from fs.stat("/d")).nlink
        return (before, after)

    assert run(fsx, main()) == (4, 3)


def test_rename_file(fsx, fs):
    def main():
        fh = yield from fs.create("/old")
        yield from fs.close(fh)
        yield from fs.rename("/old", "/new")
        names = yield from fs.readdir("/")
        attr = yield from fs.stat("/new")
        return (names, attr.is_file)

    names, is_file = run(fsx, main())
    assert names == ["new"]
    assert is_file


def test_rename_replaces_existing_file(fsx, fs):
    def main():
        fh = yield from fs.create("/a")
        yield from fs.write(fh, 0, data=b"AAA")
        yield from fs.close(fh)
        fh = yield from fs.create("/b")
        yield from fs.close(fh)
        yield from fs.rename("/a", "/b")
        fh = yield from fs.open("/b")
        data = yield from fs.read(fh, 0, 3, want_data=True)
        yield from fs.close(fh)
        return (data, (yield from fs.readdir("/")))

    data, names = run(fsx, main())
    assert data == b"AAA"
    assert names == ["b"]


def test_rename_across_directories(fsx, fs):
    def main():
        yield from fs.mkdir("/src")
        yield from fs.mkdir("/dst")
        fh = yield from fs.create("/src/f")
        yield from fs.close(fh)
        yield from fs.rename("/src/f", "/dst/g")
        return (
            (yield from fs.readdir("/src")),
            (yield from fs.readdir("/dst")),
        )

    assert run(fsx, main()) == ([], ["g"])


def test_rename_dir_onto_nonempty_dir_fails(fsx, fs):
    def main():
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        fh = yield from fs.create("/b/f")
        yield from fs.close(fh)
        yield from fs.rename("/a", "/b")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOTEMPTY"


def test_rename_dir_moves_tree(fsx, fs):
    def main():
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)
        yield from fs.rename("/a", "/b")
        return (yield from fs.readdir("/b"))

    assert run(fsx, main()) == ["f"]


def test_rename_missing_source(fsx, fs):
    def main():
        yield from fs.rename("/nope", "/x")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOENT"


def test_link_shares_inode(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, data=b"shared")
        yield from fs.close(fh)
        yield from fs.link("/f", "/g")
        a1 = yield from fs.stat("/f")
        a2 = yield from fs.stat("/g")
        fh = yield from fs.open("/g")
        data = yield from fs.read(fh, 0, 6, want_data=True)
        yield from fs.close(fh)
        return (a1.ino, a2.ino, a1.nlink, data)

    ino1, ino2, nlink, data = run(fsx, main())
    assert ino1 == ino2
    assert nlink == 2
    assert data == b"shared"


def test_unlink_one_of_two_links_keeps_data(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.link("/f", "/g")
        yield from fs.unlink("/f")
        attr = yield from fs.stat("/g")
        return attr.nlink

    assert run(fsx, main()) == 1


def test_link_to_directory_fails(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        yield from fs.link("/d", "/e")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EISDIR"


def test_symlink_and_readlink(fsx, fs):
    def main():
        fh = yield from fs.create("/target")
        yield from fs.close(fh)
        yield from fs.symlink("/target", "/ln")
        target = yield from fs.readlink("/ln")
        attr = yield from fs.stat("/ln")  # follows
        return (target, attr.is_file)

    target, is_file = run(fsx, main())
    assert target == "/target"
    assert is_file


def test_symlink_followed_in_paths(fsx, fs):
    def main():
        yield from fs.mkdir("/real")
        fh = yield from fs.create("/real/f")
        yield from fs.close(fh)
        yield from fs.symlink("/real", "/alias")
        return (yield from fs.stat("/alias/f")).is_file

    assert run(fsx, main()) is True


def test_readlink_of_file_is_einval(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.readlink("/f")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EINVAL"


def test_symlink_loop_detected(fsx, fs):
    def main():
        yield from fs.symlink("/b", "/a")
        yield from fs.symlink("/a", "/b")
        yield from fs.stat("/a")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "EINVAL"


def test_utime_sets_times(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.utime("/f", atime=123.0, mtime=456.0)
        return (yield from fs.stat("/f"))

    attr = run(fsx, main())
    assert attr.atime == 123.0
    assert attr.mtime == 456.0


def test_readdir_of_file_fails(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.readdir("/f")

    with pytest.raises(FsError) as err:
        run(fsx, main())
    assert err.value.code == "ENOTDIR"


def test_readdir_sorted_many_entries(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        for i in range(150):  # spans several directory blocks
            fh = yield from fs.create(f"/d/f{i:03d}")
            yield from fs.close(fh)
        return (yield from fs.readdir("/d"))

    names = run(fsx, main())
    assert names == sorted(names)
    assert len(names) == 150
