"""Data-path semantics: open/read/write/truncate, cross-node coherence."""

import pytest

from repro.pfs import FsError, OpenFlags


def test_write_read_roundtrip(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, data=b"hello world")
        yield from fs.close(fh)
        fh = yield from fs.open("/f")
        data = yield from fs.read(fh, 0, 11, want_data=True)
        yield from fs.close(fh)
        return data

    assert fsx.run(main()) == b"hello world"


def test_write_updates_size_and_mtime(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        before = (yield from fs.stat("/f")).mtime
        yield fsx.sim.timeout(5.0)
        yield from fs.write(fh, 100, size=50)
        yield from fs.close(fh)
        attr = yield from fs.stat("/f")
        return (attr.size, attr.mtime, before)

    size, mtime, before = fsx.run(main())
    assert size == 150
    assert mtime > before


def test_sparse_read_returns_zeros(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 4, data=b"xy")
        yield from fs.close(fh)
        fh = yield from fs.open("/f")
        data = yield from fs.read(fh, 0, 6, want_data=True)
        yield from fs.close(fh)
        return data

    assert fsx.run(main()) == b"\x00\x00\x00\x00xy"


def test_read_returns_count_without_data(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, size=1000)
        yield from fs.close(fh)
        fh = yield from fs.open("/f")
        count = yield from fs.read(fh, 200, 4000)
        yield from fs.close(fh)
        return count

    assert fsx.run(main()) == 800


def test_open_missing_fails(fsx, fs):
    def main():
        yield from fs.open("/nope")

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "ENOENT"


def test_open_creat_creates(fsx, fs):
    def main():
        fh = yield from fs.open("/f", OpenFlags.WRONLY | OpenFlags.CREAT)
        yield from fs.close(fh)
        return (yield from fs.stat("/f")).is_file

    assert fsx.run(main()) is True


def test_open_creat_excl_on_existing_fails(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.open("/f", OpenFlags.CREAT | OpenFlags.EXCL)

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "EEXIST"


def test_open_trunc_clears_contents(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, data=b"old contents")
        yield from fs.close(fh)
        fh = yield from fs.open("/f", OpenFlags.WRONLY | OpenFlags.TRUNC)
        yield from fs.close(fh)
        return (yield from fs.stat("/f")).size

    assert fsx.run(main()) == 0


def test_write_on_readonly_handle_fails(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        fh = yield from fs.open("/f", OpenFlags.RDONLY)
        yield from fs.write(fh, 0, size=10)

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "EINVAL"


def test_bad_handle_rejected(fsx, fs):
    def main():
        yield from fs.read(999, 0, 10)

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "EBADF"


def test_close_unknown_handle(fsx, fs):
    def main():
        yield from fs.close(12345)

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "EBADF"


def test_truncate_shrink_and_extend(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, data=b"0123456789")
        yield from fs.close(fh)
        yield from fs.truncate("/f", 4)
        mid = (yield from fs.stat("/f")).size
        yield from fs.truncate("/f", 20)
        fh = yield from fs.open("/f")
        data = yield from fs.read(fh, 0, 20, want_data=True)
        yield from fs.close(fh)
        return (mid, data)

    mid, data = fsx.run(main())
    assert mid == 4
    assert data == b"0123" + b"\x00" * 16


def test_cross_node_read_after_write(fsx, fs, fs2):
    def writer():
        fh = yield from fs.create("/shared.dat")
        yield from fs.write(fh, 0, data=b"from node0")
        yield from fs.close(fh)

    def reader():
        fh = yield from fs2.open("/shared.dat")
        data = yield from fs2.read(fh, 0, 10, want_data=True)
        yield from fs2.close(fh)
        return data

    def main():
        yield from writer()
        return (yield from reader())

    assert fsx.run(main()) == b"from node0"


def test_cross_node_stat_sees_fresh_attrs(fsx, fs, fs2):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.utime("/f", atime=1.0, mtime=2.0)
        attr = yield from fs2.stat("/f")
        return (attr.atime, attr.mtime)

    assert fsx.run(main()) == (1.0, 2.0)


def test_cross_node_utime_then_stat_back(fsx, fs, fs2):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs2.utime("/f", atime=7.0, mtime=8.0)
        attr = yield from fs.stat("/f")
        return (attr.atime, attr.mtime)

    assert fsx.run(main()) == (7.0, 8.0)


def test_concurrent_disjoint_shared_file_writes(fsx, fs, fs2):
    def writer(client, offset, payload):
        fh = yield from client.open("/big", OpenFlags.RDWR)
        yield from client.write(fh, offset, data=payload)
        yield from client.close(fh)

    def main():
        fh = yield from fs.create("/big")
        yield from fs.close(fh)
        p1 = fsx.sim.process(writer(fs, 0, b"AAAA"))
        p2 = fsx.sim.process(writer(fs2, 4, b"BBBB"))
        yield fsx.sim.all_of([p1, p2])
        fh = yield from fs.open("/big")
        data = yield from fs.read(fh, 0, 8, want_data=True)
        yield from fs.close(fh)
        return data

    assert fsx.run(main()) == b"AAAABBBB"


def test_fsync_waits_for_drain(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, size=4 * 1024 * 1024)
        yield from fs.fsync(fh)
        # after fsync nothing is dirty for this inode
        dirty = fs.data._has_dirty((yield from fs.stat("/f")).ino)
        yield from fs.close(fh)
        return dirty

    assert fsx.run(main()) is False


def test_unlink_while_data_cached_drops_chunks(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.write(fh, 0, size=2 * 1024 * 1024)
        yield from fs.close(fh)
        ino = (yield from fs.stat("/f")).ino
        yield from fs.unlink("/f")
        return any(k[0] == ino for k in fs.data._chunks)

    assert fsx.run(main()) is False
