"""Unit + property tests for sparse file contents."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfs.bytemap import ByteMap


def test_empty_map():
    bm = ByteMap()
    assert bm.size == 0
    assert bm.read(0, 10) == b""


def test_write_real_bytes_and_read_back():
    bm = ByteMap()
    assert bm.write(0, data=b"hello") == 5
    assert bm.size == 5
    assert bm.read(0, 5) == b"hello"
    assert bm.read(1, 3) == b"ell"


def test_synthetic_write_reads_zero():
    bm = ByteMap()
    bm.write(10, length=4)
    assert bm.size == 14
    assert bm.read(10, 4) == b"\x00" * 4


def test_hole_reads_zero():
    bm = ByteMap()
    bm.write(8, data=b"xy")
    assert bm.read(0, 10) == b"\x00" * 8 + b"xy"


def test_read_past_eof_truncated():
    bm = ByteMap()
    bm.write(0, data=b"abc")
    assert bm.read(1, 100) == b"bc"
    assert bm.read(5, 10) == b""


def test_overwrite_middle():
    bm = ByteMap()
    bm.write(0, data=b"aaaaaaaa")
    bm.write(2, data=b"BB")
    assert bm.read(0, 8) == b"aaBBaaaa"


def test_overwrite_extending():
    bm = ByteMap()
    bm.write(0, data=b"aaaa")
    bm.write(2, data=b"BBBB")
    assert bm.read(0, 6) == b"aaBBBB"
    assert bm.size == 6


def test_write_inside_existing_extent_splits_it():
    bm = ByteMap()
    bm.write(0, data=b"0123456789")
    bm.write(3, data=b"XYZ")
    assert bm.read(0, 10) == b"012XYZ6789"


def test_write_requires_exactly_one_source():
    bm = ByteMap()
    with pytest.raises(ValueError):
        bm.write(0)
    with pytest.raises(ValueError):
        bm.write(0, length=3, data=b"abc")


def test_write_zero_length():
    bm = ByteMap()
    assert bm.write(5, length=0) == 0
    assert bm.size == 0


def test_negative_offset_rejected():
    bm = ByteMap()
    with pytest.raises(ValueError):
        bm.write(-1, length=3)
    with pytest.raises(ValueError):
        bm.read(-1, 3)


def test_truncate_shrinks():
    bm = ByteMap()
    bm.write(0, data=b"0123456789")
    bm.truncate(4)
    assert bm.size == 4
    assert bm.read(0, 10) == b"0123"


def test_truncate_extends_with_hole():
    bm = ByteMap()
    bm.write(0, data=b"ab")
    bm.truncate(5)
    assert bm.size == 5
    assert bm.read(0, 5) == b"ab\x00\x00\x00"


def test_truncate_cuts_partial_extent():
    bm = ByteMap()
    bm.write(2, data=b"abcdef")
    bm.truncate(5)
    assert bm.read(0, 5) == b"\x00\x00abc"


def test_written_bytes_counts_extent_coverage():
    bm = ByteMap()
    bm.write(0, length=4)
    bm.write(8, length=4)
    assert bm.written_bytes(0, 12) == 8
    assert bm.written_bytes(2, 8) == 4
    assert bm.written_bytes(20, 5) == 0


WRITES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=120),
        st.binary(min_size=1, max_size=40),
    ),
    max_size=20,
)


@given(WRITES)
def test_bytemap_matches_reference_bytearray(writes):
    bm = ByteMap()
    reference = bytearray()
    for offset, payload in writes:
        bm.write(offset, data=payload)
        if len(reference) < offset + len(payload):
            reference.extend(b"\x00" * (offset + len(payload) - len(reference)))
        reference[offset: offset + len(payload)] = payload
    assert bm.size == len(reference)
    assert bm.read(0, len(reference) + 16) == bytes(reference)


@given(WRITES, st.integers(min_value=0, max_value=200))
def test_truncate_matches_reference(writes, cut):
    bm = ByteMap()
    reference = bytearray()
    for offset, payload in writes:
        bm.write(offset, data=payload)
        if len(reference) < offset + len(payload):
            reference.extend(b"\x00" * (offset + len(payload) - len(reference)))
        reference[offset: offset + len(payload)] = payload
    bm.truncate(cut)
    expected = bytes(reference[:cut]) + b"\x00" * max(0, cut - len(reference))
    assert bm.size == cut
    assert bm.read(0, cut) == expected
