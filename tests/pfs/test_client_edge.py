"""Parallel-FS client edge cases: races, paths, counters."""

import pytest

from repro.pfs import FsError, OpenFlags


def test_concurrent_mkdir_race_one_wins(fsx, fs, fs2):
    outcomes = []

    def racer(client):
        try:
            yield from client.mkdir("/contested")
            outcomes.append("ok")
        except FsError as exc:
            outcomes.append(exc.code)

    fsx.run_all([racer(fs), racer(fs2)])
    assert sorted(outcomes) == ["EEXIST", "ok"]


def test_concurrent_create_race_one_wins(fsx, fs, fs2):
    outcomes = []

    def racer(client):
        try:
            fh = yield from client.create("/the-file")
            yield from client.close(fh)
            outcomes.append("ok")
        except FsError as exc:
            outcomes.append(exc.code)

    fsx.run_all([racer(fs), racer(fs2)])
    assert sorted(outcomes) == ["EEXIST", "ok"]


def test_paths_normalize_through_operations(fsx, fs):
    def main():
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a//b.txt")
        yield from fs.close(fh)
        attr = yield from fs.stat("/a/./b.txt")
        attr2 = yield from fs.stat("/a/sub/../b.txt")
        return (attr.ino, attr2.ino)

    ino1, ino2 = fsx.run(main())
    assert ino1 == ino2


def test_relative_path_rejected(fsx, fs):
    def main():
        yield from fs.stat("not/absolute")

    with pytest.raises(ValueError):
        fsx.run(main())


def test_unlink_then_recreate_gets_new_inode(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        first = (yield from fs.stat("/f")).ino
        yield from fs.unlink("/f")
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        second = (yield from fs.stat("/f")).ino
        return (first, second)

    first, second = fsx.run(main())
    assert first != second


def test_many_open_handles(fsx, fs):
    def main():
        handles = []
        for i in range(20):
            handles.append((yield from fs.create(f"/f{i}")))
        for fh in handles:
            yield from fs.close(fh)
        return len(set(handles))

    assert fsx.run(main()) == 20


def test_create_inside_symlinked_dir(fsx, fs):
    def main():
        yield from fs.mkdir("/real")
        yield from fs.symlink("/real", "/link")
        fh = yield from fs.create("/link/file")
        yield from fs.close(fh)
        return (yield from fs.readdir("/real"))

    assert fsx.run(main()) == ["file"]


def test_counters_reflect_activity(fsx, fs):
    def main():
        for i in range(5):
            fh = yield from fs.create(f"/f{i}")
            yield from fs.close(fh)

    fsx.run(main())
    counters = fsx.pfs.counters()
    assert counters["token_acquires"] > 0
    log_writes = sum(
        v for k, v in counters.items() if k.endswith("log_writes")
    )
    assert log_writes >= 5  # each create forces the creator's journal


def test_dir_sizes_report_entry_counts(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        for i in range(7):
            fh = yield from fs.create(f"/d/f{i}")
            yield from fs.close(fh)
        return (yield from fs.stat("/d")).size

    assert fsx.run(main()) == 7


def test_rename_within_same_directory(fsx, fs):
    def main():
        yield from fs.mkdir("/d")
        fh = yield from fs.create("/d/old")
        yield from fs.close(fh)
        yield from fs.rename("/d/old", "/d/new")
        return (yield from fs.readdir("/d"))

    assert fsx.run(main()) == ["new"]


def test_write_at_large_offset_sparse(fsx, fs):
    def main():
        fh = yield from fs.create("/sparse")
        yield from fs.write(fh, 10_000_000, size=4)
        yield from fs.close(fh)
        return (yield from fs.stat("/sparse")).size

    assert fsx.run(main()) == 10_000_004


def test_eexist_create_leaves_no_orphan_inode(fsx, fs):
    def main():
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        inodes_before = len(fsx.pfs.state.inodes)
        try:
            yield from fs.create("/f")
        except FsError:
            pass
        return (inodes_before, len(fsx.pfs.state.inodes))

    before, after = fsx.run(main())
    assert before == after


def test_truncate_preserves_unflushed_chmod(fsx, fs):
    """A truncate must not clobber a dirty cached mode (payload in-place
    update, not a fresh inode snapshot)."""
    def main():
        fh = yield from fs.create("/t")
        yield from fs.close(fh)
        yield from fs.chmod("/t", 0o640)
        yield from fs.truncate("/t", 3)
        return (yield from fs.stat("/t"))

    attr = fsx.run(main())
    assert attr.mode == 0o640
    assert attr.size == 3


def test_link_preserves_unflushed_chmod(fsx, fs):
    def main():
        fh = yield from fs.create("/src")
        yield from fs.close(fh)
        yield from fs.chmod("/src", 0o600)
        yield from fs.link("/src", "/dst")
        return (yield from fs.stat("/dst"))

    attr = fsx.run(main())
    assert attr.mode == 0o600
    assert attr.nlink == 2
