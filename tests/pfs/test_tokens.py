"""Token manager invariants and behaviours."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.tokens import RO, XW, compatible, mode_covers
from tests.pfs.conftest import MountedPfs


def test_compatibility_matrix():
    assert compatible(RO, RO)
    assert not compatible(RO, XW)
    assert not compatible(XW, RO)
    assert not compatible(XW, XW)


def test_mode_covers():
    assert mode_covers(XW, RO)
    assert mode_covers(XW, XW)
    assert mode_covers(RO, RO)
    assert not mode_covers(RO, XW)


def hold_release(client, key, mode):
    entry = yield from client.tokens.hold(key, mode)
    entry.unpin()
    return entry


def test_grant_records_holder():
    fsx = MountedPfs(2)
    c0 = fsx.clients[0]
    key = ("attr", 424242)

    fsx.run(hold_release(c0, key, RO))
    assert fsx.pfs.token_server.holders_of(key) == {c0.name: RO}


def test_shared_read_tokens_coexist():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)

    def main():
        yield from hold_release(c0, key, RO)
        yield from hold_release(c1, key, RO)

    fsx.run(main())
    assert fsx.pfs.token_server.holders_of(key) == {c0.name: RO, c1.name: RO}


def test_exclusive_revokes_other_holder():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)

    def main():
        yield from hold_release(c0, key, XW)
        yield from hold_release(c1, key, XW)

    fsx.run(main())
    assert fsx.pfs.token_server.holders_of(key) == {c1.name: XW}
    assert c0.tokens.cached(key) is None
    assert c1.tokens.cached(key) is not None


def test_read_request_downgrades_writer():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)

    def main():
        yield from hold_release(c0, key, XW)
        yield from hold_release(c1, key, RO)

    fsx.run(main())
    holders = fsx.pfs.token_server.holders_of(key)
    assert holders == {c0.name: RO, c1.name: RO}
    assert c0.tokens.cached(key).mode == RO


def test_revoke_waits_for_pinned_user():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)
    trace = []

    def pin_holder():
        entry = yield from c0.tokens.hold(key, XW)
        yield fsx.sim.timeout(10.0)
        trace.append(("unpin", fsx.sim.now))
        entry.unpin()

    def contender():
        yield fsx.sim.timeout(1.0)
        entry = yield from c1.tokens.hold(key, XW)
        trace.append(("granted", fsx.sim.now))
        entry.unpin()

    fsx.run_all([pin_holder(), contender()])
    unpin_t = dict(trace)["unpin"]
    granted_t = dict(trace)["granted"]
    assert granted_t > unpin_t  # grant only after the pin was released


def test_dirty_token_flushes_on_revoke():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)
    flushed = []

    def flush_cb():
        flushed.append(fsx.sim.now)
        yield fsx.sim.timeout(0.5)

    def holder():
        entry = yield from c0.tokens.hold(key, XW)
        entry.mark_dirty(flush_cb)
        entry.unpin()

    def contender():
        yield fsx.sim.timeout(1.0)
        entry = yield from c1.tokens.hold(key, RO)
        entry.unpin()

    fsx.run_all([holder(), contender()])
    assert len(flushed) == 1


def test_grant_local_is_serverless_but_revocable():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients

    def main():
        # Allocate an inode so c0 owns its segment.
        inode = fsx.pfs.state.inodes.allocate("file", 0o644, 0, 0, 0.0, c0.name)
        key = ("attr", inode.ino)
        before = fsx.pfs.token_server.acquires
        entry = yield from c0.tokens.grant_local(key, XW)
        entry.unpin()
        assert fsx.pfs.token_server.acquires == before  # no server traffic
        # Another node's acquire must revoke the delegated token.
        entry2 = yield from c1.tokens.hold(key, RO)
        entry2.unpin()
        return (c0.tokens.cached(key), key)

    cached, key = fsx.run(main())
    holders = fsx.pfs.token_server.holders_of(key)
    assert holders[c1.name] == RO
    assert holders.get(c0.name) in (None, RO)


def test_revoke_all_strips_everyone():
    fsx = MountedPfs(2)
    c0, c1 = fsx.clients
    key = ("attr", 424242)

    def main():
        yield from hold_release(c0, key, RO)
        yield from hold_release(c1, key, RO)
        yield from c0.machine.call(
            fsx.pfs.token_machine, "tokmgr", "revoke_all",
            args=(c0.name, key),
        )

    fsx.run(main())
    assert fsx.pfs.token_server.holders_of(key) == {}
    assert c1.tokens.cached(key) is None


def test_token_cache_eviction_relinquishes():
    config = None
    fsx = MountedPfs(1)
    c0 = fsx.clients[0]
    cap = fsx.pfs.config.attr_cache_entries

    def main():
        for i in range(cap + 10):
            entry = yield from c0.tokens.hold(("attr", 10_000_000 + i), RO)
            entry.unpin()
        return len(c0.tokens._caches["attr"])

    assert fsx.run(main()) <= cap


MODES = st.sampled_from([RO, XW])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), MODES), min_size=1, max_size=16))
def test_never_two_conflicting_holders(ops):
    """Random acquire storms never leave conflicting granted tokens."""
    fsx = MountedPfs(3)
    key = ("attr", 424242)

    def worker(client, mode):
        entry = yield from client.tokens.hold(key, mode)
        yield fsx.sim.timeout(0.1)
        entry.unpin()

    fsx.run_all([worker(fsx.clients[n], m) for n, m in ops])
    holders = fsx.pfs.token_server.holders_of(key)
    writers = [n for n, m in holders.items() if m == XW]
    assert len(writers) <= 1
    if writers:
        assert len(holders) == 1
    # client caches agree with the server's map
    for client in fsx.clients:
        cached = client.tokens.cached(key)
        if cached is not None and not cached.revoking:
            assert holders.get(client.name) == cached.mode
