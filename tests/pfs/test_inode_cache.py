"""Unit tests for inode allocation (segments) and the LRU cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pfs.cache import LruDict
from repro.pfs.inode import InodeTable
from repro.pfs.types import DIRECTORY, FILE, SYMLINK


def alloc(table, creator="n0", kind=FILE):
    return table.allocate(kind, 0o644, 0, 0, 0.0, creator)


def test_allocate_assigns_unique_inos():
    t = InodeTable()
    inos = {alloc(t).ino for _ in range(100)}
    assert len(inos) == 100


def test_per_creator_segments_are_disjoint():
    t = InodeTable()
    a = [alloc(t, "a").ino for _ in range(10)]
    b = [alloc(t, "b").ino for _ in range(10)]
    assert t.segment_of(a[0]) != t.segment_of(b[0])
    assert t.segment_owner(t.segment_of(a[0])) == "a"
    assert t.segment_owner(t.segment_of(b[0])) == "b"


def test_same_creator_inos_are_contiguous():
    t = InodeTable()
    inos = [alloc(t, "a").ino for _ in range(5)]
    assert inos == list(range(inos[0], inos[0] + 5))


def test_segment_rollover():
    t = InodeTable()
    first = alloc(t, "a").ino
    t._segments["a"][0] = t._segments["a"][1]  # exhaust the segment
    nxt = alloc(t, "a").ino
    assert t.segment_of(nxt) != t.segment_of(first)
    assert t.segment_owner(t.segment_of(nxt)) == "a"


def test_free_removes_inode():
    t = InodeTable()
    inode = alloc(t)
    assert inode.ino in t
    t.free(inode.ino)
    assert inode.ino not in t
    assert t.get(inode.ino) is None


def test_block_packing():
    t = InodeTable(pack=8)
    inos = [alloc(t, "a").ino for _ in range(10)]
    blocks = {t.block_of(i) for i in inos}
    assert len(blocks) == 2  # 10 inodes over 8-inode blocks
    in_block = t.inos_in_block(t.block_of(inos[0]))
    assert inos[0] in in_block


def test_inode_kinds():
    t = InodeTable()
    f = alloc(t, kind=FILE)
    d = alloc(t, kind=DIRECTORY)
    s = alloc(t, kind=SYMLINK)
    assert f.is_file and f.data is not None and f.dir is None
    assert d.is_dir and d.dir is not None and d.data is None
    assert d.nlink == 2
    assert s.is_symlink


def test_dir_inode_attr_size_is_entry_count():
    t = InodeTable()
    d = alloc(t, kind=DIRECTORY)
    d.dir.insert("a", 5)
    d.dir.insert("b", 6)
    assert d.attr().size == 2


def test_file_attr_snapshot():
    t = InodeTable()
    f = alloc(t)
    f.size = 42
    attr = f.attr()
    assert attr.size == 42
    assert attr.ino == f.ino
    attr.size = 0
    assert f.size == 42  # snapshot, not alias


# -- LruDict ------------------------------------------------------------------


def test_lru_put_get():
    c = LruDict(2)
    assert c.put("a", 1) == []
    assert c.get("a") == 1
    assert c.get("missing") is None
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = LruDict(2)
    c.put("a", 1)
    c.put("b", 2)
    evicted = c.put("c", 3)
    assert evicted == [("a", 1)]
    assert "a" not in c and "b" in c and "c" in c


def test_lru_get_refreshes_recency():
    c = LruDict(2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")
    evicted = c.put("c", 3)
    assert evicted == [("b", 2)]


def test_lru_peek_does_not_refresh():
    c = LruDict(2)
    c.put("a", 1)
    c.put("b", 2)
    c.peek("a")
    evicted = c.put("c", 3)
    assert evicted == [("a", 1)]


def test_lru_overwrite_does_not_evict():
    c = LruDict(2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.put("a", 10) == []
    assert c.get("a") == 10


def test_lru_pinned_entries_survive():
    c = LruDict(2, pinned=lambda v: v.get("pinned", False))
    c.put("a", {"pinned": True})
    c.put("b", {"pinned": False})
    evicted = c.put("c", {"pinned": False})
    assert [k for k, _v in evicted] == ["b"]
    assert "a" in c


def test_lru_all_pinned_allows_overflow():
    c = LruDict(2, pinned=lambda v: True)
    c.put("a", 1)
    c.put("b", 2)
    assert c.put("c", 3) == []
    assert len(c) == 3


def test_lru_pop_and_clear():
    c = LruDict(4)
    c.put("a", 1)
    assert c.pop("a") == 1
    assert c.pop("a") is None
    c.put("b", 2)
    c.clear()
    assert len(c) == 0


def test_lru_capacity_validation():
    with pytest.raises(ValueError):
        LruDict(0)


@given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
def test_lru_never_exceeds_capacity_and_keeps_recent(accesses):
    capacity = 8
    c = LruDict(capacity)
    for key in accesses:
        c.put(key, key)
        assert len(c) <= capacity
    # the most recently inserted distinct keys are present
    recent = []
    for key in reversed(accesses):
        if key not in recent:
            recent.append(key)
        if len(recent) == capacity:
            break
    for key in recent:
        assert key in c
