"""Unit + property tests for extendible-hash directories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.directory import ExtendibleDir, name_hash


def test_empty_dir():
    d = ExtendibleDir(block_capacity=4)
    assert len(d) == 0
    assert d.lookup("x") is None
    assert d.global_depth == 0
    assert d.n_blocks == 1


def test_insert_and_lookup():
    d = ExtendibleDir(block_capacity=4)
    d.insert("a", 10)
    assert d.lookup("a") == 10
    assert "a" in d
    assert len(d) == 1


def test_duplicate_insert_raises():
    d = ExtendibleDir(block_capacity=4)
    d.insert("a", 10)
    with pytest.raises(KeyError):
        d.insert("a", 11)


def test_remove():
    d = ExtendibleDir(block_capacity=4)
    d.insert("a", 10)
    assert d.remove("a") is True
    assert d.lookup("a") is None
    assert d.remove("a") is False


def test_version_bumps_on_mutation():
    d = ExtendibleDir(block_capacity=4)
    v0 = d.version
    d.insert("a", 1)
    assert d.version > v0
    v1 = d.version
    d.remove("a")
    assert d.version > v1


def test_splits_happen_and_entries_survive():
    d = ExtendibleDir(block_capacity=4)
    for i in range(64):
        d.insert(f"file{i}", i)
    assert d.n_blocks > 1
    assert d.splits > 0
    assert d.global_depth >= 3
    for i in range(64):
        assert d.lookup(f"file{i}") == i


def test_block_of_is_stable_between_mutations_of_other_blocks():
    d = ExtendibleDir(block_capacity=64)
    d.insert("stable", 1)
    block = d.block_of("stable")
    # inserting into other buckets without splitting keeps the mapping
    for i in range(10):
        d.insert(f"x{i}", i)
    if d.splits == 0:
        assert d.block_of("stable") == block


def test_entries_lists_everything_once():
    d = ExtendibleDir(block_capacity=4)
    expected = {}
    for i in range(40):
        d.insert(f"f{i}", i)
        expected[f"f{i}"] = i
    assert dict(d.entries()) == expected
    assert sorted(d.names()) == sorted(expected)


def test_min_block_capacity():
    with pytest.raises(ValueError):
        ExtendibleDir(block_capacity=1)


def test_name_hash_is_stable():
    assert name_hash("hello") == name_hash("hello")
    assert name_hash("hello") != name_hash("world")


NAMES = st.lists(
    st.text(alphabet="abcdefgh0123456789._-", min_size=1, max_size=12),
    unique=True,
    max_size=120,
)


@settings(max_examples=50)
@given(NAMES, st.sampled_from([2, 4, 8, 64]))
def test_directory_matches_model_dict(names, capacity):
    d = ExtendibleDir(block_capacity=capacity)
    model = {}
    for ino, name in enumerate(names):
        d.insert(name, ino)
        model[name] = ino
    assert len(d) == len(model)
    for name, ino in model.items():
        assert d.lookup(name) == ino
    assert dict(d.entries()) == model


@settings(max_examples=50)
@given(NAMES, st.data())
def test_directory_with_removals_matches_model(names, data):
    d = ExtendibleDir(block_capacity=4)
    model = {}
    for ino, name in enumerate(names):
        d.insert(name, ino)
        model[name] = ino
    if model:
        to_remove = data.draw(
            st.lists(st.sampled_from(sorted(model)), unique=True)
        )
        for name in to_remove:
            assert d.remove(name) is True
            del model[name]
    assert dict(d.entries()) == model
    for name in names:
        assert d.lookup(name) == model.get(name)


@settings(max_examples=30)
@given(NAMES)
def test_invariant_entries_live_in_their_hash_bucket(names):
    d = ExtendibleDir(block_capacity=4)
    for ino, name in enumerate(names):
        d.insert(name, ino)
    # Every entry must be found in the bucket its hash addresses, and
    # every block's local depth must not exceed the global depth.
    for block in d.blocks():
        assert block.local_depth <= d.global_depth
        for name in block.entries:
            assert d._bucket_for(name) is block
