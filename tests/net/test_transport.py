"""Unit tests for links, transfers and RPC."""

import pytest

from repro.cluster import Machine
from repro.net import Network, RemoteError, Topology
from repro.sim import Simulator


def small_net(bandwidth=1000.0, latency=0.5):
    sim = Simulator()
    topo = Topology(sim)
    topo.add_switch("sw")
    for name in ("a", "b"):
        topo.add_host(name)
        topo.add_link(name, "sw", bandwidth=bandwidth, latency=latency)
    net = Network(sim, topo)
    machines = {name: Machine(sim, net, name) for name in ("a", "b")}
    return sim, topo, net, machines


def test_transfer_time_two_hops():
    sim, _topo, net, _m = small_net(bandwidth=1000.0, latency=0.5)

    def proc(sim):
        yield from net.transfer("a", "b", 1000)
        return sim.now

    # Two hops, store-and-forward: 2 * (1000/1000 + 0.5) = 3.0 ms.
    assert sim.run_process(proc(sim)) == pytest.approx(3.0)


def test_transfer_same_host_is_free():
    sim, _topo, net, _m = small_net()

    def proc(sim):
        yield from net.transfer("a", "a", 10_000_000)
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_link_contention_serializes_large_messages():
    size = 128 * 1024  # above the small-message fast path
    sim, topo, net, _m = small_net(bandwidth=float(size), latency=0.0)
    finish = []

    def proc(sim, tag):
        yield from net.transfer("a", "b", size)
        finish.append((tag, sim.now))

    for tag in range(3):
        sim.process(proc(sim, tag))
    sim.run()
    # Each message holds each 1ms hop in turn; the pipeline drains one per ms.
    assert finish == [(0, 2.0), (1, 3.0), (2, 4.0)]
    assert topo.link("a", "sw").messages_carried == 3


def test_small_messages_use_uncontended_fast_path():
    sim, topo, net, _m = small_net(bandwidth=1000.0, latency=0.0)
    finish = []

    def proc(sim, tag):
        yield from net.transfer("a", "b", 1000)
        finish.append((tag, sim.now))

    for tag in range(3):
        sim.process(proc(sim, tag))
    sim.run()
    # Small control messages don't queue on an idle link (modeling choice:
    # their wire time is negligible next to the effects under study).
    assert [t for _tag, t in finish] == [2.0, 2.0, 2.0]
    assert topo.link("a", "sw").messages_carried == 3


def test_reverse_directions_do_not_contend():
    sim, _topo, net, _m = small_net(bandwidth=1000.0, latency=0.0)
    finish = {}

    def proc(sim, src, dst):
        yield from net.transfer(src, dst, 1000)
        finish[(src, dst)] = sim.now

    sim.process(proc(sim, "a", "b"))
    sim.process(proc(sim, "b", "a"))
    sim.run()
    assert finish[("a", "b")] == pytest.approx(2.0)
    assert finish[("b", "a")] == pytest.approx(2.0)


class EchoService:
    def __init__(self, sim, delay=0.0):
        self.sim = sim
        self.delay = delay
        self.calls = 0

    def echo(self, value):
        self.calls += 1
        if self.delay:
            yield self.sim.timeout(self.delay)
        return ("echo", value)

    def explode(self):
        yield self.sim.timeout(0.1)
        raise FileNotFoundError("no such thing")


def test_rpc_round_trip_value():
    sim, _topo, net, m = small_net(bandwidth=125000.0, latency=0.04)
    service = m["b"].register("echo", EchoService(sim, delay=1.0))

    def proc(sim):
        value = yield from m["a"].call(m["b"], "echo", "echo", args=("hi",))
        return (value, sim.now)

    value, elapsed = sim.run_process(proc(sim))
    assert value == ("echo", "hi")
    assert service.calls == 1
    # 2 hops each way (~0.044ms + 0.04ms latency per hop) + 1ms service.
    assert 1.1 < elapsed < 1.4


def test_rpc_exception_propagates_after_reply():
    sim, _topo, net, m = small_net(bandwidth=125000.0, latency=0.1)
    m["b"].register("echo", EchoService(sim))

    def proc(sim):
        try:
            yield from m["a"].call(m["b"], "echo", "explode")
        except FileNotFoundError:
            return sim.now
        raise AssertionError("expected FileNotFoundError")

    elapsed = sim.run_process(proc(sim))
    # The reply transfer is paid before the exception is re-raised.
    assert elapsed > 0.4


def test_rpc_local_call_skips_network():
    sim, _topo, net, m = small_net()
    m["a"].register("echo", EchoService(sim))
    before = net.bytes_sent

    def proc(sim):
        value = yield from m["a"].call(m["a"], "echo", "echo", args=(1,))
        return value

    assert sim.run_process(proc(sim)) == ("echo", 1)
    # Messages are counted but carried over zero hops.
    assert net.bytes_sent == before + 1024


def test_rpc_unknown_service_is_remote_error():
    sim, _topo, _net, m = small_net()

    def proc(sim):
        yield from m["a"].call(m["b"], "ghost", "echo")

    with pytest.raises(RemoteError):
        sim.run_process(proc(sim))


def test_rpc_unknown_method_is_remote_error():
    sim, _topo, _net, m = small_net()
    m["b"].register("echo", EchoService(sim))

    def proc(sim):
        yield from m["a"].call(m["b"], "echo", "ghost")

    with pytest.raises(RemoteError):
        sim.run_process(proc(sim))


def test_register_duplicate_service_rejected():
    sim, _topo, _net, m = small_net()
    m["a"].register("echo", EchoService(sim))
    with pytest.raises(ValueError):
        m["a"].register("echo", EchoService(sim))
