"""Unit tests for topology construction and routing."""

import pytest

from repro.net import Topology
from repro.sim import Simulator


def star():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_switch("sw")
    for i in range(3):
        topo.add_host(f"h{i}")
        topo.add_link(f"h{i}", "sw", bandwidth=125000.0, latency=0.04)
    return sim, topo


def test_hosts_listing():
    _sim, topo = star()
    assert topo.hosts() == ["h0", "h1", "h2"]
    assert topo.is_host("h0")
    assert not topo.is_host("sw")


def test_duplicate_node_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("a")
    with pytest.raises(ValueError):
        topo.add_host("a")
    with pytest.raises(ValueError):
        topo.add_switch("a")


def test_link_requires_known_nodes():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("a")
    with pytest.raises(ValueError):
        topo.add_link("a", "ghost", bandwidth=1.0, latency=0.0)


def test_duplicate_link_rejected():
    _sim, topo = star()
    with pytest.raises(ValueError):
        topo.add_link("h0", "sw", bandwidth=1.0, latency=0.0)


def test_route_via_switch():
    _sim, topo = star()
    route = topo.route("h0", "h1")
    assert [link.name for link in route] == ["h0->sw", "sw->h1"]
    assert topo.hop_count("h0", "h1") == 2


def test_route_to_self_is_empty():
    _sim, topo = star()
    assert topo.route("h0", "h0") == []
    assert topo.hop_count("h0", "h0") == 0


def test_route_is_cached_and_directional():
    _sim, topo = star()
    first = topo.route("h0", "h2")
    again = topo.route("h0", "h2")
    assert first is again
    back = topo.route("h2", "h0")
    assert [link.name for link in back] == ["h2->sw", "sw->h0"]


def test_hierarchical_route_crosses_switches():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_switch("sw0")
    topo.add_switch("sw1")
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "sw0", bandwidth=1.0, latency=0.0)
    topo.add_link("sw0", "sw1", bandwidth=1.0, latency=0.0)
    topo.add_link("sw1", "b", bandwidth=1.0, latency=0.0)
    assert topo.hop_count("a", "b") == 3


def test_link_parameter_validation():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(ValueError):
        topo.add_link("a", "b", bandwidth=0.0, latency=0.0)
    with pytest.raises(ValueError):
        topo.add_link("a", "b", bandwidth=1.0, latency=-1.0)
