"""Reporters and testbed builders."""

import pytest

from repro.bench import build_flat_testbed, build_hier_testbed
from repro.bench.report import format_series, format_table, speedup


def test_format_table_alignment():
    text = format_table(
        ["op", "ms"], [["create", 21.92], ["stat", 8.1]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "create" in lines[3]
    assert "21.92" in lines[3]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned


def test_format_series_merges_x_values():
    text = format_series(
        "title", "x", "ms",
        {"a": [(1, 1.0), (2, 2.0)], "b": [(2, 4.0), (3, 9.0)]},
    )
    assert "title" in text
    assert "-" in text  # missing cells are dashes
    assert "9.00" in text


def test_speedup():
    assert speedup(10.0, 2.0) == 5.0
    assert speedup(10.0, 0.0) == float("inf")


def test_flat_testbed_shape():
    tb = build_flat_testbed(n_clients=3, n_servers=2, with_mds=True)
    assert len(tb.clients) == 3
    assert len(tb.servers) == 2
    assert tb.mds is not None
    # every client reaches every server in 2 hops through the switch
    assert tb.topology.hop_count("node0", "server1") == 2


def test_hier_testbed_chains_blade_centers():
    tb = build_hier_testbed(n_clients=24, blades_per_bc=8)
    # node 0 is in BC0 (servers' BC); node 23 in BC2, 2 uplinks away
    assert tb.topology.hop_count("node0", "server0") == 2
    assert tb.topology.hop_count("node23", "server0") == 4


def test_hier_testbed_uplinks_are_shared():
    tb = build_hier_testbed(n_clients=16, blades_per_bc=8)
    route_a = tb.topology.route("node8", "server0")
    route_b = tb.topology.route("node15", "server0")
    assert route_a[1] is route_b[1]  # same bc1->bc0 uplink object
