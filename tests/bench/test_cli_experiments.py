"""The bench CLI and the experiment registry."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import EXPERIMENTS, run_ablation_mds


def test_registry_covers_every_paper_item():
    expected = {
        "fig1", "fig2", "fig4", "fig5", "fig5b", "fig6", "table1",
        "ablation-placement", "ablation-mds", "scaling-mds",
        "scaling-rebalance", "scaling-split", "scaling-failover",
        "scaling-async",
    }
    assert set(EXPERIMENTS) == expected


def test_cli_runs_an_experiment(capsys):
    assert main(["ablation-mds"]) == 0
    out = capsys.readouterr().out
    assert "Ablation" in out
    assert "sync-log" in out
    assert "took" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_experiment_returns_structured_results():
    out = run_ablation_mds()
    assert ("sync-log", "create") in out["results"]
    assert ("async-log", "utime") in out["results"]
    assert out["results"][("sync-log", "utime")] > \
        out["results"][("async-log", "utime")]


def test_experiments_are_deterministic():
    a = run_ablation_mds()
    b = run_ablation_mds()
    assert a["results"] == b["results"]
