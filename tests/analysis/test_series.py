"""Unit + property tests for the analysis helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    crossover,
    find_cliff,
    linear_fit,
    monotone,
    plateau,
    scaling_exponent,
    speedup_series,
)


def test_find_cliff_locates_jump():
    series = [(128, 0.05), (512, 0.05), (1024, 0.06), (2048, 2.6)]
    assert find_cliff(series, factor=3.0) == 2048


def test_find_cliff_none_when_flat():
    assert find_cliff([(1, 1.0), (2, 1.1), (3, 1.2)]) is None


def test_find_cliff_empty_rejected():
    with pytest.raises(ValueError):
        find_cliff([])


def test_plateau_tail_mean():
    series = [(32, 20.0), (128, 10.0), (512, 4.0), (2048, 3.0), (8192, 2.0)]
    assert plateau(series, tail=3) == pytest.approx(3.0)


def test_crossover_found():
    a = [(1, 5.0), (2, 5.0), (3, 5.0)]
    b = [(1, 9.0), (2, 6.0), (3, 4.0)]
    assert crossover(a, b) == 3


def test_crossover_none_when_ordering_stable():
    a = [(1, 1.0), (2, 1.0)]
    b = [(1, 2.0), (2, 2.0)]
    assert crossover(a, b) is None


def test_crossover_requires_shared_domain():
    with pytest.raises(ValueError):
        crossover([(1, 1.0)], [(2, 2.0)])


def test_speedup_series():
    base = [(4, 20.0), (8, 40.0)]
    improved = [(4, 5.0), (8, 5.0)]
    assert speedup_series(base, improved) == [(4, 4.0), (8, 8.0)]


def test_speedup_series_zero_improved_is_inf():
    assert speedup_series([(1, 3.0)], [(1, 0.0)]) == [(1, math.inf)]


def test_monotone_directions():
    up = [(1, 1.0), (2, 2.0), (3, 3.0)]
    assert monotone(up, "increasing")
    assert not monotone(up, "decreasing")
    wiggle = [(1, 1.0), (2, 0.98), (3, 3.0)]
    assert not monotone(wiggle, "increasing")
    assert monotone(wiggle, "increasing", tolerance=0.05)


def test_linear_fit_exact_line():
    slope, intercept, r2 = linear_fit([(0, 1.0), (1, 3.0), (2, 5.0)])
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)
    assert r2 == pytest.approx(1.0)


def test_linear_fit_requires_two_points():
    with pytest.raises(ValueError):
        linear_fit([(1, 1.0)])
    with pytest.raises(ValueError):
        linear_fit([(1, 1.0), (1, 2.0)])


def test_scaling_exponent_linear_and_flat():
    linear = [(1, 10.0), (2, 20.0), (4, 40.0), (8, 80.0)]
    assert scaling_exponent(linear) == pytest.approx(1.0)
    flat = [(1, 5.0), (2, 5.0), (4, 5.0)]
    assert scaling_exponent(flat) == pytest.approx(0.0, abs=1e-9)


@given(st.floats(0.1, 10), st.floats(-5, 5),
       st.lists(st.floats(1, 100), min_size=3, max_size=10, unique=True))
def test_linear_fit_recovers_parameters(slope, intercept, xs):
    points = [(x, slope * x + intercept) for x in xs]
    got_slope, got_intercept, r2 = linear_fit(points)
    assert got_slope == pytest.approx(slope, rel=1e-6, abs=1e-6)
    assert got_intercept == pytest.approx(intercept, rel=1e-6, abs=1e-6)
    assert r2 == pytest.approx(1.0, abs=1e-6)


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(0.1, 100)),
                min_size=1, max_size=20))
def test_plateau_bounded_by_series(points):
    deduped = {x: y for x, y in points}
    series = sorted(deduped.items())
    level = plateau(series)
    ys = [y for _x, y in series]
    assert min(ys) - 1e-9 <= level <= max(ys) + 1e-9
