"""Application workloads: checkpointing and job bundles."""

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.units import MB
from repro.workloads.apps import (
    CheckpointConfig,
    JobBundleConfig,
    run_checkpoint,
    run_job_bundle,
)


def bare(n=4):
    return PfsStack(build_flat_testbed(n_clients=n))


def cofs(n=4):
    return CofsStack(build_flat_testbed(n_clients=n, with_mds=True))


def test_checkpoint_rounds_recorded():
    config = CheckpointConfig(nodes=4, rounds=3, bytes_per_node=1 * MB,
                              compute_ms=10.0)
    result = run_checkpoint(bare(), config)
    assert len(result.round_wall_ms) == 3
    assert result.create_ms.n == 12
    assert result.mean_round_ms > 0


def test_checkpoint_files_exist():
    config = CheckpointConfig(nodes=2, rounds=2, bytes_per_node=1 * MB,
                              compute_ms=1.0)
    stack = bare(2)
    run_checkpoint(stack, config)
    names = stack.testbed.sim.run_process(
        stack.mount(0).readdir(config.directory)
    )
    assert len(names) == 4  # 2 nodes x 2 rounds


def test_checkpoint_cofs_faster_creates():
    config = CheckpointConfig(nodes=4, rounds=3, bytes_per_node=1 * MB,
                              compute_ms=10.0)
    bare_result = run_checkpoint(bare(), config)
    cofs_result = run_checkpoint(cofs(), config)
    assert cofs_result.create_ms.mean < bare_result.create_ms.mean


def test_job_bundle_counts_and_makespan():
    config = JobBundleConfig(jobs=16, nodes=4, output_bytes=64 * 1024,
                             job_compute_ms=5.0)
    result = run_job_bundle(bare(), config)
    assert result.job_ms.n == 16
    assert result.makespan_ms >= result.job_ms.max
    assert result.jobs_per_second > 0


def test_job_bundle_outputs_exist():
    config = JobBundleConfig(jobs=10, nodes=2, output_bytes=1024,
                             job_compute_ms=1.0)
    stack = bare(2)
    run_job_bundle(stack, config)
    names = stack.testbed.sim.run_process(
        stack.mount(0).readdir(config.directory)
    )
    assert len(names) == 10


def test_job_bundle_cofs_improves_throughput():
    # Needs a bundle big enough that shared-directory serialization (not
    # COFS's fixed bucket setup costs) dominates the makespan.
    config = JobBundleConfig(jobs=96, nodes=8, output_bytes=64 * 1024,
                             job_compute_ms=10.0)
    bare_result = run_job_bundle(bare(8), config)
    cofs_result = run_job_bundle(cofs(8), config)
    assert cofs_result.makespan_ms < bare_result.makespan_ms
