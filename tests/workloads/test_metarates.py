"""The metarates clone: counts, phases, setup protocol."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import PfsStack
from repro.workloads import MetaratesConfig, run_metarates


def small_stack(n=2):
    return PfsStack(build_flat_testbed(n_clients=n))


def test_config_totals():
    cfg = MetaratesConfig(nodes=4, procs_per_node=2, files_per_proc=10)
    assert cfg.n_procs == 8
    assert cfg.total_files == 80


def test_create_phase_counts():
    stack = small_stack()
    cfg = MetaratesConfig(nodes=2, files_per_proc=8, ops=("create",))
    result = run_metarates(stack, cfg)
    assert result.recorder.count("create") == 16
    assert result.mean_ms("create") > 0
    assert result.phase_wall_ms["create"] > 0
    assert result.rate_per_s("create") > 0


def test_all_ops_recorded():
    stack = small_stack()
    cfg = MetaratesConfig(nodes=2, files_per_proc=4)
    result = run_metarates(stack, cfg)
    for op in ("create", "stat", "utime", "open"):
        assert result.recorder.count(op) == 8, op


def test_cleanup_leaves_empty_directory():
    stack = small_stack()
    cfg = MetaratesConfig(nodes=2, files_per_proc=4, directory="/bench/d")
    run_metarates(stack, cfg)
    names = stack.testbed.sim.run_process(stack.mount(0).readdir("/bench/d"))
    assert names == []


def test_no_cleanup_keeps_files():
    stack = small_stack()
    cfg = MetaratesConfig(
        nodes=2, files_per_proc=3, ops=("create",), cleanup=False
    )
    run_metarates(stack, cfg)
    names = stack.testbed.sim.run_process(
        stack.mount(0).readdir("/bench/shared")
    )
    assert len(names) == 6


def test_two_procs_per_node_partition_files():
    stack = small_stack(1)
    cfg = MetaratesConfig(
        nodes=1, procs_per_node=2, files_per_proc=5, ops=("create",),
        cleanup=False,
    )
    result = run_metarates(stack, cfg)
    assert result.recorder.count("create") == 10
    names = stack.testbed.sim.run_process(
        stack.mount(0).readdir("/bench/shared")
    )
    ranks = {name.split(".")[1] for name in names}
    assert ranks == {"0000", "0001"}


def test_unknown_op_rejected():
    stack = small_stack()
    cfg = MetaratesConfig(nodes=1, files_per_proc=2, ops=("chmod",))
    with pytest.raises(ValueError):
        run_metarates(stack, cfg)


def test_mean_reflects_samples():
    stack = small_stack()
    cfg = MetaratesConfig(nodes=2, files_per_proc=8, ops=("create",))
    result = run_metarates(stack, cfg)
    samples = result.recorder.samples("create")
    assert result.mean_ms("create") == pytest.approx(
        sum(samples) / len(samples)
    )
