"""The interference workload (paper §I's production observation)."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.workloads.interference import InterferenceConfig, run_interference


def small_config():
    return InterferenceConfig(
        storm_nodes=3, storm_files_per_node=64, bystander_ops=5,
        preexisting_files=24, stat_entries=8,
    )


def test_interference_measures_both_passes():
    stack = PfsStack(build_flat_testbed(n_clients=4))
    result = run_interference(stack, small_config())
    assert result.quiet_ms.n == 5
    assert result.stormy_ms.n == 5
    assert result.slowdown > 0


def test_gpfs_listing_suffers_under_storm():
    stack = PfsStack(build_flat_testbed(n_clients=4))
    result = run_interference(stack, small_config())
    assert result.slowdown > 3


def test_cofs_listing_is_shielded():
    stack = CofsStack(build_flat_testbed(n_clients=4, with_mds=True))
    result = run_interference(stack, small_config())
    assert result.slowdown < 2


def test_cofs_shielding_beats_gpfs():
    cfg = small_config()
    bare = run_interference(PfsStack(build_flat_testbed(n_clients=4)), cfg)
    cofs = run_interference(
        CofsStack(build_flat_testbed(n_clients=4, with_mds=True)), cfg
    )
    assert cofs.stormy_ms.mean < bare.stormy_ms.mean


def test_testbed_size_validated():
    stack = PfsStack(build_flat_testbed(n_clients=2))
    with pytest.raises(ValueError):
        run_interference(stack, small_config())  # needs 3 aggressors + 1
