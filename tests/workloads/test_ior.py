"""The IOR clone: bandwidth accounting, patterns, targets."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import PfsStack
from repro.units import MB
from repro.workloads import IorConfig, run_ior


def small_stack(n=2):
    return PfsStack(build_flat_testbed(n_clients=n))


def test_block_split():
    cfg = IorConfig(nodes=4, aggregate_bytes=64 * MB)
    assert cfg.block_bytes == 16 * MB


def test_separate_files_seq():
    stack = small_stack()
    cfg = IorConfig(nodes=2, aggregate_bytes=16 * MB, target="separate")
    result = run_ior(stack, cfg)
    assert result.write_mbps > 0
    assert result.read_mbps > 0
    # two files exist afterwards
    names = stack.testbed.sim.run_process(stack.mount(0).readdir("/ior"))
    assert names == ["data.0000", "data.0001"]


def test_shared_file_writes_whole_aggregate():
    stack = small_stack()
    cfg = IorConfig(nodes=2, aggregate_bytes=16 * MB, target="shared")
    run_ior(stack, cfg)
    attr = stack.testbed.sim.run_process(stack.mount(0).stat("/ior/data"))
    assert attr.size == 16 * MB


def test_random_pattern_covers_same_bytes():
    stack = small_stack()
    cfg = IorConfig(nodes=2, aggregate_bytes=8 * MB, pattern="random",
                    target="separate")
    run_ior(stack, cfg)
    attr = stack.testbed.sim.run_process(stack.mount(0).stat("/ior/data.0000"))
    assert attr.size == 4 * MB


def test_write_only():
    stack = small_stack()
    cfg = IorConfig(nodes=1, aggregate_bytes=4 * MB, do_read=False)
    result = run_ior(stack, cfg)
    assert result.write_mbps > 0
    assert result.read_mbps == 0.0


def test_cached_read_beats_uncached_write_bandwidth():
    """Read-after-write of a small separate file hits the page pool."""
    stack = small_stack()
    cfg = IorConfig(nodes=2, aggregate_bytes=32 * MB, target="separate")
    result = run_ior(stack, cfg)
    assert result.read_mbps > result.write_mbps * 2


def test_write_bandwidth_bounded_by_links():
    """A single client cannot beat its 1 Gb link for large writes."""
    stack = small_stack(1)
    cfg = IorConfig(nodes=1, aggregate_bytes=256 * MB, do_read=False)
    result = run_ior(stack, cfg)
    assert result.write_mbps < 126  # 1 Gb/s = 125 MB/s ceiling
    assert result.write_mbps > 80


def test_multi_node_aggregate_exceeds_single_link():
    stack = small_stack(2)
    cfg = IorConfig(nodes=2, aggregate_bytes=256 * MB, do_read=False)
    result = run_ior(stack, cfg)
    assert result.write_mbps > 130  # two clients drive both servers
