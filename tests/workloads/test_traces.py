"""The synthetic production mix."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack, PfsStack
from repro.workloads.traces import TraceConfig, run_trace


def small_config():
    return TraceConfig(
        duration_ms=1500.0, app_nodes=2, job_nodes=2,
        app_checkpoint_every_ms=400.0, job_every_ms=80.0,
        listing_every_ms=300.0,
    )


def test_trace_runs_all_activity_classes():
    stack = PfsStack(build_flat_testbed(n_clients=5))
    result = run_trace(stack, small_config())
    assert result.checkpoints_completed > 0
    assert result.jobs_completed > 0
    assert result.listing_ms.n > 0
    summary = result.summary()
    assert summary["job_ms"] > 0


def test_trace_is_deterministic():
    a = run_trace(PfsStack(build_flat_testbed(n_clients=5)), small_config())
    b = run_trace(PfsStack(build_flat_testbed(n_clients=5)), small_config())
    assert a.jobs_completed == b.jobs_completed
    assert a.job_ms.mean == b.job_ms.mean
    assert a.listing_ms.mean == b.listing_ms.mean


def test_trace_requires_enough_nodes():
    stack = PfsStack(build_flat_testbed(n_clients=3))
    with pytest.raises(ValueError):
        run_trace(stack, small_config())


def test_trace_interactive_user_prefers_cofs():
    cfg = small_config()
    bare = run_trace(PfsStack(build_flat_testbed(n_clients=5)), cfg)
    cofs = run_trace(
        CofsStack(build_flat_testbed(n_clients=5, with_mds=True)), cfg
    )
    assert cofs.listing_ms.mean < bare.listing_ms.mean
