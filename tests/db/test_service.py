"""The simulated DB service: cost charging and group commit."""

import pytest

from repro.cluster import Disk, Machine
from repro.db import Database, DbConfig, DbService
from repro.net import Network, Topology
from repro.sim import Simulator


def make_service(sync=True, **cfg_overrides):
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("m")
    machine = Machine(sim, Network(sim, topo), "m")
    disk = Disk(sim, "d", seek_ms=1.0, bandwidth=1000.0)
    db = Database("t")
    db.create_table("kv", key="k")
    config = DbConfig(sync_updates=sync, **cfg_overrides)
    return sim, machine, DbService(machine, db, disk, config)


def test_read_txn_costs_cpu_only():
    sim, machine, svc = make_service(
        base_cpu_ms=0.5, read_op_cpu_ms=0.25, log_force_ms=100.0
    )

    def main():
        t0 = sim.now
        yield from svc.execute(lambda txn: txn.read("kv", 1))
        return sim.now - t0

    elapsed = sim.run_process(main())
    assert elapsed == pytest.approx(0.75)  # base + one read; no force
    assert svc.read_txns == 1
    assert svc.update_txns == 0


def test_update_txn_pays_log_force():
    sim, machine, svc = make_service(
        base_cpu_ms=0.0, write_op_cpu_ms=0.0, log_force_ms=2.0,
        log_per_member_ms=0.0,
    )

    def main():
        t0 = sim.now
        yield from svc.execute(
            lambda txn: txn.write("kv", {"k": 1, "v": "x"})
        )
        return sim.now - t0

    elapsed = sim.run_process(main())
    assert elapsed >= 2.0
    assert svc.update_txns == 1


def test_async_mode_skips_force():
    sim, machine, svc = make_service(sync=False, log_force_ms=50.0)

    def main():
        t0 = sim.now
        yield from svc.execute(
            lambda txn: txn.write("kv", {"k": 1, "v": "x"})
        )
        return sim.now - t0

    assert sim.run_process(main()) < 5.0
    assert svc.log.forces == 0


def test_concurrent_updates_group_commit():
    sim, machine, svc = make_service(
        base_cpu_ms=0.0, write_op_cpu_ms=0.0, log_force_ms=2.0,
        log_per_member_ms=0.0, log_group_max=16,
    )
    finished = []

    def writer(k):
        yield from svc.execute(lambda txn: txn.write("kv", {"k": k}))
        finished.append(sim.now)

    procs = [sim.process(writer(k)) for k in range(8)]

    def waiter():
        yield sim.all_of(procs)

    sim.run_process(waiter())
    assert len(finished) == 8
    assert max(finished) <= 4.5  # one or two batched forces, not eight
    assert svc.log.forces <= 2


def test_failed_txn_charges_nothing_and_changes_nothing():
    sim, machine, svc = make_service()

    def bad(txn):
        txn.write("kv", {"k": 1})
        raise ValueError("abort")

    def main():
        t0 = sim.now
        try:
            yield from svc.execute(bad)
        except ValueError:
            pass
        return sim.now - t0

    elapsed = sim.run_process(main())
    assert elapsed == 0.0
    assert svc.db.table("kv").read(1) is None


def test_execute_returns_body_result():
    sim, machine, svc = make_service()

    def main():
        value = yield from svc.execute(lambda txn: "computed")
        return value

    assert sim.run_process(main()) == "computed"
