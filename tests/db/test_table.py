"""Unit tests for tables and indexes."""

import pytest

from repro.db import DbError, DuplicateKey, Table


def people():
    return Table("people", key="id", indexes=("city", "team"))


def test_insert_and_read():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    assert t.read(1) == {"id": 1, "city": "bcn", "team": "storage"}
    assert len(t) == 1
    assert 1 in t


def test_read_missing_returns_none():
    assert people().read(42) is None


def test_read_returns_copy():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    record = t.read(1)
    record["city"] = "mutated"
    assert t.read(1)["city"] == "bcn"


def test_insert_copies_input():
    t = people()
    record = {"id": 1, "city": "bcn"}
    t.insert(record)
    record["city"] = "mutated"
    assert t.read(1)["city"] == "bcn"


def test_duplicate_insert_rejected():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    with pytest.raises(DuplicateKey):
        t.insert({"id": 1, "city": "mad"})


def test_write_upserts_and_reindexes():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    t.write({"id": 1, "city": "mad"})
    assert t.read(1)["city"] == "mad"
    assert t.index_read("city", "bcn") == []
    assert [r["id"] for r in t.index_read("city", "mad")] == [1]


def test_delete_removes_row_and_index_entries():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    assert t.delete(1) is True
    assert t.read(1) is None
    assert t.index_read("city", "bcn") == []
    assert t.delete(1) is False


def test_missing_key_field_rejected():
    t = people()
    with pytest.raises(DbError):
        t.insert({"city": "bcn"})


def test_key_cannot_be_index():
    with pytest.raises(DbError):
        Table("t", key="id", indexes=("id",))


def test_index_read_unknown_field():
    t = people()
    with pytest.raises(DbError):
        t.index_read("shoe_size", 42)


def test_index_read_groups_by_value():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    t.insert({"id": 2, "city": "bcn", "team": "compute"})
    t.insert({"id": 3, "city": "mad", "team": "storage"})
    assert {r["id"] for r in t.index_read("city", "bcn")} == {1, 2}
    assert {r["id"] for r in t.index_read("team", "storage")} == {1, 3}


def test_match_multiple_fields():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    t.insert({"id": 2, "city": "bcn", "team": "compute"})
    assert [r["id"] for r in t.match(city="bcn", team="compute")] == [2]


def test_match_on_key_field():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    assert [r["id"] for r in t.match(id=1)] == [1]
    assert t.match(id=99) == []


def test_match_without_index_scans():
    t = Table("plain", key="id")
    t.insert({"id": 1, "color": "red"})
    t.insert({"id": 2, "color": "blue"})
    assert [r["id"] for r in t.match(color="blue")] == [2]


def test_match_empty_pattern_returns_all():
    t = people()
    t.insert({"id": 2, "city": "bcn"})
    t.insert({"id": 1, "city": "mad"})
    assert [r["id"] for r in t.match()] == [1, 2]


def test_keys_and_all():
    t = people()
    t.insert({"id": 2, "city": "bcn"})
    t.insert({"id": 1, "city": "mad"})
    assert t.keys() == [1, 2]
    assert [r["id"] for r in t.all()] == [1, 2]


def test_records_without_indexed_field_allowed():
    t = people()
    t.insert({"id": 1})
    assert t.read(1) == {"id": 1}
    assert t.index_read("city", None) == []
