"""Unit tests for tables and indexes."""

import pytest

from repro.db import DbError, DuplicateKey, Table


def people():
    return Table("people", key="id", indexes=("city", "team"))


def test_insert_and_read():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    assert t.read(1) == {"id": 1, "city": "bcn", "team": "storage"}
    assert len(t) == 1
    assert 1 in t


def test_read_missing_returns_none():
    assert people().read(42) is None


def test_read_returns_readonly_view():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    record = t.read(1)
    with pytest.raises(TypeError):
        record["city"] = "mutated"
    assert t.read(1)["city"] == "bcn"


def test_read_view_mutation_via_copy_does_not_alias():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    record = dict(t.read(1))  # copy-on-write: copy only to mutate
    record["city"] = "mutated"
    assert t.read(1)["city"] == "bcn"


def test_insert_copies_input():
    t = people()
    record = {"id": 1, "city": "bcn"}
    t.insert(record)
    record["city"] = "mutated"
    assert t.read(1)["city"] == "bcn"


def test_duplicate_insert_rejected():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    with pytest.raises(DuplicateKey):
        t.insert({"id": 1, "city": "mad"})


def test_write_upserts_and_reindexes():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    t.write({"id": 1, "city": "mad"})
    assert t.read(1)["city"] == "mad"
    assert t.index_read("city", "bcn") == []
    assert [r["id"] for r in t.index_read("city", "mad")] == [1]


def test_delete_removes_row_and_index_entries():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    assert t.delete(1) is True
    assert t.read(1) is None
    assert t.index_read("city", "bcn") == []
    assert t.delete(1) is False


def test_missing_key_field_rejected():
    t = people()
    with pytest.raises(DbError):
        t.insert({"city": "bcn"})


def test_key_cannot_be_index():
    with pytest.raises(DbError):
        Table("t", key="id", indexes=("id",))


def test_index_read_unknown_field():
    t = people()
    with pytest.raises(DbError):
        t.index_read("shoe_size", 42)


def test_index_read_groups_by_value():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    t.insert({"id": 2, "city": "bcn", "team": "compute"})
    t.insert({"id": 3, "city": "mad", "team": "storage"})
    assert {r["id"] for r in t.index_read("city", "bcn")} == {1, 2}
    assert {r["id"] for r in t.index_read("team", "storage")} == {1, 3}


def test_match_multiple_fields():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    t.insert({"id": 2, "city": "bcn", "team": "compute"})
    assert [r["id"] for r in t.match(city="bcn", team="compute")] == [2]


def test_match_on_key_field():
    t = people()
    t.insert({"id": 1, "city": "bcn"})
    assert [r["id"] for r in t.match(id=1)] == [1]
    assert t.match(id=99) == []


def test_match_without_index_scans():
    t = Table("plain", key="id")
    t.insert({"id": 1, "color": "red"})
    t.insert({"id": 2, "color": "blue"})
    assert [r["id"] for r in t.match(color="blue")] == [2]


def test_match_empty_pattern_returns_all_in_insertion_order():
    t = people()
    t.insert({"id": 2, "city": "bcn"})
    t.insert({"id": 1, "city": "mad"})
    assert [r["id"] for r in t.match()] == [2, 1]


def test_keys_and_all_follow_insertion_order():
    t = people()
    t.insert({"id": 2, "city": "bcn"})
    t.insert({"id": 1, "city": "mad"})
    assert t.keys() == [2, 1]
    assert [r["id"] for r in t.all()] == [2, 1]


def test_records_without_indexed_field_allowed():
    t = people()
    t.insert({"id": 1})
    assert t.read(1) == {"id": 1}
    assert t.index_read("city", None) == []


# ---------------------------------------------------------------------------
# copy-on-write semantics and index integrity (PR 1)
# ---------------------------------------------------------------------------


def _index_snapshot(table):
    """field -> value -> sorted key list, from the live indexes."""
    return {
        field: {value: sorted(bucket, key=repr)
                for value, bucket in index.items()}
        for field, index in table._indexes.items()
    }


def _rebuilt_snapshot(table):
    """The same snapshot, rebuilt from scratch from the stored rows."""
    fresh = Table(table.name, table.key, table.index_fields)
    for pk in table.keys():
        fresh.insert(dict(table.read(pk)))
    return _index_snapshot(fresh)


def test_indexes_match_rebuild_after_churn():
    t = people()
    for i in range(40):
        t.insert({"id": i, "city": f"c{i % 5}", "team": f"t{i % 3}"})
    for i in range(0, 40, 3):
        t.write({"id": i, "city": f"c{(i + 1) % 5}", "team": f"t{i % 7}"})
    for i in range(0, 40, 4):
        t.delete(i)
    for i in range(100, 110):
        t.write({"id": i, "city": "c0"})
    assert _index_snapshot(t) == _rebuilt_snapshot(t)


def test_write_removes_stale_index_entries_for_dropped_fields():
    t = people()
    t.insert({"id": 1, "city": "bcn", "team": "storage"})
    t.write({"id": 1, "team": "storage"})  # city field dropped entirely
    assert t.index_read("city", "bcn") == []
    assert _index_snapshot(t) == _rebuilt_snapshot(t)
