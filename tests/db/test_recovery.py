"""Crash recovery: the journal contract and service-level replay."""

import pytest

from repro.cluster import Disk, Machine
from repro.db import Database, DbConfig, DbService
from repro.db.recovery import RedoJournal, rebuild
from repro.net import Network, Topology
from repro.sim import Simulator


def service(sync=True):
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("m")
    machine = Machine(sim, Network(sim, topo), "m")
    disk = Disk(sim, "d", seek_ms=1.0, bandwidth=1000.0)
    db = Database("t")
    db.create_table("kv", key="k")
    svc = DbService(machine, db, disk, DbConfig(sync_updates=sync))
    return sim, svc


def put(svc, k, v):
    return svc.execute(lambda txn: txn.write("kv", {"k": k, "v": v}))


def test_journal_records_committed_writes():
    db = Database()
    db.create_table("kv", key="k")
    db.journal = RedoJournal()
    db.transaction(lambda txn: txn.write("kv", {"k": 1, "v": "a"}))
    assert len(db.journal) == 1
    assert db.journal.lost_on_crash == 1
    db.journal.mark_durable()
    assert db.journal.lost_on_crash == 0


def test_journal_skips_aborted_and_readonly_txns():
    db = Database()
    db.create_table("kv", key="k")
    db.journal = RedoJournal()
    db.transaction(lambda txn: txn.read("kv", 1))
    with pytest.raises(ValueError):
        db.transaction(lambda txn: (_ for _ in ()).throw(ValueError()))
    assert len(db.journal) == 0


def test_rebuild_replays_durable_prefix():
    db = Database()
    db.create_table("kv", key="k")
    journal = RedoJournal()
    db.journal = journal
    db.transaction(lambda txn: txn.write("kv", {"k": 1, "v": "durable"}))
    journal.mark_durable()
    db.transaction(lambda txn: txn.write("kv", {"k": 2, "v": "lost"}))
    fresh = rebuild(db, journal)
    assert fresh.table("kv").read(1) == {"k": 1, "v": "durable"}
    assert fresh.table("kv").read(2) is None


def test_rebuild_replays_deletes():
    db = Database()
    db.create_table("kv", key="k")
    journal = RedoJournal()
    db.journal = journal
    db.transaction(lambda txn: txn.write("kv", {"k": 1, "v": "a"}))
    db.transaction(lambda txn: txn.delete("kv", 1))
    journal.mark_durable()
    fresh = rebuild(db, journal)
    assert fresh.table("kv").read(1) is None


def test_rebuild_preserves_indexes():
    db = Database()
    db.create_table("kv", key="k", indexes=("color",))
    journal = RedoJournal()
    db.journal = journal
    db.transaction(lambda txn: txn.write("kv", {"k": 1, "color": "red"}))
    journal.mark_durable()
    fresh = rebuild(db, journal)
    assert [r["k"] for r in fresh.table("kv").index_read("color", "red")] == [1]


def test_sync_service_loses_nothing_on_crash():
    sim, svc = service(sync=True)

    def main():
        yield from put(svc, 1, "a")
        yield from put(svc, 2, "b")
        lost = yield from svc.crash_and_recover()
        return (lost, svc.db.table("kv").read(1), svc.db.table("kv").read(2))

    lost, r1, r2 = sim.run_process(main())
    assert lost == 0
    assert r1["v"] == "a"
    assert r2["v"] == "b"


def test_async_service_loses_unforced_tail():
    sim, svc = service(sync=False)

    def main():
        yield from put(svc, 1, "a")
        yield from svc.checkpoint()
        yield from put(svc, 2, "b")   # never forced
        lost = yield from svc.crash_and_recover()
        return (lost, svc.db.table("kv").read(1), svc.db.table("kv").read(2))

    lost, r1, r2 = sim.run_process(main())
    assert lost == 1
    assert r1["v"] == "a"
    assert r2 is None


def test_service_usable_after_recovery():
    sim, svc = service(sync=True)

    def main():
        yield from put(svc, 1, "a")
        yield from svc.crash_and_recover()
        yield from put(svc, 2, "after")
        lost = yield from svc.crash_and_recover()
        return (lost, svc.db.table("kv").read(2))

    lost, r2 = sim.run_process(main())
    assert lost == 0
    assert r2["v"] == "after"


def test_recovery_takes_time():
    sim, svc = service(sync=True)

    def main():
        for i in range(10):
            yield from put(svc, i, i)
        t0 = sim.now
        yield from svc.crash_and_recover()
        return sim.now - t0

    elapsed = sim.run_process(main())
    assert elapsed >= svc.config.recovery_base_ms
