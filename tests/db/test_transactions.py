"""Unit tests for transaction semantics."""

import pytest

from repro.db import AbortError, Database, DuplicateKey, NoSuchTable


def fresh_db():
    db = Database("meta")
    db.create_table("files", key="ino", indexes=("parent",))
    return db


def test_create_duplicate_table_rejected():
    db = fresh_db()
    with pytest.raises(Exception):
        db.create_table("files", key="ino")


def test_unknown_table():
    db = fresh_db()
    with pytest.raises(NoSuchTable):
        db.table("ghosts")
    with pytest.raises(NoSuchTable):
        db.transaction(lambda txn: txn.read("ghosts", 1))


def test_commit_applies_writes():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 0}))
    assert db.table("files").read(1) == {"ino": 1, "parent": 0}
    assert db.commits == 1


def test_transaction_returns_body_result():
    db = fresh_db()
    assert db.transaction(lambda txn: "result") == "result"


def test_abort_discards_staged_writes():
    db = fresh_db()

    def body(txn):
        txn.insert("files", {"ino": 1, "parent": 0})
        txn.abort("change of heart")

    with pytest.raises(AbortError):
        db.transaction(body)
    assert db.table("files").read(1) is None
    assert db.aborts == 1
    assert db.commits == 0


def test_exception_discards_staged_writes():
    db = fresh_db()

    def body(txn):
        txn.insert("files", {"ino": 1, "parent": 0})
        raise ValueError("boom")

    with pytest.raises(ValueError):
        db.transaction(body)
    assert db.table("files").read(1) is None


def test_read_your_writes():
    db = fresh_db()

    def body(txn):
        txn.insert("files", {"ino": 1, "parent": 0, "name": "a"})
        return txn.read("files", 1)

    assert db.transaction(body)["name"] == "a"


def test_read_your_deletes():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 0}))

    def body(txn):
        txn.delete("files", 1)
        return txn.read("files", 1)

    assert db.transaction(body) is None
    assert db.table("files").read(1) is None


def test_write_then_delete_in_one_txn():
    db = fresh_db()

    def body(txn):
        txn.write("files", {"ino": 1, "parent": 0})
        txn.delete("files", 1)

    db.transaction(body)
    assert db.table("files").read(1) is None


def test_delete_then_insert_same_key():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 0}))

    def body(txn):
        txn.delete("files", 1)
        txn.insert("files", {"ino": 1, "parent": 9})

    db.transaction(body)
    assert db.table("files").read(1)["parent"] == 9


def test_staged_insert_duplicate_detected():
    db = fresh_db()

    def body(txn):
        txn.insert("files", {"ino": 1, "parent": 0})
        txn.insert("files", {"ino": 1, "parent": 1})

    with pytest.raises(DuplicateKey):
        db.transaction(body)
    assert db.table("files").read(1) is None


def test_insert_duplicate_of_committed_detected():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 0}))
    with pytest.raises(DuplicateKey):
        db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 2}))


def test_match_sees_staged_overlay():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "parent": 7}))
    db.transaction(lambda txn: txn.insert("files", {"ino": 2, "parent": 7}))

    def body(txn):
        txn.delete("files", 1)
        txn.insert("files", {"ino": 3, "parent": 7})
        txn.write("files", {"ino": 2, "parent": 8})  # moved away
        return [r["ino"] for r in txn.match("files", parent=7)]

    assert db.transaction(body) == [3]


def test_index_read_requires_index():
    db = fresh_db()
    from repro.db import DbError

    def body(txn):
        return txn.index_read("files", "owner", 42)

    with pytest.raises(DbError):
        db.transaction(body)


def test_index_read_on_key_field():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 5, "parent": 0}))
    got = db.transaction(lambda txn: txn.index_read("files", "ino", 5))
    assert [r["ino"] for r in got] == [5]


def test_is_update_flag():
    db = fresh_db()

    def read_body(txn):
        txn.read("files", 1)
        return txn.is_update

    def write_body(txn):
        txn.write("files", {"ino": 1, "parent": 0})
        return txn.is_update

    assert db.transaction(read_body) is False
    assert db.transaction(write_body) is True


def test_query_counters():
    db = fresh_db()

    def body(txn):
        txn.read("files", 1)
        txn.read("files", 2)
        txn.write("files", {"ino": 1, "parent": 0})
        return (txn.reads, txn.writes)

    assert db.transaction(body) == (2, 1)


# ---------------------------------------------------------------------------
# copy-on-write semantics through transactions (PR 1)
# ---------------------------------------------------------------------------


def test_txn_read_returns_readonly_view():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "owner": 7}))

    def body(txn):
        row = txn.read("files", 1)
        with pytest.raises(TypeError):
            row["owner"] = 99
        return row

    db.transaction(body)
    assert db.table("files").read(1)["owner"] == 7


def test_txn_read_for_update_does_not_alias_stored_state():
    db = fresh_db()
    db.transaction(lambda txn: txn.insert("files", {"ino": 1, "owner": 7}))

    def mutate_without_write(txn):
        row = txn.read_for_update("files", 1)
        row["owner"] = 99  # never written back

    db.transaction(mutate_without_write)
    assert db.table("files").read(1)["owner"] == 7

    def mutate_and_write(txn):
        row = txn.read_for_update("files", 1)
        row["owner"] = 42
        txn.write("files", row)

    db.transaction(mutate_and_write)
    assert db.table("files").read(1)["owner"] == 42


def test_txn_read_your_writes_is_view_of_staged():
    db = fresh_db()
    def body(txn):
        txn.insert("files", {"ino": 5, "owner": 1})
        row = txn.read("files", 5)
        assert row["owner"] == 1
        with pytest.raises(TypeError):
            row["owner"] = 2

    db.transaction(body)
