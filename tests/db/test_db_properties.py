"""Property-based tests: the table store against a model dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, DuplicateKey, Table

KEYS = st.integers(min_value=0, max_value=20)
CITIES = st.sampled_from(["bcn", "mad", "par", "ber"])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), KEYS, CITIES),
        st.tuples(st.just("delete"), KEYS, st.none()),
    ),
    max_size=60,
)


@given(OPS)
def test_table_matches_model_dict(ops):
    table = Table("t", key="id", indexes=("city",))
    model = {}
    for op, key, city in ops:
        if op == "write":
            table.write({"id": key, "city": city})
            model[key] = city
        else:
            table.delete(key)
            model.pop(key, None)
    assert len(table) == len(model)
    for key, city in model.items():
        assert table.read(key) == {"id": key, "city": city}
    for city in ["bcn", "mad", "par", "ber"]:
        expected = {k for k, v in model.items() if v == city}
        assert {r["id"] for r in table.index_read("city", city)} == expected


@given(OPS)
def test_index_is_consistent_with_rows(ops):
    table = Table("t", key="id", indexes=("city",))
    for op, key, city in ops:
        if op == "write":
            table.write({"id": key, "city": city})
        else:
            table.delete(key)
        # Invariant after every step: index entries <-> rows, exactly.
        indexed = {
            pk
            for bucket in table._indexes["city"].values()
            for pk in bucket
        }
        assert indexed == set(table._rows)
        for value, bucket in table._indexes["city"].items():
            assert bucket, "empty index buckets must be pruned"
            for pk in bucket:
                assert table._rows[pk]["city"] == value


TXN_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), KEYS, CITIES),
        st.tuples(st.just("delete"), KEYS, st.none()),
        st.tuples(st.just("insert"), KEYS, CITIES),
    ),
    max_size=12,
)


@settings(max_examples=60)
@given(st.lists(st.tuples(TXN_OPS, st.booleans()), max_size=8))
def test_transactions_apply_all_or_nothing(txn_specs):
    db = Database()
    db.create_table("t", key="id", indexes=("city",))
    model = {}
    for ops, poison in txn_specs:
        shadow = dict(model)

        def body(txn, ops=ops, poison=poison, shadow=shadow):
            for op, key, city in ops:
                if op == "write":
                    txn.write("t", {"id": key, "city": city})
                    shadow[key] = city
                elif op == "insert":
                    txn.insert("t", {"id": key, "city": city})
                    shadow[key] = city
                else:
                    txn.delete("t", key)
                    shadow.pop(key, None)
            if poison:
                txn.abort("poisoned")

        try:
            db.transaction(body)
        except Exception:
            pass  # aborted: model unchanged
        else:
            model = shadow
        assert {k: r["city"] for k, r in
                ((k, db.table("t").read(k)) for k in model)} == model
        assert len(db.table("t")) == len(model)


@given(OPS, KEYS)
def test_match_equals_filter(ops, probe):
    table = Table("t", key="id", indexes=("city",))
    model = {}
    for op, key, city in ops:
        if op == "write":
            table.write({"id": key, "city": city})
            model[key] = city
        else:
            table.delete(key)
            model.pop(key, None)
    got = {r["id"] for r in table.match(city="bcn")}
    assert got == {k for k, v in model.items() if v == "bcn"}
    got_by_key = table.match(id=probe)
    if probe in model:
        assert got_by_key == [{"id": probe, "city": model[probe]}]
    else:
        assert got_by_key == []
