"""Unit tests for machines, disks and the group-commit log."""

import pytest

from repro.cluster import Disk, GroupCommitLog, Machine
from repro.net import Network, Topology
from repro.sim import Simulator


def one_machine():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("m")
    net = Network(sim, topo)
    return sim, Machine(sim, net, "m", cpus=2)


def test_compute_occupies_cpu_slot():
    sim, machine = one_machine()

    def proc(sim):
        yield from machine.compute(3.0)
        return sim.now

    assert sim.run_process(proc(sim)) == 3.0


def test_compute_zero_is_free():
    sim, machine = one_machine()

    def proc(sim):
        yield from machine.compute(0.0)
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_compute_queues_beyond_core_count():
    sim, machine = one_machine()  # 2 cpus
    finish = []

    def proc(sim, tag):
        yield from machine.compute(10.0)
        finish.append((tag, sim.now))

    for tag in range(4):
        sim.process(proc(sim, tag))
    sim.run()
    assert finish == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


def test_duplicate_disk_rejected():
    sim, machine = one_machine()
    disk = Disk(sim, "d", seek_ms=1.0, bandwidth=100.0)
    machine.add_disk("d", disk)
    with pytest.raises(ValueError):
        machine.add_disk("d", disk)


def test_disk_service_time_random_vs_sequential():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=4.0, bandwidth=100.0)
    assert disk.service_time(200) == pytest.approx(6.0)
    assert disk.service_time(200, sequential=True) == pytest.approx(2.0)


def test_disk_io_fifo_queueing():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=1.0, bandwidth=1000.0)
    finish = []

    def proc(sim, tag):
        yield from disk.read(1000)  # 1 + 1 = 2 ms device time
        finish.append((tag, sim.now))

    for tag in range(3):
        sim.process(proc(sim, tag))
    sim.run()
    assert finish == [(0, 2.0), (1, 4.0), (2, 6.0)]
    assert disk.reads == 3
    assert disk.bytes_read == 3000


def test_disk_counters_for_writes():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)

    def proc(sim):
        yield from disk.write(500, sequential=True)

    sim.run_process(proc(sim))
    assert disk.writes == 1
    assert disk.bytes_written == 500


def test_log_force_single_committer():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0)

    def proc(sim):
        yield from log.force()
        return sim.now

    assert sim.run_process(proc(sim)) == 2.0
    assert log.forces == 1
    assert log.commits == 1


def test_log_simultaneous_forces_share_one_batch():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0, group_max=8)
    finish = []

    def proc(sim, tag):
        yield from log.force()
        finish.append((tag, sim.now))

    for tag in range(5):
        sim.process(proc(sim, tag))
    sim.run()
    assert finish == [(tag, 2.0) for tag in range(5)]
    assert log.forces == 1
    assert log.commits == 5


def test_log_mid_force_arrivals_join_next_batch():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0, group_max=8)
    finish = []

    def early(sim):
        yield from log.force()
        finish.append(("early", sim.now))

    def late(sim, tag):
        yield sim.timeout(0.5)  # arrives while the first force runs
        yield from log.force()
        finish.append((tag, sim.now))

    sim.process(early(sim))
    for tag in range(3):
        sim.process(late(sim, tag))
    sim.run()
    assert finish == [("early", 2.0), (0, 4.0), (1, 4.0), (2, 4.0)]
    assert log.forces == 2
    assert log.commits == 4


def test_log_group_max_limits_batch():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0, group_max=2)
    finish = []

    def proc(sim, tag):
        yield from log.force()
        finish.append(sim.now)

    for tag in range(5):
        sim.process(proc(sim, tag))
    sim.run()
    assert finish == [2.0, 2.0, 4.0, 4.0, 6.0]
    assert log.forces == 3


def test_log_per_member_cost():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0, per_member_ms=0.5, group_max=8)
    finish = []

    def proc(sim, _tag):
        yield from log.force()
        finish.append(sim.now)

    for tag in range(2):
        sim.process(proc(sim, tag))
    sim.run()
    # Both arrive at t=0: the first force batches both: 2.0 + 0.5 * 2 = 3.0.
    assert finish == [3.0, 3.0]


def test_log_contends_with_data_io_on_same_disk():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    log = GroupCommitLog(sim, disk, force_ms=2.0)
    finish = {}

    def reader(sim):
        yield from disk.read(4000)  # 4 ms
        finish["read"] = sim.now

    def committer(sim):
        yield from log.force()
        finish["force"] = sim.now

    sim.process(reader(sim))
    sim.process(committer(sim))
    sim.run()
    assert finish == {"read": 4.0, "force": 6.0}


def test_invalid_group_max():
    sim = Simulator()
    disk = Disk(sim, "d", seek_ms=0.0, bandwidth=1000.0)
    with pytest.raises(ValueError):
        GroupCommitLog(sim, disk, force_ms=1.0, group_max=0)
