"""Unit-conversion helpers."""

import pytest

from repro.units import (
    GB, KB, MB, gbps, mb_per_s, mbps, seconds, to_mb_per_s,
)


def test_byte_multiples():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_gbps_is_bytes_per_ms():
    # 1 Gbps = 10^9 bits/s = 125 * 10^6 bytes/s = 125000 bytes/ms
    assert gbps(1.0) == pytest.approx(125000.0)


def test_mbps():
    assert mbps(8.0) == pytest.approx(1000.0)


def test_mb_per_s_round_trip():
    bw = mb_per_s(100.0)
    assert to_mb_per_s(bw) == pytest.approx(100.0)


def test_seconds():
    assert seconds(1500.0) == pytest.approx(1.5)


def test_transfer_time_sanity():
    # 1 MB over 1 GbE: ~8.4 ms
    assert MB / gbps(1.0) == pytest.approx(8.39, abs=0.01)
