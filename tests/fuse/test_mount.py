"""FUSE layer: pass-through semantics plus crossing/copy cost accounting."""

import pytest

from repro.fuse import FuseConfig, FuseMount
from repro.pfs import FsError, OpenFlags
from tests.pfs.conftest import MountedPfs


def mounted(crossing_ms=0.018, max_transfer=128 * 1024):
    fsx = MountedPfs(1)
    backend = fsx.clients[0]
    fuse = FuseMount(
        fsx.testbed.clients[0], backend,
        FuseConfig(crossing_ms=crossing_ms, max_transfer=max_transfer),
    )
    return fsx, fuse


def test_metadata_ops_pass_through():
    fsx, fuse = mounted()

    def main():
        yield from fuse.mkdir("/d")
        fh = yield from fuse.create("/d/f")
        yield from fuse.close(fh)
        names = yield from fuse.readdir("/d")
        attr = yield from fuse.stat("/d/f")
        return (names, attr.is_file)

    names, is_file = fsx.run(main())
    assert names == ["f"]
    assert is_file


def test_errors_pass_through():
    fsx, fuse = mounted()

    def main():
        yield from fuse.stat("/missing")

    with pytest.raises(FsError) as err:
        fsx.run(main())
    assert err.value.code == "ENOENT"


def test_each_request_counts():
    fsx, fuse = mounted()

    def main():
        yield from fuse.mkdir("/d")
        yield from fuse.stat("/d")
        yield from fuse.readdir("/d")

    fsx.run(main())
    assert fuse.requests == 3


def test_crossing_cost_charged():
    fsx, fuse = mounted(crossing_ms=0.5)

    def main():
        t0 = fsx.sim.now
        yield from fuse.stat("/")
        return fsx.sim.now - t0

    elapsed = fsx.run(main())
    assert elapsed >= 1.0  # two crossings of 0.5 ms


def test_large_write_is_chunked_into_mtu_requests():
    fsx, fuse = mounted(max_transfer=64 * 1024)

    def main():
        fh = yield from fuse.create("/f")
        before = fuse.requests
        yield from fuse.write(fh, 0, size=256 * 1024)
        chunked = fuse.requests - before
        yield from fuse.close(fh)
        return chunked

    assert fsx.run(main()) == 4  # 256 KB over 64 KB MTU


def test_large_read_is_chunked():
    fsx, fuse = mounted(max_transfer=64 * 1024)

    def main():
        fh = yield from fuse.create("/f")
        yield from fuse.write(fh, 0, size=256 * 1024)
        yield from fuse.close(fh)
        fh = yield from fuse.open("/f")
        before = fuse.requests
        count = yield from fuse.read(fh, 0, 256 * 1024)
        chunked = fuse.requests - before
        yield from fuse.close(fh)
        return (count, chunked)

    count, chunked = fsx.run(main())
    assert count == 256 * 1024
    assert chunked == 4


def test_read_with_data_reassembles_chunks():
    fsx, fuse = mounted(max_transfer=4)

    def main():
        fh = yield from fuse.create("/f")
        yield from fuse.write(fh, 0, data=b"0123456789")
        yield from fuse.close(fh)
        fh = yield from fuse.open("/f")
        data = yield from fuse.read(fh, 0, 10, want_data=True)
        yield from fuse.close(fh)
        return data

    assert fsx.run(main()) == b"0123456789"


def test_write_requires_one_source():
    fsx, fuse = mounted()

    def main():
        fh = yield from fuse.create("/f")
        yield from fuse.write(fh, 0)

    with pytest.raises(ValueError):
        fsx.run(main())


def test_fuse_slows_cached_reads_measurably():
    """The Table-I effect: FUSE overhead on node-local cached data."""
    fsx, fuse = mounted()
    backend = fsx.clients[0]
    size = 8 * 1024 * 1024

    def timed(fs, path):
        fh = yield from fs.create(path)
        yield from fs.write(fh, 0, size=size)
        yield from fs.close(fh)
        fh = yield from fs.open(path)
        t0 = fsx.sim.now
        yield from fs.read(fh, 0, size)
        elapsed = fsx.sim.now - t0
        yield from fs.close(fh)
        return elapsed

    def main():
        bare = yield from timed(backend, "/bare.dat")
        fused = yield from timed(fuse, "/fused.dat")
        return (bare, fused)

    bare, fused = fsx.run(main())
    assert fused > bare * 1.5  # double copy + per-chunk crossings
