"""Placement-policy properties: determinism, spreading, the 512-entry cap."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CofsConfig
from repro.core.placement import HashPlacementPolicy, IdentityPlacementPolicy


def fixed_rng(value=0):
    rng = random.Random(1234)
    return rng


def test_hash_bucket_is_deterministic_in_inputs():
    cfg = CofsConfig()
    policy = HashPlacementPolicy(cfg, randomize=False)
    a = policy.bucket_for("node0", 7, 0, fixed_rng())
    b = policy.bucket_for("node0", 7, 0, fixed_rng())
    assert a == b


def test_different_nodes_usually_get_different_buckets():
    cfg = CofsConfig()
    policy = HashPlacementPolicy(cfg, randomize=False)
    buckets = {
        policy.bucket_for(f"node{i}", 7, 0, fixed_rng()) for i in range(32)
    }
    assert len(buckets) >= 30  # hash collisions are possible but rare


def test_different_parents_get_different_buckets():
    cfg = CofsConfig()
    policy = HashPlacementPolicy(cfg, randomize=False)
    buckets = {
        policy.bucket_for("node0", parent, 0, fixed_rng())
        for parent in range(32)
    }
    assert len(buckets) >= 30


def test_different_pids_get_different_buckets():
    cfg = CofsConfig()
    policy = HashPlacementPolicy(cfg, randomize=False)
    buckets = {
        policy.bucket_for("node0", 7, pid, fixed_rng()) for pid in range(16)
    }
    assert len(buckets) >= 14


def test_randomization_adds_a_sublevel():
    cfg = CofsConfig(rand_subdirs=16)
    policy = HashPlacementPolicy(cfg, randomize=True)
    rng = random.Random(0)
    buckets = {policy.bucket_for("node0", 7, 0, rng) for _ in range(200)}
    bases = {b.rsplit("/r", 1)[0] for b in buckets}
    assert len(bases) == 1          # same hash bucket
    assert len(buckets) > 4         # spread over randomization sublevels
    assert all("/r" in b for b in buckets)


def test_overflow_candidates_walk_sublevels():
    cfg = CofsConfig(rand_subdirs=4)
    policy = HashPlacementPolicy(cfg, randomize=True)
    candidates = policy.overflow_candidates("/.cofs/h0001/r02")
    assert candidates[0] == "/.cofs/h0001/r03"
    assert candidates[1] == "/.cofs/h0001/r00"
    assert candidates[2] == "/.cofs/h0001/r01"
    # further candidates open overflow generations
    assert any(".o1" in c for c in candidates[3:])


def test_identity_policy_mirrors_parent():
    cfg = CofsConfig()
    policy = IdentityPlacementPolicy(cfg)
    bucket = policy.bucket_for("node3", 42, 9, fixed_rng())
    assert bucket.endswith("/d42")
    assert policy.overflow_candidates(bucket) == []


@settings(max_examples=50)
@given(
    st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
    st.integers(min_value=1, max_value=1 << 30),
    st.integers(min_value=0, max_value=1 << 16),
)
def test_bucket_always_under_root(node, parent, pid):
    cfg = CofsConfig()
    policy = HashPlacementPolicy(cfg, randomize=True)
    bucket = policy.bucket_for(node, parent, pid, random.Random(0))
    assert bucket.startswith(cfg.underlying_root + "/")
    assert " " not in bucket
