"""COFS edge cases: concurrency, handles, deep trees, policies."""

import pytest

from repro.core.config import CofsConfig
from repro.core.placement import RandomSpreadPolicy
from repro.pfs import FsError, OpenFlags
from tests.core.conftest import MountedCofs


def test_concurrent_creates_same_virtual_dir(cofsx, cfs, cfs2):
    def creator(fs, prefix):
        for i in range(10):
            fh = yield from fs.create(f"/shared/{prefix}.{i}")
            yield from fs.close(fh)

    def main():
        yield from cfs.mkdir("/shared")
        p1 = cofsx.sim.process(creator(cfs, "a"))
        p2 = cofsx.sim.process(creator(cfs2, "b"))
        yield cofsx.sim.all_of([p1, p2])
        return (yield from cfs.readdir("/shared"))

    names = cofsx.run(main())
    assert len(names) == 20


def test_concurrent_bucket_mkdir_race_is_harmless():
    # Two nodes whose placement hashes collide race to create the same
    # underlying bucket directories; EEXIST must be swallowed.
    host = MountedCofs(n_clients=2)
    a, b = host.mounts
    # Same pid + same parent: different nodes, so different buckets is the
    # common case — force the race on the shared root components instead.
    def main():
        p1 = host.sim.process(a.create("/x"))
        p2 = host.sim.process(b.create("/y"))
        got = yield host.sim.all_of([p1, p2])
        for fs, fh in zip((a, b), got):
            yield from fs.close(fh)
        return True

    assert host.run(main()) is True


def test_deep_virtual_tree(cofsx, cfs):
    def main():
        path = ""
        for depth in range(8):
            path += f"/d{depth}"
            yield from cfs.mkdir(path)
        fh = yield from cfs.create(path + "/leaf")
        yield from cfs.close(fh)
        return (yield from cfs.stat(path + "/leaf")).is_file

    assert cofsx.run(main()) is True


def test_handles_are_independent(cofsx, cfs):
    def main():
        fh1 = yield from cfs.create("/a")
        fh2 = yield from cfs.create("/b")
        yield from cfs.write(fh1, 0, data=b"one")
        yield from cfs.write(fh2, 0, data=b"two")
        yield from cfs.close(fh1)
        yield from cfs.close(fh2)
        out = []
        for path in ("/a", "/b"):
            fh = yield from cfs.open(path)
            out.append((yield from cfs.read(fh, 0, 3, want_data=True)))
            yield from cfs.close(fh)
        return out

    assert cofsx.run(main()) == [b"one", b"two"]


def test_double_close_is_ebadf(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.close(fh)
        yield from cfs.close(fh)

    with pytest.raises(FsError) as err:
        cofsx.run(main())
    assert err.value.code == "EBADF"


def test_read_on_directory_handle_fails(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/d")
        fh = yield from cfs.open("/d", OpenFlags.RDONLY)
        yield from cfs.read(fh, 0, 10)

    with pytest.raises(FsError) as err:
        cofsx.run(main())
    assert err.value.code == "EISDIR"


def test_open_excl_on_fresh_create_succeeds(cofsx, cfs):
    def main():
        fh = yield from cfs.open(
            "/fresh", OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.EXCL
        )
        yield from cfs.close(fh)
        return (yield from cfs.stat("/fresh")).is_file

    assert cofsx.run(main()) is True


def test_unlink_while_open_defers_nothing_visible(cofsx, cfs):
    # POSIX full semantics (I/O on unlinked-but-open files) are relaxed in
    # parallel filesystems; COFS guarantees the *namespace* disappears.
    def main():
        fh = yield from cfs.create("/doomed")
        yield from cfs.write(fh, 0, data=b"bye")
        yield from cfs.unlink("/doomed")
        names = yield from cfs.readdir("/")
        yield from cfs.close(fh)
        return names

    assert "doomed" not in cofsx.run(main())


def test_random_spread_policy_respects_cap():
    host = MountedCofs(
        n_clients=2,
        cofs_config=CofsConfig(max_entries_per_dir=4),
        policy=RandomSpreadPolicy(CofsConfig(max_entries_per_dir=4)),
    )
    cfs = host.mounts[0]

    def main():
        for i in range(20):
            fh = yield from cfs.create(f"/f{i}")
            yield from cfs.close(fh)

    host.run(main())
    counts = host.mds.bucket_counts()
    assert sum(counts.values()) == 20
    assert all(c <= 4 for c in counts.values())


def test_fuse_wrapped_symlink_ops(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/target")
        yield from cfs.close(fh)
        yield from cfs.symlink("/target", "/ln")
        target = yield from cfs.readlink("/ln")
        yield from cfs.unlink("/ln")
        still = yield from cfs.stat("/target")
        return (target, still.is_file)

    assert cofsx.run(main()) == ("/target", True)


def test_rename_onto_itself_is_noop(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/same")
        yield from cfs.close(fh)
        yield from cfs.link("/same", "/alias")
        yield from cfs.rename("/same", "/alias")  # same inode: no-op
        return sorted((yield from cfs.readdir("/")))

    assert cofsx.run(main()) == ["alias", "same"]


def test_mknod_is_metadata_only_and_truncate_open_safe(cofsx, cfs):
    """A mknod'd file lives purely in the virtual namespace: stat and
    O_TRUNC opens work (nothing underneath to truncate), unlink leaves
    no underlying residue, and renaming a directory beneath itself is
    EINVAL rather than a namespace cycle."""
    def body():
        attr = yield from cfs.mknod("/marker")
        assert attr.size == 0
        st = yield from cfs.stat("/marker")
        assert st.kind == "file" and st.nlink == 1
        # O_TRUNC on a file with no underlying object must not touch the
        # underlying FS (there is no upath) — just reset the virtual size.
        fh = yield from cfs.open(
            "/marker", OpenFlags.WRONLY | OpenFlags.TRUNC)
        # ... but actual data I/O has nothing underneath: EINVAL, not a
        # directory errno and not a crash.
        try:
            yield from cfs.write(fh, 0, data=b"x")
            raise AssertionError("write to a metadata-only file succeeded")
        except FsError as exc:
            assert exc.code == "EINVAL"
        yield from cfs.close(fh)
        yield from cfs.unlink("/marker")
        return (yield from cfs.readdir("/"))

    assert cofsx.run(body()) == []

    def cycle():
        yield from cfs.mkdir("/d")
        try:
            yield from cfs.rename("/d", "/d/sub")
        except FsError as exc:
            return exc.code
        return None

    assert cofsx.run(cycle()) == "EINVAL"
