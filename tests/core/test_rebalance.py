"""Online load-aware re-partitioning: overrides, migration, the planner."""

import pytest

from repro.core.shard import HashDirSharding, Rebalancer, SubtreeSharding
from repro.core.shard.recovery import recover_tier
from repro.pfs.errors import FsError
from tests.core.conftest import ShardedCofs


@pytest.fixture
def split2():
    """Two shards, /a and /b statically assigned, files in both."""
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        for name in ("f", "g", "h"):
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    return host


def _observe(host):
    """Structural listing through the client mount."""
    fs = host.mounts[0]

    def body():
        state = {}
        for d in (yield from fs.readdir("/")):
            names = yield from fs.readdir(f"/{d}")
            state[d] = names
            for name in names:
                attr = yield from fs.stat(f"/{d}/{name}")
                state[f"{d}/{name}"] = (attr.kind, attr.nlink)
        return state

    return host.run(body())


def test_rebalance_moves_population_and_is_transparent(split2):
    host = split2
    before = _observe(host)
    file_vinos_src = host.file_vinos(0)
    assert len(file_vinos_src) == 3

    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))

    # The rows physically moved to shard 1 ...
    assert host.file_vinos(0) == set()
    assert host.file_vinos(1) >= file_vinos_src
    # ... the override is durable everywhere and routing follows it ...
    for shard in host.shards:
        rows = {r["path"]: r["shard"]
                for r in shard.db.table("overrides").all()}
        assert rows == {"/a": 1}
    assert host.stack.sharding.shard_of_dir("/a", 2) == 1
    # ... and nothing observable changed.
    assert _observe(host) == before


def test_rebalance_routes_new_creates_to_the_new_owner(split2):
    host = split2
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))

    def create_more():
        fs = host.mounts[0]
        fh = yield from fs.create("/a/new")
        yield from fs.close(fh)
        return (yield from fs.readdir("/a"))

    names = host.run(create_more())
    assert names == ["f", "g", "h", "new"]
    # The new file's row lives on the override target, not the static owner.
    new_vinos = host.file_vinos(1)
    assert host.file_vinos(0) == set()
    assert len(new_vinos) == 4

    def drop_all():
        fs = host.mounts[0]
        for name in ("f", "g", "h", "new"):
            yield from fs.unlink(f"/a/{name}")
        yield from fs.rmdir("/a")

    host.run(drop_all())


def test_rebalance_hard_link_leaves_stub_at_home(split2):
    host = split2

    def link_it():
        yield from host.mounts[0].link("/a/f", "/b/l")

    host.run(link_it())
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))

    # /a/f's inode stayed on shard 0 (the hard link pins it); the name on
    # shard 1 is a stub pointing home.
    stub = next(d for d in host.shards[1].db.table("dentries").all()
                if d["name"] == "f")
    assert stub.get("home") == 0

    def use_both():
        fs = host.mounts[0]
        a = yield from fs.stat("/a/f")
        b = yield from fs.stat("/b/l")
        return a.nlink, b.nlink

    assert host.run(use_both()) == (2, 2)


def test_rebalance_rejected_from_non_owner(split2):
    host = split2
    with pytest.raises(FsError) as exc:
        host.run(host.shards[1].rebalance_dir("/a", 0, host.sim.now))
    assert exc.value.code == "EINVAL"


def test_overrides_survive_tier_recovery(split2):
    host = split2
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    before = _observe(host)
    # Poison the in-memory map to prove recovery restores it durably.
    host.stack.sharding.overrides.clear()
    host.run(recover_tier(host.shards))
    assert host.stack.sharding.overrides == {"/a": 1}
    assert _observe(host) == before


def test_router_counts_loads_and_rebalancer_levels_them():
    host = ShardedCofs(n_clients=1, shards=2,
                       sharding=SubtreeSharding({}, default=0))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/hot")
        yield from fs.mkdir("/cold")
        for index in range(8):
            fh = yield from fs.create(f"/hot/f{index}")
            yield from fs.close(fh)
        for index in range(8):
            yield from fs.stat(f"/hot/f{index}")
        yield from fs.stat("/cold")

    host.run(setup())
    router = host.stack.routers[0]
    assert router.op_loads[0] > 0
    hot_before = router.dir_loads["/hot"]
    assert hot_before >= 16  # creates + stats

    rebalancer = Rebalancer(host.stack.routers, host.shards)
    moves = host.run(rebalancer.rebalance())
    assert ("/hot", 0, 1) in moves
    # Counters decay (not reset) after the round, so a hotspot whose
    # burst straddles the boundary stays visible to the next planning
    # round; the population actually moved.
    assert router.dir_loads["/hot"] == hot_before // 2
    assert sum(router.op_loads) < hot_before
    # ...and a few more decays age one-off spikes out entirely.
    for _ in range(8):
        router.decay_loads()
    assert router.dir_loads == {}
    assert len(host.file_vinos(1)) == 8

    def still_works():
        fs = host.mounts[0]
        stats = []
        for index in range(8):
            stats.append((yield from fs.stat(f"/hot/f{index}")).nlink)
        return stats

    assert host.run(still_works()) == [1] * 8


def test_rebalancer_plan_is_deterministic_and_bounded():
    host = ShardedCofs(n_clients=1, shards=4, sharding=HashDirSharding())

    def setup():
        fs = host.mounts[0]
        for name in ("d0", "d1", "d2", "d3", "d4", "d5"):
            yield from fs.mkdir(f"/{name}")
            for index in range(4):
                fh = yield from fs.create(f"/{name}/f{index}")
                yield from fs.close(fh)

    host.run(setup())
    rebalancer = Rebalancer(host.stack.routers, host.shards, max_moves=2)
    plan_a = rebalancer.plan()
    plan_b = rebalancer.plan()
    assert plan_a == plan_b
    assert len(plan_a) <= 2
    for _path, src, dst in plan_a:
        assert src != dst


def test_rmdir_forgets_the_directorys_override(split2):
    """Closing the stickiness item: an override dies with its directory.
    A recreated directory at the same path routes by the static rule
    again — no surprise placement inherited from a dead namespace."""
    host = split2
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    assert host.stack.sharding.shard_of_dir("/a", 2) == 1

    def drop_and_recreate():
        fs = host.mounts[0]
        for name in ("f", "g", "h"):
            yield from fs.unlink(f"/a/{name}")
        yield from fs.rmdir("/a")
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/fresh")
        yield from fs.close(fh)

    host.run(drop_and_recreate())
    # The override row is gone on every shard, in memory, and routing is
    # back to the static rule: the fresh file's row lives on shard 0.
    for shard in host.shards:
        assert not shard.db.table("overrides").all()
    assert "/a" not in host.stack.sharding.overrides
    assert host.stack.sharding.shard_of_dir("/a", 2) == 0
    assert len(host.file_vinos(0)) == 1
    assert host.file_vinos(1) == set()
    from repro.core.faults import check_tier_invariants
    check_tier_invariants(host.shards, host.stack.sharding)


def test_forget_override_admin_entry_point(split2):
    """The admin-facing forget: the population migrates back to the
    static owner and the override is durably dropped everywhere, while
    the directory stays fully usable."""
    host = split2
    before = _observe(host)
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    assert len(host.file_vinos(1)) == 3
    assert host.file_vinos(0) == set()

    # Any shard accepts the admin call (it self-forwards to the owner).
    host.run(host.shards[0].forget_override("/a", host.sim.now))

    for shard in host.shards:
        assert not shard.db.table("overrides").all()
    assert "/a" not in host.stack.sharding.overrides
    # The population came home and nothing observable changed.
    assert len(host.file_vinos(0)) == 3
    assert host.file_vinos(1) == set()
    assert _observe(host) == before
    from repro.core.faults import check_tier_invariants
    check_tier_invariants(host.shards, host.stack.sharding)
    # Forgetting again is a no-op.
    assert host.run(
        host.shards[1].forget_override("/a", host.sim.now)) is False


def test_forget_override_survives_crash_at_every_boundary(split2):
    """The forget protocol is crash-redoable: its intent rolls the
    migration-home and the tier-wide row drop forward from any gap."""
    from repro.core.faults import (
        CrashInjected, CrashSchedule, arm_shards, check_tier_invariants,
        disarm_shards,
    )

    def build():
        host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

        def setup():
            fs = host.mounts[0]
            yield from fs.mkdir("/a")
            yield from fs.mkdir("/b")
            for name in ("f", "g", "h"):
                fh = yield from fs.create(f"/a/{name}")
                yield from fs.close(fh)

        host.run(setup())
        host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
        return host

    host = build()
    schedule = CrashSchedule()
    arm_shards(host.shards, schedule)
    host.run(host.shards[1].forget_override("/a", host.sim.now))
    disarm_shards(host.shards)
    count = schedule.count
    assert count >= 4

    for k in range(count):
        host = build()
        schedule = CrashSchedule(armed=k)
        arm_shards(host.shards, schedule)

        def crashing():
            try:
                yield from host.shards[1].forget_override(
                    "/a", host.sim.now)
            except CrashInjected:
                pass
            return True

        host.run(crashing())
        disarm_shards(host.shards)
        host.run(recover_tier(host.shards))
        observed = check_tier_invariants(host.shards, host.stack.sharding)
        # Either the forget never started (override intact) or it rolled
        # forward completely (override gone, population home) — never a
        # half state.
        rows = {tuple(sorted((r["path"], r["shard"])
                for r in shard.db.table("overrides").all()))
                for shard in host.shards}
        assert len(rows) == 1  # identical tables either way
        if host.stack.sharding.overrides:
            assert host.stack.sharding.overrides == {"/a": 1}
            assert len(host.file_vinos(1)) == 3
        else:
            assert len(host.file_vinos(0)) == 3
        assert {p for p in observed} >= {"/a/f", "/a/g", "/a/h"}


def test_mirror_rmdir_refusal_still_drops_override_row(split2):
    """Even when the replay refuses the removal (entries appeared here
    since the coordinator's emptiness check — the documented divergence
    window), the override row is dropped: the coordinator's commit is
    the authoritative removal, and a kept row would diverge the override
    tables and be resurrected tier-wide by the next restore."""
    host = split2
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    result = host.run(host.shards[1].mirror_rmdir("/a", host.sim.now))
    assert result is False  # refused: /a's population lives here
    assert not host.shards[1].db.table("overrides").all()


def test_forget_override_respects_newer_seq(split2):
    """A forget replaying late (redo after a fence) must not destroy an
    override a *later* re-homing installed — same newest-seq-wins rule
    as mirror_override, or the newer override's migrated population
    would be stranded behind static-rule routing."""
    host = split2
    host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    seq = host.shards[0].db.table("overrides").all()[0]["seq"]
    result = host.run(
        host.shards[0].mirror_forget_override("/a", seq - 1.0))
    assert result is False
    assert host.stack.sharding.overrides == {"/a": 1}
    rows = host.shards[0].db.table("overrides").all()
    assert rows and rows[0]["shard"] == 1
