"""The sharded metadata tier: policies, router, cross-shard protocols."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack
from repro.core.metaservice import MetadataService
from repro.core.sharding import (
    HashDirSharding,
    ShardMetadataService,
    SubtreeSharding,
)
from repro.pfs import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK
from tests.core.conftest import ShardedCofs


@pytest.fixture
def split2():
    """Two shards partitioned statically: /a on shard 0, /b on shard 1."""
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        yield from host.mounts[0].mkdir("/a")
        yield from host.mounts[0].mkdir("/b")

    host.run(setup())
    return host


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------

def test_hash_sharding_is_deterministic_and_in_range():
    policy = HashDirSharding()
    for n in (1, 2, 4, 7):
        seen = set()
        for i in range(64):
            shard = policy.shard_of_dir(f"/dir{i}", n)
            assert shard == policy.shard_of_dir(f"/dir{i}", n)
            assert 0 <= shard < n
            seen.add(shard)
        if n > 1:
            assert len(seen) > 1  # spreads over more than one shard
    assert policy.shard_of_dir("/anything", 1) == 0


def test_subtree_sharding_longest_prefix_wins():
    policy = SubtreeSharding({"/p": 0, "/p/deep": 1, "/q": 2}, default=3)
    n = 4
    assert policy.shard_of_dir("/p", n) == 0
    assert policy.shard_of_dir("/p/x", n) == 0
    assert policy.shard_of_dir("/p/deep", n) == 1
    assert policy.shard_of_dir("/p/deep/more", n) == 1
    assert policy.shard_of_dir("/p/deeper", n) == 0  # not under /p/deep
    assert policy.shard_of_dir("/q/y", n) == 2
    assert policy.shard_of_dir("/elsewhere", n) == 3
    assert policy.shard_of_dir("/elsewhere", 1) == 0


# ---------------------------------------------------------------------------
# router + stack assembly
# ---------------------------------------------------------------------------

def test_one_shard_stack_keeps_the_plain_service():
    testbed = build_flat_testbed(n_clients=1, with_mds=True)
    stack = CofsStack(testbed)
    assert type(stack.mds) is MetadataService
    assert stack.n_shards == 1
    assert len(stack.testbed.mds_shards) == 1


def test_sharded_stack_builds_one_service_per_mds_machine():
    host = ShardedCofs(shards=3)
    assert len(host.shards) == 3
    assert all(type(s) is ShardMetadataService for s in host.shards)
    names = [s.machine.name for s in host.shards]
    assert names == ["mds", "mds1", "mds2"]
    # every shard has its own disk, DB service and WAL
    assert len({id(s.dbsvc) for s in host.shards}) == 3
    assert len({id(s.dbsvc.disk) for s in host.shards}) == 3


def test_router_routes_by_parent_directory(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        fh = yield from fs0.create("/b/g")
        yield from fs0.close(fh)

    split2.run(main())
    assert len(split2.file_vinos(0)) == 1
    assert len(split2.file_vinos(1)) == 1


def test_vino_allocation_never_collides_across_shards(split2):
    fs0 = split2.mounts[0]

    def main():
        inos = []
        for i in range(8):
            for d in ("a", "b"):
                fh = yield from fs0.create(f"/{d}/f{i}")
                yield from fs0.close(fh)
                attr = yield from fs0.stat(f"/{d}/f{i}")
                inos.append(attr.ino)
        return inos

    inos = split2.run(main())
    assert len(inos) == len(set(inos))


def test_directories_and_symlinks_replicate_to_every_shard(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/a/sub")
        yield from fs0.symlink("/a/sub", "/b/ln")
        attr = yield from fs0.stat("/a/sub")
        return attr.ino

    sub_vino = split2.run(main())
    for shard in (0, 1):
        vinos = split2.inode_vinos(shard)
        assert sub_vino in vinos  # the directory exists on both shards

    def teardown():
        yield from fs0.unlink("/b/ln")
        yield from fs0.rmdir("/a/sub")

    split2.run(teardown())
    for shard in (0, 1):
        assert sub_vino not in split2.inode_vinos(shard)


def test_statfs_aggregates_without_double_counting(split2):
    fs0 = split2.mounts[0]

    def main():
        for path in ("/a/f1", "/a/f2", "/b/g1"):
            fh = yield from fs0.create(path)
            yield from fs0.close(fh)
        yield from fs0.mkdir("/a/d")
        stats = yield from fs0.statfs()
        return stats

    stats = split2.run(main())
    assert stats["files"] == 3
    assert stats["virtual_directories"] == 4  # /, /a, /b, /a/d


# ---------------------------------------------------------------------------
# cross-shard rename
# ---------------------------------------------------------------------------

def test_cross_shard_rename_migrates_the_inode(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.write(fh, 0, data=b"payload")
        yield from fs0.close(fh)
        before = yield from fs0.stat("/a/f")
        yield from fs0.rename("/a/f", "/b/g")
        after = yield from fs0.stat("/b/g")
        return before.ino, after.ino

    before_ino, after_ino = split2.run(main())
    assert before_ino == after_ino
    assert split2.file_vinos(0) == set()
    assert split2.file_vinos(1) == {after_ino}

    def old_name():
        yield from fs0.stat("/a/f")

    with pytest.raises(FsError) as err:
        split2.run(old_name())
    assert err.value.code == "ENOENT"

    def read_back():
        fh = yield from fs0.open("/b/g")
        data = yield from fs0.read(fh, 0, 7, want_data=True)
        yield from fs0.close(fh)
        return data

    assert split2.run(read_back()) == b"payload"


def test_cross_shard_rename_replaces_and_unlinks_underlying(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/src")
        yield from fs0.write(fh, 0, data=b"new")
        yield from fs0.close(fh)
        fh = yield from fs0.create("/b/dst")
        yield from fs0.write(fh, 0, data=b"old-old")
        yield from fs0.close(fh)
        old_attr = yield from fs0.stat("/b/dst")
        yield from fs0.rename("/a/src", "/b/dst")
        new_attr = yield from fs0.stat("/b/dst")
        fh = yield from fs0.open("/b/dst")
        data = yield from fs0.read(fh, 0, 16, want_data=True)
        yield from fs0.close(fh)
        return old_attr.ino, new_attr.ino, data

    old_ino, new_ino, data = split2.run(main())
    assert old_ino != new_ino
    assert data == b"new"
    # the replaced file is fully gone: one file inode total, on shard 1
    assert split2.file_vinos(0) == set()
    assert len(split2.file_vinos(1)) == 1


def test_cross_shard_rename_onto_missing_parent_compensates(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        try:
            yield from fs0.rename("/a/f", "/b/nosuch/dir/g")
        except FsError as exc:
            code = exc.code
        else:
            code = None
        attr = yield from fs0.stat("/a/f")  # the detach was compensated
        return code, attr

    code, attr = split2.run(main())
    assert code == "ENOENT"
    assert attr.kind == FILE
    assert split2.file_vinos(0) == {attr.ino}


def _symlink_inodes(host, shard):
    return [row["vino"] for row in
            host.shards[shard].db.table("inodes").all()
            if row["kind"] == SYMLINK]


def test_rename_over_a_symlink_removes_every_replica(split2):
    """A same-shard FILE rename replacing a SYMLINK kills all replicas."""
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/b/t")
        yield from fs0.symlink("/b/t", "/b/s")
        fh = yield from fs0.create("/b/f")
        yield from fs0.close(fh)
        yield from fs0.rename("/b/f", "/b/s")  # both names on shard 1
        attr = yield from fs0.stat("/b/s")
        return attr

    attr = split2.run(main())
    assert attr.kind == FILE
    for shard in (0, 1):
        assert _symlink_inodes(split2, shard) == []


def test_cross_shard_rename_over_a_symlink_removes_every_replica(split2):
    """rename_install replacing a SYMLINK must broadcast the removal."""
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/a/t")
        yield from fs0.symlink("/a/t", "/b/s")
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.rename("/a/f", "/b/s")  # shard 0 -> shard 1
        attr = yield from fs0.stat("/b/s")
        return attr

    attr = split2.run(main())
    assert attr.kind == FILE
    for shard in (0, 1):
        assert _symlink_inodes(split2, shard) == []

    def read_link():
        yield from fs0.readlink("/b/s")

    with pytest.raises(FsError) as err:
        split2.run(read_link())
    assert err.value.code == "EINVAL"  # it is a file now, everywhere


def test_stale_symlink_replica_is_not_followed_after_rename():
    """Walks routed to another shard must not resolve a replaced symlink.

    With hash sharding, a path under the replaced name routes to a shard
    that did not perform the rename; its (formerly stale) replica must be
    gone, and the owner shard answers ENOTDIR for the file in the middle.
    """
    policy = HashDirSharding()
    root_shard = policy.shard_of_dir("/", 2)
    # A name whose directory routes walks to the *other* shard than the
    # one owning "/"'s entries (which is where the rename runs).
    name = next(f"s{i}" for i in range(100)
                if policy.shard_of_dir(f"/s{i}", 2) != root_shard)
    host = ShardedCofs(sharding=HashDirSharding())
    fs = host.mounts[0]

    def setup():
        yield from fs.mkdir("/t")
        fh = yield from fs.create("/t/x")
        yield from fs.close(fh)
        yield from fs.symlink("/t", f"/{name}")
        fh = yield from fs.create("/f")
        yield from fs.close(fh)
        yield from fs.rename("/f", f"/{name}")

    host.run(setup())
    for shard in (0, 1):
        assert _symlink_inodes(host, shard) == []

    def stat_through():
        yield from fs.stat(f"/{name}/x")

    with pytest.raises(FsError) as err:
        host.run(stat_through())
    assert err.value.code == "ENOTDIR"

    def create_through():
        fh = yield from fs.create(f"/{name}/y")
        yield from fs.close(fh)

    with pytest.raises(FsError):
        host.run(create_through())
    assert host.run(fs.readdir("/t")) == ["x"]  # nothing materialized


def test_hard_link_survives_cross_shard_rename_of_primary():
    """Renaming one name of a hard-linked file must not dangle the rest.

    The inode row of a file with nlink > 1 never migrates: the renamed
    name becomes a stub pointing at the inode's home shard, so surviving
    links (and their stubs' ``home`` fields) stay valid.
    """
    host = ShardedCofs(
        shards=3, sharding=SubtreeSharding({"/a": 0, "/b": 1, "/c": 2}))
    fs = host.mounts[0]

    def main():
        for d in ("/a", "/b", "/c"):
            yield from fs.mkdir(d)
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)
        yield from fs.link("/a/f", "/b/g")  # stub on shard 1, home 0
        yield from fs.rename("/a/f", "/c/h")  # must not move the inode
        g = yield from fs.stat("/b/g")
        h = yield from fs.stat("/c/h")
        return g, h

    g, h = host.run(main())
    assert g.ino == h.ino
    assert host.file_vinos(0) == {g.ino}  # the inode stayed home
    assert host.file_vinos(1) == set()
    assert host.file_vinos(2) == set()

    def drop_both():
        yield from fs.unlink("/c/h")
        attr = yield from fs.stat("/b/g")  # still alive through the stub
        yield from fs.unlink("/b/g")
        return attr

    attr = host.run(drop_both())
    assert attr.ino == g.ino
    for shard in range(3):
        assert host.file_vinos(shard) == set()  # no leaked link counts


def test_hard_link_survives_directory_rename_migration(split2):
    """Subtree re-homing ships hard-linked files as stubs, not inodes."""
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/a/d")
        fh = yield from fs0.create("/a/d/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/d/f", "/b/g")  # stub on shard 1, home 0
        yield from fs0.rename("/a/d", "/b/d")  # re-homes /b/d's entries
        f = yield from fs0.stat("/b/d/f")
        g = yield from fs0.stat("/b/g")
        return f, g

    f, g = split2.run(main())
    assert f.ino == g.ino
    assert split2.file_vinos(0) == {f.ino}  # inode never moved
    assert split2.file_vinos(1) == set()

    def drop_both():
        yield from fs0.unlink("/b/d/f")
        yield from fs0.unlink("/b/g")

    split2.run(drop_both())
    for shard in (0, 1):
        assert split2.file_vinos(shard) == set()


def test_readlink_of_a_cross_shard_stub_is_einval(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")

    split2.run(main())

    def read_link():
        yield from fs0.readlink("/b/l")

    with pytest.raises(FsError) as err:
        split2.run(read_link())
    assert err.value.code == "EINVAL"


def test_directory_rename_replays_on_every_shard(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/a/d")
        fh = yield from fs0.create("/a/d/f")
        yield from fs0.close(fh)
        yield from fs0.rename("/a/d", "/b/moved")
        attr = yield from fs0.stat("/b/moved/f")
        names = yield from fs0.readdir("/b/moved")
        return attr.kind, names

    kind, names = split2.run(main())
    assert kind == FILE
    assert names == ["f"]

    def old_path():
        yield from fs0.readdir("/a/d")

    with pytest.raises(FsError) as err:
        split2.run(old_path())
    assert err.value.code == "ENOENT"


# ---------------------------------------------------------------------------
# cross-shard hard links + delegation
# ---------------------------------------------------------------------------

def test_cross_shard_link_shares_the_inode(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.write(fh, 0, data=b"12345")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        via_link = yield from fs0.stat("/b/l")
        yield from fs0.chmod("/b/l", 0o600)
        via_primary = yield from fs0.stat("/a/f")
        return via_link, via_primary

    via_link, via_primary = split2.run(main())
    assert via_link.ino == via_primary.ino
    assert via_link.nlink == 2
    assert via_primary.mode == 0o600
    # the inode stays home on shard 0; shard 1 holds only the stub dentry
    assert split2.file_vinos(0) == {via_link.ino}
    assert split2.file_vinos(1) == set()


def test_unlink_of_primary_name_keeps_cross_shard_link_alive(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.write(fh, 0, data=b"keep")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        yield from fs0.unlink("/a/f")
        attr = yield from fs0.stat("/b/l")
        fh = yield from fs0.open("/b/l")
        data = yield from fs0.read(fh, 0, 4, want_data=True)
        yield from fs0.close(fh)
        yield from fs0.unlink("/b/l")
        return attr.nlink, data

    nlink, data = split2.run(main())
    assert nlink == 1
    assert data == b"keep"
    assert split2.file_vinos(0) == set()
    assert split2.file_vinos(1) == set()


def test_delegation_sync_back_lands_on_the_owning_shard(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        # write through the *stub* name on the other shard
        fh = yield from fs0.open("/b/l", 0x0001)  # WRONLY
        yield from fs0.write(fh, 0, data=b"x" * 4096)
        yield from fs0.close(fh)
        attr = yield from fs0.stat("/a/f")
        return attr

    attr = split2.run(main())
    assert attr.size == 4096
    home_row = split2.shards[0].db.table("inodes").read(attr.ino)
    assert home_row["size"] == 4096
    assert home_row["delegated"] is False  # close_sync reached the home


def test_router_learns_the_home_shard_of_linked_inodes(split2):
    fs0 = split2.mounts[0]
    router = split2.stack._drivers[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        view_attr = yield from fs0.stat("/b/l")
        return view_attr.ino

    vino = split2.run(main())
    assert router._vino_shard[vino] == 0  # home, not the routed shard (1)


def test_renaming_a_stub_name_keeps_the_link_working(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.write(fh, 0, data=b"abc")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        # stub moves within its shard...
        yield from fs0.rename("/b/l", "/b/l2")
        via_stub = yield from fs0.stat("/b/l2")
        # ...and back home, where it becomes a plain dentry again
        yield from fs0.rename("/b/l2", "/a/g")
        via_home = yield from fs0.stat("/a/g")
        primary = yield from fs0.stat("/a/f")
        return via_stub, via_home, primary

    via_stub, via_home, primary = split2.run(main())
    assert via_stub.ino == via_home.ino == primary.ino
    assert via_home.nlink == 2
    # no stub remains anywhere: both names resolve on shard 0 now
    dentries = split2.shards[1].db.table("dentries").all()
    assert not any(d.get("home") is not None for d in dentries)


def test_using_a_stub_name_as_a_directory_is_enotdir(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        fh = yield from fs0.create("/b/l/x")  # parent is a hard-linked file

    with pytest.raises(FsError) as err:
        split2.run(main())
    assert err.value.code == "ENOTDIR"

    def listing():
        names = yield from fs0.readdir("/b/l")
        return names

    with pytest.raises(FsError) as err:
        split2.run(listing())
    assert err.value.code == "ENOTDIR"


def test_rmdir_of_a_stub_name_is_enotdir(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        yield from fs0.rmdir("/b/l")

    with pytest.raises(FsError) as err:
        split2.run(main())
    assert err.value.code == "ENOTDIR"


def test_rename_over_a_stub_unlinks_the_underlying_file(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.write(fh, 0, data=b"old")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/l")
        yield from fs0.unlink("/a/f")  # the stub holds the last name
        fh = yield from fs0.create("/b/h")
        yield from fs0.write(fh, 0, data=b"new")
        yield from fs0.close(fh)
        yield from fs0.rename("/b/h", "/b/l")  # replaces the stub name
        attr = yield from fs0.stat("/b/l")
        return attr

    attr = split2.run(main())
    # the replaced inode is gone from its home shard...
    assert split2.file_vinos(0) == set()
    assert split2.file_vinos(1) == {attr.ino}
    # ...and its underlying object was reclaimed: only /b/l's remains
    remaining = [row for row in
                 split2.shards[1].db.table("inodes").all()
                 if row["kind"] == FILE]
    assert len(remaining) == 1

    def read_back():
        fh = yield from fs0.open("/b/l")
        data = yield from fs0.read(fh, 0, 8, want_data=True)
        yield from fs0.close(fh)
        return data

    assert split2.run(read_back()) == b"new"


def test_close_sync_survives_a_concurrent_cross_shard_rename(split2):
    fs0 = split2.mounts[0]
    fs1 = split2.mounts[1]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        fh = yield from fs0.open("/a/f", 0x0001)  # WRONLY: delegation starts
        yield from fs0.write(fh, 0, data=b"y" * 2048)
        # another client migrates the inode to the other shard mid-write
        yield from fs1.rename("/a/f", "/b/g")
        yield from fs0.close(fh)  # write-back must chase the inode
        attr = yield from fs0.stat("/b/g")
        return attr

    attr = split2.run(main())
    assert attr.size == 2048
    row = split2.shards[1].db.table("inodes").read(attr.ino)
    assert row["size"] == 2048
    assert row["delegated"] is False


def test_statfs_counts_symlinks_once(split2):
    fs0 = split2.mounts[0]
    router = split2.stack._drivers[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.symlink("/a/f", "/b/ln")
        stats = yield from router.call("statfs")
        return stats

    stats = split2.run(main())
    assert stats["files"] == 1
    assert stats["directories"] == 3  # /, /a, /b
    # inodes = skeleton (3 dirs + 1 symlink, counted once) + 1 file
    assert stats["inodes"] == 5


def test_hard_links_to_symlinks_are_rejected_on_sharded_stacks(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.symlink("/a", "/a/ln")
        yield from fs0.link("/a/ln", "/b/l")

    with pytest.raises(FsError) as err:
        split2.run(main())
    assert err.value.code == "EINVAL"


# ---------------------------------------------------------------------------
# symlink chains across shards
# ---------------------------------------------------------------------------

def test_resolution_follows_symlinks_across_shards(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/b/d")
        fh = yield from fs0.create("/b/d/f")
        yield from fs0.write(fh, 0, data=b"deep")
        yield from fs0.close(fh)
        yield from fs0.symlink("/b/d", "/a/ln")
        attr = yield from fs0.stat("/a/ln/f")
        names = yield from fs0.readdir("/a/ln")
        return attr, names

    attr, names = split2.run(main())
    assert attr.size == 4
    assert names == ["f"]


def test_symlink_chain_crossing_shards_twice(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.mkdir("/a/deep")
        fh = yield from fs0.create("/a/deep/f")
        yield from fs0.close(fh)
        # /b/hop -> /a/deep (owner: shard 0); /a/ln -> /b/hop (via shard 1)
        yield from fs0.symlink("/a/deep", "/b/hop")
        yield from fs0.symlink("/b/hop", "/a/ln")
        attr = yield from fs0.stat("/a/ln/f")
        return attr.kind

    assert split2.run(main()) == FILE


def test_cross_shard_symlink_cycle_raises(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.symlink("/b/loop2", "/a/loop1")
        yield from fs0.symlink("/a/loop1", "/b/loop2")
        yield from fs0.stat("/a/loop1/x")

    with pytest.raises(FsError) as err:
        split2.run(main())
    assert err.value.code == "EINVAL"


def test_create_through_cross_shard_symlink(split2):
    fs0 = split2.mounts[0]

    def main():
        yield from fs0.symlink("/b", "/a/to-b")
        fh = yield from fs0.create("/a/to-b/f")
        yield from fs0.close(fh)
        attr = yield from fs0.stat("/b/f")
        return attr.kind

    assert split2.run(main()) == FILE
    assert len(split2.file_vinos(1)) == 1
    assert split2.file_vinos(0) == set()


# ---------------------------------------------------------------------------
# rmdir across shards
# ---------------------------------------------------------------------------

def _hash_split_names(n_shards=2):
    """A directory name whose contents hash to a different shard than its
    own dentry, under :class:`HashDirSharding` — plus one that doesn't."""
    policy = HashDirSharding()
    for i in range(256):
        name = f"/dir{i}"
        if policy.shard_of_dir(name, n_shards) != \
                policy.shard_of_dir("/", n_shards):
            return name
    raise AssertionError("no splitting name found")


def test_rmdir_sees_files_on_the_owning_shard():
    host = ShardedCofs()  # hash sharding
    fs0 = host.mounts[0]
    name = _hash_split_names()

    def main():
        yield from fs0.mkdir(name)
        fh = yield from fs0.create(f"{name}/f")
        yield from fs0.close(fh)
        try:
            yield from fs0.rmdir(name)
        except FsError as exc:
            code = exc.code
        else:
            code = None
        yield from fs0.unlink(f"{name}/f")
        yield from fs0.rmdir(name)
        names = yield from fs0.readdir("/")
        return code, names

    code, names = host.run(main())
    assert code == "ENOTEMPTY"
    assert names == []


# ---------------------------------------------------------------------------
# recovery on a shard
# ---------------------------------------------------------------------------

def test_shard_recovery_preserves_namespace_and_vino_stride(split2):
    fs0 = split2.mounts[0]

    def main():
        for d in ("a", "b"):
            fh = yield from fs0.create(f"/{d}/before")
            yield from fs0.close(fh)
        lost = yield from split2.shards[1].recover()
        survived = yield from fs0.stat("/b/before")
        fh = yield from fs0.create("/b/after")
        yield from fs0.close(fh)
        fresh = yield from fs0.stat("/b/after")
        other = yield from fs0.stat("/a/before")
        return lost, survived, fresh, other

    lost, survived, fresh, other = split2.run(main())
    assert lost == 0
    assert survived.kind == FILE
    # shard 1 allocates from the {vino % 2 == 0} class, before and after
    assert survived.ino % 2 == 0
    assert fresh.ino % 2 == 0
    assert fresh.ino > survived.ino
    assert other.ino != fresh.ino


def test_recovery_never_reissues_a_migrated_vino(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/b/f")  # allocated from shard 1's class
        yield from fs0.close(fh)
        migrated = yield from fs0.stat("/b/f")
        yield from fs0.rename("/b/f", "/a/g")  # inode now lives on shard 0
        yield from split2.shards[1].recover()
        fh = yield from fs0.create("/b/new")
        yield from fs0.close(fh)
        fresh = yield from fs0.stat("/b/new")
        return migrated.ino, fresh.ino

    migrated_ino, fresh_ino = split2.run(main())
    assert fresh_ino != migrated_ino
    assert fresh_ino > migrated_ino


def test_renaming_a_directory_over_a_stub_is_enotdir(split2):
    fs0 = split2.mounts[0]

    def main():
        fh = yield from fs0.create("/a/f")
        yield from fs0.close(fh)
        yield from fs0.link("/a/f", "/b/g")  # stub on shard 1
        yield from fs0.mkdir("/b/d")
        yield from fs0.rename("/b/d", "/b/g")

    with pytest.raises(FsError) as err:
        split2.run(main())
    assert err.value.code == "ENOTDIR"

    def still_there():
        attr = yield from fs0.stat("/b/g")
        names = yield from fs0.readdir("/b/d")
        return attr, names

    attr, names = split2.run(still_there())
    assert attr.kind == FILE  # the link survived untouched
    assert attr.nlink == 2
    assert names == []


def test_directory_mtime_reflects_file_creates_on_other_shard():
    host = ShardedCofs()  # hash sharding
    fs0 = host.mounts[0]
    name = _hash_split_names()  # contents owned away from the dentry owner

    def main():
        yield from fs0.mkdir(name)
        before = yield from fs0.stat(name)
        fh = yield from fs0.create(f"{name}/f")
        yield from fs0.close(fh)
        after = yield from fs0.stat(name)
        return before.mtime, after.mtime

    before_mtime, after_mtime = host.run(main())
    assert after_mtime > before_mtime


def test_metarates_private_dirs_runs_on_sharded_stack():
    from repro.workloads.metarates import MetaratesConfig, run_metarates

    host = ShardedCofs(n_clients=2, shards=2)
    config = MetaratesConfig(
        nodes=2, procs_per_node=1, files_per_proc=8,
        ops=("create", "stat", "utime"), private_dirs=True,
    )
    res = run_metarates(host.stack, config)
    assert res.recorder.count("create") == 16
    assert res.recorder.count("stat") == 16
    # everything cleaned up on both shards
    assert host.file_vinos(0) == set()
    assert host.file_vinos(1) == set()


# ---------------------------------------------------------------------------
# regression: the two documented resolution windows
# ---------------------------------------------------------------------------

def test_partitioned_middle_file_is_enotdir_on_every_walk():
    """A partitioned file in the middle of a path answers ENOTDIR for
    leaf walks AND parent walks (create/mkdir/readdir) alike — the
    historical ENOENT/ENOTDIR asymmetry is closed by the final forward
    to the enclosing directory's owner."""
    policy = HashDirSharding()
    root_shard = policy.shard_of_dir("/", 2)
    name = next(f"f{i}" for i in range(100)
                if policy.shard_of_dir(f"/f{i}", 2) != root_shard)
    host = ShardedCofs(sharding=HashDirSharding())
    fs = host.mounts[0]

    def setup():
        fh = yield from fs.create(f"/{name}")
        yield from fs.close(fh)

    host.run(setup())

    def expect(code, coro):
        with pytest.raises(FsError) as err:
            host.run(coro)
        assert err.value.code == code

    expect("ENOTDIR", fs.stat(f"/{name}/y"))           # leaf walk
    expect("ENOTDIR", fs.create(f"/{name}/y"))         # parent walk
    expect("ENOTDIR", fs.mkdir(f"/{name}/y"))          # parent walk
    expect("ENOTDIR", fs.readdir(f"/{name}"))          # dir-target walk
    expect("ENOTDIR", fs.unlink(f"/{name}/y"))         # parent walk
    # a truly absent middle component stays ENOENT on every walk
    expect("ENOENT", fs.stat("/nosuch/y"))
    expect("ENOENT", fs.create("/nosuch/y"))


def test_subtree_migration_window_only_transient_enoent(split2):
    """Pin the post-rename migration window: while a directory rename
    re-homes file entries, a concurrent reader of the new path may see
    ENOENT (documented), but never any other error, and the namespace
    settles to the post-rename image once the rename returns."""
    fs0, fs1 = split2.mounts[0], split2.mounts[1]
    seen = []

    def writer():
        yield from fs0.mkdir("/a/d")
        for i in range(4):
            fh = yield from fs0.create(f"/a/d/f{i}")
            yield from fs0.close(fh)
        yield from fs0.rename("/a/d", "/b/d")
        return True

    def reader():
        for _ in range(40):
            try:
                attr = yield from fs1.stat("/b/d/f0")
                seen.append(("ok", attr.kind))
            except FsError as exc:
                seen.append(("err", exc.code))
            yield split2.sim.timeout(1.0)
        return True

    split2.run_all([writer(), reader()])
    assert set(seen) <= {("ok", FILE), ("err", "ENOENT")}

    def after():
        names = yield from fs0.readdir("/b/d")
        attr = yield from fs1.stat("/b/d/f3")
        return names, attr.kind

    names, kind = split2.run(after())
    assert names == ["f0", "f1", "f2", "f3"]
    assert kind == FILE


def test_rename_edge_cases_match_posix_across_placements():
    """Pin three rename divergences the differential oracle surfaced
    (all order-of-checks bugs in the sharded path only): a same-path
    rename of a non-empty directory is a no-op success (the cross-shard
    destination precheck must not answer ENOTEMPTY for the source
    itself); moving a directory beneath itself is EINVAL even when the
    destination name is occupied by a file on another shard (the cycle
    check precedes the destination-kind precheck, as in the
    one-transaction body); and a destination whose parent is missing is
    ENOENT — the *final* destination forward must be answered by the
    entries owner, not retried locally until the hop cap (which read as
    EINVAL "too many levels of symbolic links")."""
    for make in (
        lambda: ShardedCofs(n_clients=1, shards=4,
                            sharding=HashDirSharding()),
        lambda: ShardedCofs(n_clients=1, shards=4,
                            sharding=SubtreeSharding({"/d1": 1, "/d2": 3})),
    ):
        host = make()
        fs = host.mounts[0]

        def setup():
            yield from fs.mkdir("/d1")
            yield from fs.mkdir("/d1/x")
            fh = yield from fs.create("/d1/f")
            yield from fs.close(fh)

        host.run(setup())

        # same-path rename of a non-empty directory: no-op success
        host.run(fs.rename("/d1", "/d1"))
        assert sorted(host.run(fs.readdir("/d1"))) == ["f", "x"]

        def expect(code, coro):
            with pytest.raises(FsError) as err:
                host.run(coro)
            assert err.value.code == code

        # beneath-itself beats the occupied-destination check
        expect("EINVAL", fs.rename("/d1", "/d1/f"))
        # missing destination parent: authoritative ENOENT, dir + file src
        expect("ENOENT", fs.rename("/d1/x", "/d2/y"))
        expect("ENOENT", fs.rename("/d1/f", "/d2/y"))
        # a file occupying the destination's parent: authoritative ENOTDIR
        fh = host.run(fs.create("/d2"))
        host.run(fs.close(fh))
        expect("ENOTDIR", fs.rename("/d1/x", "/d2/y"))
        expect("ENOTDIR", fs.rename("/d1/f", "/d2/y"))
