"""Intra-directory partitioning: splits, merges, and their transparency.

A hot directory's entries are hash-partitioned across shards by name
(GIGA+-style); every test here holds the split to the same standard as
re-homing — observably invisible, durable everywhere, crash-redoable —
plus the split-specific properties: creates and stats of one directory
spread across the tier, readdir merges the partitions exactly once, and
renames in, out of, and within a split directory match the single-shard
oracle.
"""

import pytest

from repro.core.faults import check_tier_invariants
from repro.core.shard import Rebalancer
from repro.core.shard.recovery import recover_tier
from repro.core.shard.routing import entry_slot
from repro.core.sharding import HashDirSharding, SubtreeSharding
from repro.pfs.errors import FsError
from tests.core.conftest import MountedCofs, ShardedCofs
from tests.core.test_differential import apply_ops, observe

NAMES = [f"f{i}" for i in range(16)]


@pytest.fixture
def split2():
    """Two shards, /a and /b statically assigned, 16 files in /a."""
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        for name in NAMES:
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    return host


def _observe(host):
    """Structural listing through the client mount."""
    fs = host.mounts[0]

    def body():
        state = {}
        for d in (yield from fs.readdir("/")):
            names = yield from fs.readdir(f"/{d}")
            state[d] = names
            for name in names:
                attr = yield from fs.stat(f"/{d}/{name}")
                state[f"{d}/{name}"] = (attr.kind, attr.nlink)
        return state

    return host.run(body())


def test_split_spreads_entries_and_is_transparent(split2):
    host = split2
    before = _observe(host)
    assert len(host.file_vinos(0)) == 16

    assert host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))

    # The population physically spread by name hash ...
    want = {name: entry_slot(name, 2) for name in NAMES}
    assert len(host.file_vinos(0)) == sum(
        1 for slot in want.values() if slot == 0)
    assert len(host.file_vinos(1)) == sum(
        1 for slot in want.values() if slot == 1)
    assert host.file_vinos(0) and host.file_vinos(1)
    # ... the row is durable everywhere and routing consults it ...
    for shard in host.shards:
        rows = {r["path"]: tuple(r["shards"])
                for r in shard.db.table("partitions").all()}
        assert rows == {"/a": (0, 1)}
    assert host.stack.sharding.entry_shards("/a", 2) == (0, 1)
    for name in NAMES:
        assert host.stack.sharding.shard_of_entry("/a", name, 2) == \
            want[name]
    # ... and nothing observable changed.
    assert _observe(host) == before
    check_tier_invariants(host.shards, host.stack.sharding)
    # Splitting to the same fanout is a no-op.
    assert host.run(
        host.shards[0].split_dir("/a", [0, 1], host.sim.now)) is False


def test_split_dir_create_storm_spreads_across_shards():
    """The headline scaling property, structurally: a create storm into
    one split directory lands rows on every shard of the tier."""
    host = ShardedCofs(n_clients=1, shards=4,
                       sharding=SubtreeSharding({"/storm": 0}, default=0))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/storm")

    host.run(setup())
    host.run(host.shards[0].split_dir("/storm", [0, 1, 2, 3], host.sim.now))

    def storm():
        fs = host.mounts[0]
        for index in range(32):
            fh = yield from fs.create(f"/storm/n{index}")
            yield from fs.close(fh)
        for index in range(32):
            yield from fs.stat(f"/storm/n{index}")
        return (yield from fs.readdir("/storm"))

    names = host.run(storm())
    assert names == sorted(f"n{i}" for i in range(32))
    per_shard = [len(host.file_vinos(s)) for s in range(4)]
    assert sum(per_shard) == 32
    assert all(count > 0 for count in per_shard), per_shard
    check_tier_invariants(host.shards, host.stack.sharding)


def test_merge_brings_the_population_home(split2):
    host = split2
    before = _observe(host)
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))
    assert host.file_vinos(1)

    assert host.run(host.shards[0].merge_dir("/a", host.sim.now))

    assert len(host.file_vinos(0)) == 16
    assert host.file_vinos(1) == set()
    # The one-element row survives (dropping it could resurrect a stale
    # fanout through the restore union) and routes like no row at all.
    for shard in host.shards:
        rows = {r["path"]: tuple(r["shards"])
                for r in shard.db.table("partitions").all()}
        assert rows == {"/a": (0,)}
    assert host.stack.sharding.entry_shards("/a", 2) == (0,)
    assert _observe(host) == before
    check_tier_invariants(host.shards, host.stack.sharding)
    # Merging an unsplit (or already-merged) directory is a no-op ...
    assert host.run(host.shards[1].merge_dir("/b", host.sim.now)) is False
    # ... and a merged directory can split again.
    assert host.run(host.shards[0].split_dir("/a", [1, 0], host.sim.now))
    assert host.stack.sharding.entry_shards("/a", 2) == (1, 0)
    assert _observe(host) == before
    check_tier_invariants(host.shards, host.stack.sharding)


def test_resplit_widens_from_multiple_sources():
    host = ShardedCofs(n_clients=1, shards=4,
                       sharding=SubtreeSharding({"/a": 0}, default=0))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        for name in NAMES:
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    before = _observe(host)
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))
    host.run(host.shards[0].split_dir("/a", [0, 1, 2, 3], host.sim.now))

    want = {name: entry_slot(name, 4) for name in NAMES}
    for slot in range(4):
        assert len(host.file_vinos(slot)) == sum(
            1 for s in want.values() if s == slot)
    assert _observe(host) == before
    check_tier_invariants(host.shards, host.stack.sharding)


def test_split_dir_guards_and_interactions(split2):
    host = split2
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))
    # Re-homing a split directory is refused: its entries have no single
    # source shard to move.
    with pytest.raises(FsError) as err:
        host.run(host.shards[0].rebalance_dir("/a", 1, host.sim.now))
    assert err.value.code == "EINVAL"
    # Bad targets are refused before anything commits.
    for targets in ([], [7], [0, 9]):
        with pytest.raises(FsError) as err:
            host.run(host.shards[0].split_dir("/a", targets, host.sim.now))
        assert err.value.code == "EINVAL"
    # Any shard accepts the call: it self-forwards to the owner.
    assert host.run(
        host.shards[1].split_dir("/a", [1, 0], host.sim.now))
    check_tier_invariants(host.shards, host.stack.sharding)


def test_partitions_survive_tier_recovery(split2):
    host = split2
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))
    before = _observe(host)
    # Poison the in-memory map to prove recovery restores it durably.
    host.stack.sharding.partitions.clear()
    host.run(recover_tier(host.shards))
    assert host.stack.sharding.partitions == {"/a": (0, 1)}
    assert _observe(host) == before
    check_tier_invariants(host.shards, host.stack.sharding)


def test_rmdir_forgets_the_directorys_partitions():
    """A partition row dies with its directory: a recreated directory at
    the same path is unsplit, with no fanout inherited from a dead
    namespace."""
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        for name in ("f", "g", "h"):
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))

    def drop_and_recreate():
        fs = host.mounts[0]
        for name in ("f", "g", "h"):
            yield from fs.unlink(f"/a/{name}")
        yield from fs.rmdir("/a")
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/fresh")
        yield from fs.close(fh)

    host.run(drop_and_recreate())
    for shard in host.shards:
        assert not shard.db.table("partitions").all()
    assert "/a" not in host.stack.sharding.partitions
    assert host.stack.sharding.entry_shards("/a", 2) == (0,)
    check_tier_invariants(host.shards, host.stack.sharding)


def test_rename_rekeys_partition_rows():
    """Renaming a split directory (or an ancestor of one) re-keys the
    partition rows — durably, on every shard, atomically with the rename
    — and moves not a single entry (placement hashes only names)."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=HashDirSharding())

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/top")
        yield from fs.mkdir("/top/hot")
        for name in NAMES:
            fh = yield from fs.create(f"/top/hot/{name}")
            yield from fs.close(fh)

    host.run(setup())
    owner = host.stack.sharding.shard_of_dir("/top/hot", 2)
    host.run(host.shards[owner].split_dir(
        "/top/hot", [0, 1], host.sim.now))
    spread = [len(host.file_vinos(s)) for s in range(2)]

    def rename_ancestor():
        yield from host.mounts[0].rename("/top", "/moved")

    host.run(rename_ancestor())
    for shard in host.shards:
        rows = {r["path"]: tuple(r["shards"])
                for r in shard.db.table("partitions").all()}
        assert rows == {"/moved/hot": (0, 1)}, (shard.shard_id, rows)
    assert host.stack.sharding.partitions == {"/moved/hot": (0, 1)}
    # No entry moved: the per-shard row counts are unchanged.
    assert [len(host.file_vinos(s)) for s in range(2)] == spread

    def use_it():
        fs = host.mounts[0]
        names = yield from fs.readdir("/moved/hot")
        yield from fs.rename("/moved/hot/f0", "/moved/hot/renamed")
        yield from fs.unlink("/moved/hot/f1")
        return names

    assert host.run(use_it()) == sorted(NAMES)
    check_tier_invariants(host.shards, host.stack.sharding)


def test_readdir_lists_a_dual_resident_entry_exactly_once(split2):
    """The mid-migration readdir regression: an entry resident on two
    shards at once (imported at its destination, not yet purged at its
    source — exactly the verified flip's staging state) must be listed
    once, not twice."""
    host = split2
    host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))
    # Plant a dual residence by hand: copy one shard-0 entry to shard 1
    # with the same (dvino, name) key the split protocol uses.
    victim = next(name for name in NAMES
                  if host.stack.sharding.shard_of_entry("/a", name, 2) == 0)
    dentry = next(d for d in host.shards[0].db.table("dentries").all()
                  if d["name"] == victim)
    inode = next(i for i in host.shards[0].db.table("inodes").all()
                 if i["vino"] == dentry["vino"])
    host.run(host.shards[1].import_dir_children(
        dentry["parent"], [dict(dentry)], [dict(inode)],
        host.shards[0]._stamp()))
    copies = sum(
        1 for shard in host.shards
        for d in shard.db.table("dentries").all() if d["name"] == victim)
    assert copies == 2

    names = host.run(host.mounts[0].readdir("/a"))
    assert names == sorted(NAMES)  # exactly once each

    # The authoritative-owner walk the invariant oracle performs agrees.
    image = check_tier_invariants(host.shards, host.stack.sharding)
    assert sum(1 for path in image if path == f"/a/{victim}") == 1
    # Clean up the planted copy so the tier ends pristine.
    host.run(host.shards[1].purge_dir_children(
        dentry["parent"], [dentry["key"]], [inode["vino"]],
        host.shards[0]._stamp()))
    check_tier_invariants(host.shards, host.stack.sharding)


# ---------------------------------------------------------------------------
# Differential: split directories vs the single-shard oracle
# ---------------------------------------------------------------------------

#: client ops exercised against split directories: creates, renames
#: within / into / out of the split directory (same-owner and
#: cross-owner names), replaces, hard links through partitions, unlinks.
SPLIT_OPS = [
    ("create", "a/n0", b"x"),
    ("create", "a/n1", b"yy"),
    ("rename", ("a/n0", "a/moved"), None),     # within the split dir
    ("rename", ("a/n1", "b/out"), None),       # out of the split dir
    ("create", "b/in", b"zz"),
    ("rename", ("b/in", "a/in"), None),        # into the split dir
    ("link", ("a/in", "b/l"), None),           # link out of a partition
    ("rename", ("a/moved", "a/in"), None),     # replace within
    ("chmod", "a/in", None),
    ("append", "a/in", b"tail"),
    ("unlink", "b/l", None),
    ("mkdir", "a/sub", None),                  # subdir of a split dir
    ("create", "a/sub/leaf", b""),
    ("rename", ("a/sub", "b/sub"), None),      # subtree out of split dir
    ("unlink", "a/in", None),
]


def _split_hosts():
    return [
        ShardedCofs(n_clients=1, shards=2,
                    sharding=SubtreeSharding({"/a": 0, "/b": 1})),
        ShardedCofs(n_clients=1, shards=4, sharding=HashDirSharding()),
    ]


def test_split_dir_semantics_match_single_shard_oracle():
    """Splitting is invisible to every client op: run the same sequence
    against a 1-shard reference (which cannot split) and against split
    tiers — every outcome and the final namespace must match."""
    seed = [("mkdir", "a", None), ("mkdir", "b", None),
            ("create", "a/f", b"1"), ("create", "a/g", b"22")]
    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], seed))
    ref_out += reference.run(apply_ops(reference.mounts[0], SPLIT_OPS))
    ref_state = reference.run(observe(reference.mounts[0]))

    for host in _split_hosts():
        n = len(host.shards)
        outcomes = host.run(apply_ops(host.mounts[0], seed))
        owner = host.stack.sharding.shard_of_dir("/a", n)
        host.run(host.shards[owner].split_dir(
            "/a", list(range(n)), host.sim.now))
        outcomes += host.run(apply_ops(host.mounts[0], SPLIT_OPS))
        label = (n, type(host.stack.sharding).__name__)
        assert outcomes == ref_out, label
        assert host.run(observe(host.mounts[0])) == ref_state, label
        check_tier_invariants(host.shards, host.stack.sharding)


def test_split_merge_churn_matches_single_shard_oracle():
    """Split → ops → merge → ops → re-split → ops: the client-visible
    trace must match the 1-shard oracle across the whole churn."""
    seed = [("mkdir", "a", None), ("mkdir", "b", None)] + [
        ("create", f"a/f{i}", b"p") for i in range(8)]
    phase2 = [("rename", (f"a/f{i}", f"a/g{i}"), None) for i in range(4)]
    phase3 = [("unlink", f"a/g{i}", None) for i in range(4)] + [
        ("create", "a/last", b"")]

    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], seed))
    ref_out += reference.run(apply_ops(reference.mounts[0], phase2))
    ref_out += reference.run(apply_ops(reference.mounts[0], phase3))
    ref_state = reference.run(observe(reference.mounts[0]))

    for host in _split_hosts():
        n = len(host.shards)
        owner = host.stack.sharding.shard_of_dir("/a", n)
        outcomes = host.run(apply_ops(host.mounts[0], seed))
        host.run(host.shards[owner].split_dir(
            "/a", list(range(n)), host.sim.now))
        outcomes += host.run(apply_ops(host.mounts[0], phase2))
        host.run(host.shards[owner].merge_dir("/a", host.sim.now))
        host.run(host.shards[owner].split_dir(
            "/a", list(reversed(range(n))), host.sim.now))
        outcomes += host.run(apply_ops(host.mounts[0], phase3))
        label = (n, type(host.stack.sharding).__name__)
        assert outcomes == ref_out, label
        assert host.run(observe(host.mounts[0])) == ref_state, label
        check_tier_invariants(host.shards, host.stack.sharding)


# ---------------------------------------------------------------------------
# The rebalancer's split policy and the periodic trigger
# ---------------------------------------------------------------------------

def _heat(host, directory, files):
    """Create + stat a population so the routers sample a hotspot."""

    def body():
        fs = host.mounts[0]
        yield from fs.mkdir(directory)
        for index in range(files):
            fh = yield from fs.create(f"{directory}/f{index}")
            yield from fs.close(fh)
        for index in range(files):
            yield from fs.stat(f"{directory}/f{index}")

    host.run(body())


def test_rebalancer_splits_a_one_directory_hotspot():
    """A directory too hot for any single shard is split, not re-homed:
    re-homing would only move the ceiling."""
    host = ShardedCofs(n_clients=1, shards=4,
                       sharding=SubtreeSharding({}, default=0))
    _heat(host, "/hot", 12)
    rebalancer = Rebalancer(
        host.stack.routers, host.shards, split_threshold=1.0)
    executed = host.run(rebalancer.rebalance())
    assert ("/hot", 0, (0, 1, 2, 3)) in executed
    assert host.stack.sharding.partitions["/hot"] == (0, 1, 2, 3)
    # The split directory's load now spreads; no move is planned for it.
    assert rebalancer.plan() == []
    check_tier_invariants(host.shards, host.stack.sharding)


def test_rebalancer_merge_hysteresis():
    """The band between split_threshold and merge_threshold prevents
    flapping: a split directory still warm stays split; only a cold one
    merges back."""
    host = ShardedCofs(n_clients=1, shards=2,
                       sharding=SubtreeSharding({}, default=0))
    _heat(host, "/hot", 8)
    rebalancer = Rebalancer(
        host.stack.routers, host.shards,
        split_threshold=1.0, merge_threshold=0.25)
    host.run(rebalancer.rebalance())
    assert host.stack.sharding.partitions["/hot"] == (0, 1)
    # Warm (decayed once, still well above merge_threshold): no merge.
    assert rebalancer.plan_splits() == []
    host.run(rebalancer.rebalance())
    assert host.stack.sharding.partitions["/hot"] == (0, 1)
    # Fully cooled: the next round merges it back.
    for router in host.stack.routers:
        for _ in range(12):
            router.decay_loads()
    assert rebalancer.plan_splits() == [("/hot", [0])]
    host.run(rebalancer.rebalance())
    assert host.stack.sharding.entry_shards("/hot", 2) == (0,)
    assert host.file_vinos(1) == set()
    check_tier_invariants(host.shards, host.stack.sharding)


def test_run_periodic_drives_continuous_rebalancing():
    """The timer loop: rounds run on their own from simulated time — a
    hotspot splits, and after the load ages out it merges back, with no
    administrative call anywhere."""
    host = ShardedCofs(n_clients=1, shards=2,
                       sharding=SubtreeSharding({}, default=0))
    _heat(host, "/hot", 8)
    rebalancer = Rebalancer(
        host.stack.routers, host.shards,
        split_threshold=1.0, merge_threshold=0.25)
    t0 = host.sim.now
    host.run(rebalancer.run_periodic(host.sim, 50.0, rounds=1))
    assert host.sim.now >= t0 + 50.0
    assert host.stack.sharding.partitions["/hot"] == (0, 1)
    # Idle rounds decay the counters until the merge side of the
    # hysteresis band triggers; the loop needs no external help.
    host.run(rebalancer.run_periodic(host.sim, 50.0, rounds=12))
    assert host.stack.sharding.entry_shards("/hot", 2) == (0,)
    check_tier_invariants(host.shards, host.stack.sharding)
