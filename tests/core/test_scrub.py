"""The underlying-object scrubber: orphan detection and reclamation."""

from repro.core.scrub import run_scrub
from repro.core.sharding import SubtreeSharding
from tests.core.conftest import ShardedCofs


def test_clean_stack_has_no_orphans(cofsx, cfs):
    def setup():
        yield from cfs.mkdir("/d")
        for name in ("a", "b"):
            fh = yield from cfs.create(f"/d/{name}")
            yield from cfs.close(fh)

    cofsx.run(setup())
    report = cofsx.run(run_scrub(cofsx.stack))
    assert report["orphans"] == []
    assert report["reclaimed"] == 0
    assert report["scanned"] == 2
    assert report["live"] == 2


def test_scrub_reclaims_replaced_file_orphan(cofsx, cfs):
    """A rename-replace whose client died before the underlying unlink.

    The metadata commit already dropped the replaced inode; only the
    underlying object lingers.  Driving the rename through the metadata
    driver (not the client) models exactly that half-done cleanup.
    """
    def setup():
        for name in ("f", "g"):
            fh = yield from cfs.create(f"/{name}")
            yield from cfs.close(fh)

    cofsx.run(setup())
    live = cofsx.run(cofsx.stack.driver(0).call_all("live_upaths"))
    upaths = sorted(p for paths in live for p in paths)
    assert len(upaths) == 2

    def metadata_only_rename():
        # The client-side cleanup (underlying unlink of the replaced
        # upath) never happens: the "client" dies here.
        yield from cofsx.stack.driver(0).call(
            "rename", "/f", "/g", cofsx.sim.now)

    cofsx.run(metadata_only_rename())
    report = cofsx.run(run_scrub(cofsx.stack, dry_run=True))
    assert len(report["orphans"]) == 1
    assert report["reclaimed"] == 0  # dry run: nothing touched

    report = cofsx.run(run_scrub(cofsx.stack))
    assert report["reclaimed"] == 1

    # The survivor is untouched and still fully usable.
    def check():
        attr = yield from cfs.stat("/g")
        fh = yield from cfs.open("/g")
        yield from cfs.close(fh)
        return attr.kind

    assert cofsx.run(check()) == "file"
    again = cofsx.run(run_scrub(cofsx.stack))
    assert again["orphans"] == []


def test_scrub_gathers_live_set_across_shards():
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        for path in ("/a/f", "/b/g"):
            fh = yield from fs.create(path)
            yield from fs.close(fh)

    host.run(setup())
    report = host.run(run_scrub(host.stack))
    # Files live on two different shards; neither may read as orphaned.
    assert report["live"] == 2
    assert report["scanned"] == 2
    assert report["orphans"] == []


def test_scrub_ignores_metadata_only_files(cofsx, cfs):
    def setup():
        yield from cfs.mknod("/marker")
        fh = yield from cfs.create("/data")
        yield from cfs.close(fh)

    cofsx.run(setup())
    report = cofsx.run(run_scrub(cofsx.stack))
    # The mknod file has no underlying object: one scanned, one live,
    # nothing stranded either way.
    assert report["scanned"] == 1
    assert report["live"] == 1
    assert report["orphans"] == []


def test_scrub_never_reclaims_object_mid_rebalance_migration():
    """An object whose inode row is mid-copy→import→purge (the rebalance
    migration died between any two of its steps) must never read as an
    orphan: the row exists on the source shard, the destination, or both
    at every boundary, so the tier-wide live-upath gather always covers
    it — in dry-run and in live (reclaiming) mode alike."""
    from repro.core.faults import (
        CrashInjected, CrashSchedule, arm_shards, check_tier_invariants,
        disarm_shards,
    )
    from repro.core.sharding import recover_tier

    def build():
        host = ShardedCofs(
            n_clients=1, shards=2,
            sharding=SubtreeSharding({"/a": 0, "/b": 1}))

        def setup():
            fs = host.mounts[0]
            yield from fs.mkdir("/a")
            for name in ("f", "g"):
                fh = yield from fs.create(f"/a/{name}")
                yield from fs.write(fh, 0, size=8)
                yield from fs.close(fh)

        host.run(setup())
        return host

    def rebalance(host):
        return host.shards[0].rebalance_dir("/a", 1, host.sim.now)

    # Counting pass: how many boundaries the migration crosses.
    host = build()
    schedule = CrashSchedule()
    arm_shards(host.shards, schedule)
    host.run(rebalance(host))
    disarm_shards(host.shards)
    count = schedule.count
    assert count >= 4  # override txn + copy/import/purge at least

    for k in range(count):
        host = build()
        schedule = CrashSchedule(armed=k)
        arm_shards(host.shards, schedule)

        def crashing():
            try:
                yield from rebalance(host)
            except CrashInjected:
                pass
            return True

        host.run(crashing())
        disarm_shards(host.shards)
        # Mid-migration state: scrub in both modes, before any recovery.
        report = host.run(run_scrub(host.stack, dry_run=True))
        assert report["orphans"] == [], (k, report)
        report = host.run(run_scrub(host.stack))
        assert report["reclaimed"] == 0, (k, report)
        # Recovery converges the migration; the files stay whole.
        host.run(recover_tier(host.shards))
        check_tier_invariants(host.shards, host.stack.sharding)
        report = host.run(run_scrub(host.stack))
        assert report["orphans"] == [], (k, report)

        def probe():
            fs = host.mounts[0]
            for name in ("f", "g"):
                attr = yield from fs.stat(f"/a/{name}")
                assert attr.size == 8
                fh = yield from fs.open(f"/a/{name}")
                yield from fs.close(fh)
            return True

        host.run(probe())


def test_scrub_racing_live_rebalance_migration():
    """The scrubber runs *concurrently* with an online re-homing: at no
    interleaving may the mid-flight object be reclaimed."""
    host = ShardedCofs(
        n_clients=1, shards=2, sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        for name in ("f", "g", "h"):
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    reports = []

    def scrubber():
        # several sweeps so at least one overlaps the migration window
        for _sweep in range(3):
            reports.append((yield from run_scrub(host.stack)))
        return True

    def driver():
        scrub = host.sim.process(scrubber())
        move = host.sim.process(
            host.shards[0].rebalance_dir("/a", 1, host.sim.now))
        yield host.sim.all_of([scrub, move])
        return True

    host.run(driver())
    assert all(r["reclaimed"] == 0 and r["orphans"] == [] for r in reports)
    report = host.run(run_scrub(host.stack))
    assert report["live"] == 3 and report["orphans"] == []
