"""The underlying-object scrubber: orphan detection and reclamation."""

from repro.core.scrub import run_scrub
from repro.core.sharding import SubtreeSharding
from tests.core.conftest import ShardedCofs


def test_clean_stack_has_no_orphans(cofsx, cfs):
    def setup():
        yield from cfs.mkdir("/d")
        for name in ("a", "b"):
            fh = yield from cfs.create(f"/d/{name}")
            yield from cfs.close(fh)

    cofsx.run(setup())
    report = cofsx.run(run_scrub(cofsx.stack))
    assert report["orphans"] == []
    assert report["reclaimed"] == 0
    assert report["scanned"] == 2
    assert report["live"] == 2


def test_scrub_reclaims_replaced_file_orphan(cofsx, cfs):
    """A rename-replace whose client died before the underlying unlink.

    The metadata commit already dropped the replaced inode; only the
    underlying object lingers.  Driving the rename through the metadata
    driver (not the client) models exactly that half-done cleanup.
    """
    def setup():
        for name in ("f", "g"):
            fh = yield from cfs.create(f"/{name}")
            yield from cfs.close(fh)

    cofsx.run(setup())
    live = cofsx.run(cofsx.stack.driver(0).call_all("live_upaths"))
    upaths = sorted(p for paths in live for p in paths)
    assert len(upaths) == 2

    def metadata_only_rename():
        # The client-side cleanup (underlying unlink of the replaced
        # upath) never happens: the "client" dies here.
        yield from cofsx.stack.driver(0).call(
            "rename", "/f", "/g", cofsx.sim.now)

    cofsx.run(metadata_only_rename())
    report = cofsx.run(run_scrub(cofsx.stack, dry_run=True))
    assert len(report["orphans"]) == 1
    assert report["reclaimed"] == 0  # dry run: nothing touched

    report = cofsx.run(run_scrub(cofsx.stack))
    assert report["reclaimed"] == 1

    # The survivor is untouched and still fully usable.
    def check():
        attr = yield from cfs.stat("/g")
        fh = yield from cfs.open("/g")
        yield from cfs.close(fh)
        return attr.kind

    assert cofsx.run(check()) == "file"
    again = cofsx.run(run_scrub(cofsx.stack))
    assert again["orphans"] == []


def test_scrub_gathers_live_set_across_shards():
    host = ShardedCofs(sharding=SubtreeSharding({"/a": 0, "/b": 1}))

    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        for path in ("/a/f", "/b/g"):
            fh = yield from fs.create(path)
            yield from fs.close(fh)

    host.run(setup())
    report = host.run(run_scrub(host.stack))
    # Files live on two different shards; neither may read as orphaned.
    assert report["live"] == 2
    assert report["scanned"] == 2
    assert report["orphans"] == []


def test_scrub_ignores_metadata_only_files(cofsx, cfs):
    def setup():
        yield from cfs.mknod("/marker")
        fh = yield from cfs.create("/data")
        yield from cfs.close(fh)

    cofsx.run(setup())
    report = cofsx.run(run_scrub(cofsx.stack))
    # The mknod file has no underlying object: one scanned, one live,
    # nothing stranded either way.
    assert report["scanned"] == 1
    assert report["live"] == 1
    assert report["orphans"] == []
