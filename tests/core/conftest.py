"""Shared fixtures: mounted COFS stacks (single-MDS and sharded)."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack
from repro.pfs.types import FILE


class MountedCofs:
    """A small COFS-over-PFS testbed."""

    def __init__(self, n_clients=2, cofs_config=None, policy=None):
        self.testbed = build_flat_testbed(n_clients=n_clients, with_mds=True)
        self.sim = self.testbed.sim
        self.stack = CofsStack(
            self.testbed, cofs_config=cofs_config, policy=policy
        )
        self.mounts = [self.stack.mount(i) for i in range(n_clients)]
        self.mds = self.stack.mds
        self.pfs = self.stack.pfs

    def run(self, coro):
        return self.sim.run_process(coro)

    def run_all(self, coros):
        procs = [self.sim.process(c) for c in coros]

        def waiter():
            values = yield self.sim.all_of(procs)
            return values

        return self.sim.run_process(waiter())


class ShardedCofs:
    """A COFS testbed with an N-shard metadata tier.

    The reusable tier-wide crash-drill host: `test_sharding` uses it for
    protocol tests, `test_crash_points` for exhaustive fault injection,
    and `test_differential` for cross-shard-count oracles.
    """

    def __init__(self, n_clients=2, shards=2, sharding=None,
                 cofs_config=None, replicas=1):
        self.testbed = build_flat_testbed(
            n_clients=n_clients, with_mds=shards * replicas
        )
        self.sim = self.testbed.sim
        self.stack = CofsStack(
            self.testbed, sharding=sharding, cofs_config=cofs_config,
            shards=shards, replicas=replicas,
        )
        self.mounts = [self.stack.mount(i) for i in range(n_clients)]
        self.shards = self.stack.shards
        #: replica groups (None on unreplicated tiers).
        self.groups = self.stack.groups

    @property
    def primaries(self):
        """Each group's current primary (== ``shards`` when replicas=1)."""
        return self.stack.primaries

    def run(self, coro):
        return self.sim.run_process(coro)

    def run_all(self, coros):
        procs = [self.sim.process(c) for c in coros]

        def waiter():
            values = yield self.sim.all_of(procs)
            return values

        return self.sim.run_process(waiter())

    def inode_vinos(self, shard):
        return {row["vino"] for row in
                self.shards[shard].db.table("inodes").all()}

    def file_vinos(self, shard):
        return {row["vino"] for row in
                self.shards[shard].db.table("inodes").all()
                if row["kind"] == FILE}


@pytest.fixture
def cofsx():
    return MountedCofs(n_clients=2)


@pytest.fixture
def cfs(cofsx):
    return cofsx.mounts[0]


@pytest.fixture
def cfs2(cofsx):
    return cofsx.mounts[1]
