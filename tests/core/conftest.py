"""Shared fixtures: a mounted COFS stack."""

import pytest

from repro.bench import build_flat_testbed
from repro.bench.stack import CofsStack


class MountedCofs:
    """A small COFS-over-PFS testbed."""

    def __init__(self, n_clients=2, cofs_config=None, policy=None):
        self.testbed = build_flat_testbed(n_clients=n_clients, with_mds=True)
        self.sim = self.testbed.sim
        self.stack = CofsStack(
            self.testbed, cofs_config=cofs_config, policy=policy
        )
        self.mounts = [self.stack.mount(i) for i in range(n_clients)]
        self.mds = self.stack.mds
        self.pfs = self.stack.pfs

    def run(self, coro):
        return self.sim.run_process(coro)

    def run_all(self, coros):
        procs = [self.sim.process(c) for c in coros]

        def waiter():
            values = yield self.sim.all_of(procs)
            return values

        return self.sim.run_process(waiter())


@pytest.fixture
def cofsx():
    return MountedCofs(n_clients=2)


@pytest.fixture
def cfs(cofsx):
    return cofsx.mounts[0]


@pytest.fixture
def cfs2(cofsx):
    return cofsx.mounts[1]
