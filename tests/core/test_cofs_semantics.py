"""COFS end-to-end semantics through the FUSE mount."""

import pytest

from repro.pfs import FsError, OpenFlags


def test_create_stat(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/d")
        fh = yield from cfs.create("/d/f", mode=0o640)
        yield from cfs.close(fh)
        return (yield from cfs.stat("/d/f"))

    attr = cofsx.run(main())
    assert attr.is_file
    assert attr.mode == 0o640
    assert attr.nlink == 1


def test_create_duplicate_eexist(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.close(fh)
        yield from cfs.create("/f")

    with pytest.raises(FsError) as err:
        cofsx.run(main())
    assert err.value.code == "EEXIST"


def test_write_read_roundtrip_across_nodes(cofsx, cfs, cfs2):
    def main():
        fh = yield from cfs.create("/data.bin")
        yield from cfs.write(fh, 0, data=b"cofs payload")
        yield from cfs.close(fh)
        fh = yield from cfs2.open("/data.bin")
        data = yield from cfs2.read(fh, 0, 12, want_data=True)
        yield from cfs2.close(fh)
        return data

    assert cofsx.run(main()) == b"cofs payload"


def test_size_synced_after_writer_close(cofsx, cfs, cfs2):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.write(fh, 0, size=1234)
        yield from cfs.close(fh)
        return (yield from cfs2.stat("/f")).size

    assert cofsx.run(main()) == 1234


def test_stat_of_delegated_file_sees_live_size(cofsx, cfs, cfs2):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.close(fh)
        fh = yield from cfs.open("/f", OpenFlags.WRONLY)
        yield from cfs.write(fh, 0, size=4096)
        # file still open for writing: stat must go through to the
        # underlying file (delegation) and see the new size
        size_during = (yield from cfs2.stat("/f")).size
        yield from cfs.close(fh)
        size_after = (yield from cfs2.stat("/f")).size
        return (size_during, size_after)

    assert cofsx.run(main()) == (4096, 4096)


def test_readdir_shows_virtual_names(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/work")
        for name in ("c", "a", "b"):
            fh = yield from cfs.create(f"/work/{name}")
            yield from cfs.close(fh)
        return (yield from cfs.readdir("/work"))

    assert cofsx.run(main()) == ["a", "b", "c"]


def test_virtual_dirs_have_no_underlying_counterpart(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/onlyvirtual")
        names = yield from cfs.readdir("/")
        under = cofsx.stack._underlying[0]
        under_names = yield from under.readdir("/")
        return (names, under_names)

    names, under_names = cofsx.run(main())
    assert "onlyvirtual" in names
    assert "onlyvirtual" not in under_names


def test_files_land_in_hashed_buckets(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/shared")
        for i in range(5):
            fh = yield from cfs.create(f"/shared/f{i}")
            yield from cfs.close(fh)

    cofsx.run(main())
    counts = cofsx.mds.bucket_counts()
    assert sum(counts.values()) == 5
    for bucket in counts:
        assert bucket.startswith("/.cofs/")


def test_rename_does_not_touch_underlying(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/a")
        yield from cfs.write(fh, 0, data=b"xyz")
        yield from cfs.close(fh)
        view = yield from cfs.backend.driver.call("getattr", "/a")
        upath_before = view["upath"]
        yield from cfs.rename("/a", "/b")
        view = yield from cfs.backend.driver.call("getattr", "/b")
        fh = yield from cfs.open("/b")
        data = yield from cfs.read(fh, 0, 3, want_data=True)
        yield from cfs.close(fh)
        return (upath_before, view["upath"], data)

    before, after, data = cofsx.run(main())
    assert before == after
    assert data == b"xyz"


def test_hard_link_shares_underlying_file(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/a")
        yield from cfs.write(fh, 0, data=b"linked")
        yield from cfs.close(fh)
        yield from cfs.link("/a", "/b")
        a = yield from cfs.stat("/a")
        b = yield from cfs.stat("/b")
        fh = yield from cfs.open("/b")
        data = yield from cfs.read(fh, 0, 6, want_data=True)
        yield from cfs.close(fh)
        return (a.ino, b.ino, a.nlink, data)

    ino_a, ino_b, nlink, data = cofsx.run(main())
    assert ino_a == ino_b
    assert nlink == 2
    assert data == b"linked"


def test_unlink_last_link_removes_underlying(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/a")
        yield from cfs.close(fh)
        view = yield from cfs.backend.driver.call("getattr", "/a")
        upath = view["upath"]
        yield from cfs.link("/a", "/b")
        yield from cfs.unlink("/a")
        under = cofsx.stack._underlying[0]
        mid = yield from under.stat(upath)  # still exists: /b remains
        yield from cfs.unlink("/b")
        try:
            yield from under.stat(upath)
        except FsError as exc:
            return (mid.is_file, exc.code)
        return (mid.is_file, None)

    existed, code = cofsx.run(main())
    assert existed is True
    assert code == "ENOENT"


def test_symlink_resolution_via_mds(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/real")
        fh = yield from cfs.create("/real/f")
        yield from cfs.write(fh, 0, data=b"hi")
        yield from cfs.close(fh)
        yield from cfs.symlink("/real", "/alias")
        attr = yield from cfs.stat("/alias/f")
        target = yield from cfs.readlink("/alias")
        return (attr.is_file, target)

    assert cofsx.run(main()) == (True, "/real")


def test_utime_and_stat(cofsx, cfs, cfs2):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.close(fh)
        yield from cfs2.utime("/f", atime=11.0, mtime=22.0)
        attr = yield from cfs.stat("/f")
        return (attr.atime, attr.mtime)

    assert cofsx.run(main()) == (11.0, 22.0)


def test_rmdir_semantics(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/d")
        fh = yield from cfs.create("/d/f")
        yield from cfs.close(fh)
        try:
            yield from cfs.rmdir("/d")
        except FsError as exc:
            code = exc.code
        yield from cfs.unlink("/d/f")
        yield from cfs.rmdir("/d")
        return (code, (yield from cfs.readdir("/")))

    code, names = cofsx.run(main())
    assert code == "ENOTEMPTY"
    assert "d" not in names


def test_open_creat_through_cofs(cofsx, cfs):
    def main():
        fh = yield from cfs.open("/new", OpenFlags.WRONLY | OpenFlags.CREAT)
        yield from cfs.write(fh, 0, size=10)
        yield from cfs.close(fh)
        return (yield from cfs.stat("/new")).size

    assert cofsx.run(main()) == 10


def test_truncate_through_cofs(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/f")
        yield from cfs.write(fh, 0, data=b"0123456789")
        yield from cfs.close(fh)
        yield from cfs.truncate("/f", 3)
        attr = yield from cfs.stat("/f")
        fh = yield from cfs.open("/f")
        data = yield from cfs.read(fh, 0, 10, want_data=True)
        yield from cfs.close(fh)
        return (attr.size, data)

    size, data = cofsx.run(main())
    assert size == 3
    assert data == b"012"


def test_bucket_cap_spills_to_next_sublevel(cofsx):
    from repro.core.config import CofsConfig
    from tests.core.conftest import MountedCofs

    small = MountedCofs(
        n_clients=1,
        cofs_config=CofsConfig(max_entries_per_dir=8, rand_subdirs=2),
    )
    cfs = small.mounts[0]

    def main():
        yield from cfs.mkdir("/d")
        for i in range(40):
            fh = yield from cfs.create(f"/d/f{i}")
            yield from cfs.close(fh)

    small.run(main())
    counts = small.mds.bucket_counts()
    assert sum(counts.values()) == 40
    assert all(count <= 8 for count in counts.values())
    assert len([c for c in counts.values() if c > 0]) >= 5
