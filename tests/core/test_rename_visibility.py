"""Rename visibility: the seq-guarded skeleton flip, pinned edge by edge.

The crash drills in ``test_crash_points.py`` prove the two-phase flip
survives failures; these tests pin the *protocol rules* directly —
newest-seq-wins retires (a stale replay must never un-rename), refused
stale stages (a redo must never resurrect a dead alias), back-to-back
and concurrent renames of the same object, and the split-directory
owner clock that keeps a partitioned directory's times on one ordered
history instead of a per-shard free-for-all.
"""

import pytest

from repro.core.faults import check_tier_invariants
from repro.core.shard.routing import entry_slot
from repro.core.sharding import HashDirSharding, SubtreeSharding
from repro.pfs.errors import FsError
from repro.pfs.types import FILE
from tests.core.conftest import ShardedCofs


def _codes(host, paths):
    """stat every path through the mount: "ok" or the errno."""
    fs = host.mounts[0]

    def body():
        out = {}
        for path in paths:
            try:
                yield from fs.stat(path)
                out[path] = "ok"
            except FsError as exc:
                out[path] = exc.code
        return out

    return host.run(body())


def _inode(host, shard, vino):
    rows = host.shards[shard].db.table("inodes").match(vino=vino)
    assert len(rows) == 1, f"vino {vino} not unique on shard {shard}"
    return rows[0]


# ---------------------------------------------------------------------------
# back-to-back renames: no stale alias may outlive its flip
# ---------------------------------------------------------------------------

def test_back_to_back_renames_leave_no_stale_alias():
    """A rename chain retires every intermediate name and alias.

    The regression this pins: an un-guarded retire racing a later flip
    of the same directory could leak the earlier flip's staged alias —
    a ghost dentry serving a dead name forever.  The tier oracle now
    asserts no ``staged`` dentry survives a quiesced tier.
    """
    host = ShardedCofs(n_clients=1, shards=3, sharding=HashDirSharding())
    fs = host.mounts[0]

    def chain():
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)
        yield from fs.rename("/a", "/b")
        yield from fs.rename("/b", "/c")
        yield from fs.rename("/c", "/d")

    host.run(chain())
    codes = _codes(host, ["/a", "/b", "/c", "/d", "/d/f"])
    assert codes == {"/a": "ENOENT", "/b": "ENOENT", "/c": "ENOENT",
                     "/d": "ok", "/d/f": "ok"}
    check_tier_invariants(host.shards, host.stack.sharding)


def test_rename_cycle_returns_to_the_original_name():
    """a -> b -> a: the second flip's seq outranks the first's retire."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=HashDirSharding())
    fs = host.mounts[0]

    def cycle():
        yield from fs.mkdir("/a")
        fh = yield from fs.create("/a/f")
        yield from fs.close(fh)
        yield from fs.rename("/a", "/b")
        yield from fs.rename("/b", "/a")

    host.run(cycle())
    codes = _codes(host, ["/a", "/a/f", "/b"])
    assert codes == {"/a": "ok", "/a/f": "ok", "/b": "ENOENT"}
    check_tier_invariants(host.shards, host.stack.sharding)


def test_concurrent_renames_of_one_source_admit_exactly_one_winner():
    """Two clients rename the same directory; one wins, one ENOENTs."""
    host = ShardedCofs(n_clients=2, shards=2, sharding=HashDirSharding())
    host.run(host.mounts[0].mkdir("/d"))
    outcomes = {}

    def racer(idx, new):
        fs = host.mounts[idx]

        def body():
            try:
                yield from fs.rename("/d", new)
                outcomes[new] = "ok"
            except FsError as exc:
                outcomes[new] = exc.code

        return body()

    host.run_all([racer(0, "/x"), racer(1, "/y")])
    assert sorted(outcomes.values()) == ["ENOENT", "ok"]
    winner = next(new for new, code in outcomes.items() if code == "ok")
    loser = next(new for new, code in outcomes.items() if code != "ok")
    codes = _codes(host, ["/d", winner, loser])
    assert codes == {"/d": "ENOENT", winner: "ok", loser: "ENOENT"}
    check_tier_invariants(host.shards, host.stack.sharding)


# ---------------------------------------------------------------------------
# stale replays: newest-seq-wins on both phases
# ---------------------------------------------------------------------------

def test_stale_stage_replay_is_refused():
    """A stage at or below the retire high-water mark lands nothing."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=HashDirSharding())
    fs = host.mounts[0]

    def setup():
        yield from fs.mkdir("/a")
        vino = (yield from fs.stat("/a")).ino
        yield from fs.rename("/a", "/b")
        return vino

    vino = host.run(setup())
    rseq = _inode(host, 1, vino).get("rseq", 0)
    assert rseq > 0, "the flip must have advanced the retire high-water mark"

    # A redo replaying the committed flip's stage (same seq) — or any
    # older one — must refuse: resurrected aliases are forever.
    for seq in (rseq, rseq - 1):
        landed = host.run(
            host.shards[1].mirror_rename_stage("/b", "/zombie", seq, vino))
        assert landed is False
    codes = _codes(host, ["/a", "/b", "/zombie"])
    assert codes == {"/a": "ENOENT", "/b": "ok", "/zombie": "ENOENT"}
    check_tier_invariants(host.shards, host.stack.sharding)


def test_stale_retire_replay_does_not_unrename():
    """A late retire of an earlier rename cannot undo a newer one.

    rename a->b (seq1) then b->c (seq2 > seq1); a crashed coordinator's
    redo re-broadcasts the *first* retire after the second committed.
    The replica's rseq high-water mark (= seq2) outranks seq1: the
    replay is a no-op, /c survives, /b stays dead.
    """
    host = ShardedCofs(n_clients=1, shards=2, sharding=HashDirSharding())
    fs = host.mounts[0]

    def setup():
        yield from fs.mkdir("/a")
        vino = (yield from fs.stat("/a")).ino
        yield from fs.rename("/a", "/b")
        return vino

    vino = host.run(setup())
    seq1 = _inode(host, 1, vino).get("rseq", 0)
    assert seq1 > 0
    host.run(fs.rename("/b", "/c"))
    seq2 = _inode(host, 1, vino).get("rseq", 0)
    assert seq2 > seq1

    host.run(host.shards[1].mirror_rename(
        "/a", "/b", host.sim.now, seq1, vino))
    codes = _codes(host, ["/a", "/b", "/c"])
    assert codes == {"/a": "ENOENT", "/b": "ENOENT", "/c": "ok"}
    assert _inode(host, 1, vino).get("rseq", 0) == seq2
    check_tier_invariants(host.shards, host.stack.sharding)


# ---------------------------------------------------------------------------
# split-directory times: one ordered clock at the contents owner
# ---------------------------------------------------------------------------

def test_split_dir_times_follow_the_owner_clock():
    """A split directory's mtime is the owner's ordered history.

    Entry mutations land on whichever partition shard the name hashes
    to; each used to bump only its local replica of the directory
    inode, invisible to stat (which the owner serves).  The fix routes
    every bump through the owner's single clock — so (1) a mutation on
    a *non-owner* partition shard is visible in stat, and (2) a later
    mutation with a smaller timestamp *wins* (arrival order at the
    owner), where a max-merge of per-shard copies would keep the
    larger, disagreeing with the ordered history.
    """
    host = ShardedCofs(n_clients=1, shards=2,
                       sharding=SubtreeSharding({"/a": 0, "/b": 1}))
    fs = host.mounts[0]

    def setup():
        yield from fs.mkdir("/a")
        for name in ("seed0", "seed1"):
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())
    assert host.run(host.shards[0].split_dir("/a", [0, 1], host.sim.now))

    names = [f"n{i}" for i in range(32)]
    remote = next(n for n in names if entry_slot(n, 2) == 1)
    local = next(n for n in names if entry_slot(n, 2) == 0)

    # (1) create on the non-owner partition shard, t=100: stat sees it.
    host.run(host.shards[1].create_node(
        f"/a/{remote}", FILE, 0o644, 0, 0, "n0", 1, 100))
    attr = host.run(fs.stat("/a"))
    assert (attr.mtime, attr.ctime) == (100, 100)

    # (2) owner-side create stamped *earlier*, t=60: last-writer-in-
    # arrival-order wins.  A max-merge would still report 100.
    host.run(host.shards[0].create_node(
        f"/a/{local}", FILE, 0o644, 0, 0, "n0", 1, 60))
    attr = host.run(fs.stat("/a"))
    assert (attr.mtime, attr.ctime) == (60, 60)

    # (3) unlink rides the same owner clock.
    host.run(host.shards[1].unlink(f"/a/{remote}", 200))
    attr = host.run(fs.stat("/a"))
    assert (attr.mtime, attr.ctime) == (200, 200)

    check_tier_invariants(host.shards, host.stack.sharding)
