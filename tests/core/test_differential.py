"""Differential testing: COFS must behave like the bare FS, observably.

The paper's claim of transparency ("providing the user with standard
semantics and a classical directory layout", §V) is tested literally: random
sequences of POSIX operations are applied both to a bare parallel FS and to
COFS-over-PFS; the observable outcomes — success/errno of every call, the
final tree listing, attributes and file contents — must match exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import HashDirSharding, SubtreeSharding
from repro.pfs import FsError, OpenFlags
from tests.core.conftest import MountedCofs, ShardedCofs
from tests.pfs.conftest import MountedPfs

NAMES = st.sampled_from(["a", "b", "c", "d1", "d2"])
PAYLOADS = st.binary(min_size=0, max_size=24)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), NAMES, st.none()),
        st.tuples(st.just("create"), NAMES, PAYLOADS),
        st.tuples(st.just("unlink"), NAMES, st.none()),
        st.tuples(st.just("rmdir"), NAMES, st.none()),
        st.tuples(st.just("rename"), st.tuples(NAMES, NAMES), st.none()),
        st.tuples(st.just("link"), st.tuples(NAMES, NAMES), st.none()),
        st.tuples(st.just("symlink"), st.tuples(NAMES, NAMES), st.none()),
        st.tuples(st.just("utime"), NAMES, st.none()),
        st.tuples(st.just("chmod"), NAMES, st.none()),
        st.tuples(st.just("truncate"), NAMES, st.just(None)),
        st.tuples(st.just("append"), NAMES, PAYLOADS),
    ),
    max_size=14,
)


def apply_ops(fs, ops):
    """Coroutine: run ops, returning the list of per-op outcomes."""
    outcomes = []
    for op, arg, payload in ops:
        try:
            if op == "mkdir":
                yield from fs.mkdir(f"/{arg}")
                outcomes.append(("ok", None))
            elif op == "create":
                fh = yield from fs.create(f"/{arg}")
                if payload:
                    yield from fs.write(fh, 0, data=payload)
                yield from fs.close(fh)
                outcomes.append(("ok", None))
            elif op == "unlink":
                yield from fs.unlink(f"/{arg}")
                outcomes.append(("ok", None))
            elif op == "rmdir":
                yield from fs.rmdir(f"/{arg}")
                outcomes.append(("ok", None))
            elif op == "rename":
                yield from fs.rename(f"/{arg[0]}", f"/{arg[1]}")
                outcomes.append(("ok", None))
            elif op == "link":
                yield from fs.link(f"/{arg[0]}", f"/{arg[1]}")
                outcomes.append(("ok", None))
            elif op == "symlink":
                yield from fs.symlink(f"/{arg[0]}", f"/{arg[1]}")
                outcomes.append(("ok", None))
            elif op == "utime":
                yield from fs.utime(f"/{arg}", atime=1.5, mtime=2.5)
                outcomes.append(("ok", None))
            elif op == "chmod":
                yield from fs.chmod(f"/{arg}", 0o640)
                outcomes.append(("ok", None))
            elif op == "truncate":
                yield from fs.truncate(f"/{arg}", 3)
                outcomes.append(("ok", None))
            elif op == "append":
                fh = yield from fs.open(f"/{arg}", OpenFlags.WRONLY)
                size = (yield from fs.stat(f"/{arg}")).size
                if payload:
                    yield from fs.write(fh, size, data=payload)
                yield from fs.close(fh)
                outcomes.append(("ok", None))
        except FsError as exc:
            outcomes.append(("err", exc.code))
    return outcomes


def observe(fs):
    """Coroutine: capture the observable state of the namespace."""
    state = {}

    def walk(path):
        names = yield from fs.readdir(path)
        for name in names:
            child = f"{path.rstrip('/')}/{name}"
            try:
                attr = yield from fs.stat(child)
            except FsError as exc:
                state[child] = ("stat-error", exc.code)
                continue
            record = {
                "kind": attr.kind,
                "size": attr.size,
                "nlink": attr.nlink,
                "mode": attr.mode,
            }
            if attr.is_file and attr.size:
                fh = yield from fs.open(child)
                record["data"] = yield from fs.read(
                    fh, 0, attr.size, want_data=True
                )
                yield from fs.close(fh)
            state[child] = record
            if attr.is_dir:
                yield from walk(child)

    yield from walk("/")
    return state


@settings(max_examples=40, deadline=None)
@given(OPERATIONS)
def test_cofs_matches_bare_pfs(ops):
    bare = MountedPfs(1)
    cofs = MountedCofs(1)

    bare_fs = bare.clients[0]
    cofs_fs = cofs.mounts[0]

    bare_outcomes = bare.run(apply_ops(bare_fs, ops))
    cofs_outcomes = cofs.run(apply_ops(cofs_fs, ops))
    assert cofs_outcomes == bare_outcomes

    bare_state = bare.run(observe(bare_fs))
    cofs_state = cofs.run(observe(cofs_fs))
    # Hide the root-level ".cofs" layout directory from the bare view.
    bare_state = {
        path: record for path, record in bare_state.items()
        if not path.startswith("/.cofs")
    }
    assert cofs_state == bare_state


def test_differential_smoke_two_nodes():
    """A fixed two-node interleaving matching on both systems."""
    ops_node0 = [
        ("mkdir", "work", None),
        ("create", "work", b""),  # EEXIST as a directory
        ("symlink", ("work", "w"), None),
    ]
    ops_node1 = [
        ("create", "data", b"abc"),
        ("utime", "data", None),
        ("rename", ("data", "archive"), None),
    ]

    bare = MountedPfs(2)
    cofs = MountedCofs(2)

    def run_pair(host, fs0, fs1):
        out = {}

        def first():
            out["n0"] = yield from apply_ops(fs0, ops_node0)

        def second():
            out["n1"] = yield from apply_ops(fs1, ops_node1)

        host.run_all([first(), second()])
        out["state"] = host.run(observe(fs0))
        return out

    bare_out = run_pair(bare, bare.clients[0], bare.clients[1])
    cofs_out = run_pair(cofs, cofs.mounts[0], cofs.mounts[1])
    assert bare_out["n0"] == cofs_out["n0"]
    assert bare_out["n1"] == cofs_out["n1"]
    bare_state = {
        p: r for p, r in bare_out["state"].items()
        if not p.startswith("/.cofs")
    }
    assert bare_state == cofs_out["state"]


# ---------------------------------------------------------------------------
# Sharded tier vs single shard: partitioning must be invisible
# ---------------------------------------------------------------------------

# Nested names spread directories over shards under both policies.  The
# strategy deliberately omits ``symlink``: hard links to symlinks are a
# documented sharded-tier divergence (EINVAL there, allowed on a single
# MDS); symlink transparency is pinned by the fixed scenario below.
SHARD_NAMES = st.sampled_from(["a", "b", "d1", "d2", "d1/x", "d2/y"])

SHARD_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), SHARD_NAMES, st.none()),
        st.tuples(st.just("create"), SHARD_NAMES, PAYLOADS),
        st.tuples(st.just("unlink"), SHARD_NAMES, st.none()),
        st.tuples(st.just("rmdir"), SHARD_NAMES, st.none()),
        st.tuples(st.just("rename"),
                  st.tuples(SHARD_NAMES, SHARD_NAMES), st.none()),
        st.tuples(st.just("link"),
                  st.tuples(SHARD_NAMES, SHARD_NAMES), st.none()),
        st.tuples(st.just("utime"), SHARD_NAMES, st.none()),
        st.tuples(st.just("chmod"), SHARD_NAMES, st.none()),
        st.tuples(st.just("append"), SHARD_NAMES, PAYLOADS),
    ),
    max_size=12,
)


def _sharded_stacks():
    """The comparison grid: 2- and 4-shard tiers under both policies,
    plus a 4-shard tier with overlapped mirror broadcasts."""
    from repro.core.config import CofsConfig

    return [
        ShardedCofs(n_clients=1, shards=2, sharding=HashDirSharding()),
        ShardedCofs(n_clients=1, shards=4, sharding=HashDirSharding()),
        ShardedCofs(n_clients=1, shards=2,
                    sharding=SubtreeSharding({"/d1": 1, "/d2": 0})),
        ShardedCofs(n_clients=1, shards=4,
                    sharding=SubtreeSharding({"/d1": 1, "/d2": 3})),
        ShardedCofs(n_clients=1, shards=4, sharding=HashDirSharding(),
                    cofs_config=CofsConfig(parallel_broadcasts=True)),
    ]


@settings(max_examples=10, deadline=None)
@given(SHARD_OPERATIONS)
def test_sharded_tiers_match_single_shard(ops):
    reference = MountedCofs(1)
    ref_outcomes = reference.run(apply_ops(reference.mounts[0], ops))
    ref_state = reference.run(observe(reference.mounts[0]))

    for host in _sharded_stacks():
        outcomes = host.run(apply_ops(host.mounts[0], ops))
        label = (host.stack.n_shards, type(host.stack.sharding).__name__)
        assert outcomes == ref_outcomes, label
        state = host.run(observe(host.mounts[0]))
        assert state == ref_state, label


@settings(max_examples=10, deadline=None)
@given(SHARD_OPERATIONS, SHARD_OPERATIONS)
def test_sharded_tiers_match_single_shard_with_rebalancing(before, after):
    """Online re-partitioning must be invisible: run ops, re-home every
    hot directory the load counters saw, run more ops — outcomes and the
    final namespace must still match the single-shard reference."""
    from repro.core.shard import Rebalancer

    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], before))
    ref_out += reference.run(apply_ops(reference.mounts[0], after))
    ref_state = reference.run(observe(reference.mounts[0]))

    for host in _sharded_stacks():
        outcomes = host.run(apply_ops(host.mounts[0], before))
        # threshold=0 forces a migration of every sampled directory that
        # has anywhere cooler to go — the most adversarial re-homing.
        rebalancer = Rebalancer(
            host.stack.routers, host.shards, threshold=0.0)
        host.run(rebalancer.rebalance())
        outcomes += host.run(apply_ops(host.mounts[0], after))
        label = (host.stack.n_shards, type(host.stack.sharding).__name__)
        assert outcomes == ref_out, label
        assert host.run(observe(host.mounts[0])) == ref_state, label


@settings(max_examples=8, deadline=None)
@given(SHARD_OPERATIONS, SHARD_OPERATIONS)
def test_live_single_shard_recovery_matches_single_shard(before, after):
    """Mid-sequence crash+recover of one shard against a live tier.

    Shard 1 crashes and recovers *while the second half of the sequence
    keeps flowing* (requests that land during the rebuild wait at the
    admission gate; the epoch fence keeps the tier-wide completion pass
    from touching anything a live coordinator owns).  Outcomes and the
    final namespace must still match the 1-shard oracle, which never
    crashes at all — recovery must be observably free.
    """
    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], before))
    ref_out += reference.run(apply_ops(reference.mounts[0], after))
    ref_state = reference.run(observe(reference.mounts[0]))

    for shards in (2, 4):
        host = ShardedCofs(
            n_clients=1, shards=shards, sharding=HashDirSharding())
        outcomes = host.run(apply_ops(host.mounts[0], before))
        tail = {}

        def driver(host=host, tail=tail):
            # the victim's recovery runs beside the op stream, not
            # between two quiesced halves.
            recovery = host.sim.process(host.shards[1].recover())
            tail["out"] = yield from apply_ops(host.mounts[0], after)
            yield recovery
            return True

        host.run(driver())
        outcomes += tail["out"]
        label = (shards, "live-recovery")
        assert outcomes == ref_out, label
        assert host.run(observe(host.mounts[0])) == ref_state, label


@settings(max_examples=8, deadline=None)
@given(SHARD_OPERATIONS, SHARD_OPERATIONS)
def test_kill_primary_mid_sequence_matches_crash_free_reference(before,
                                                                after):
    """The failover differential oracle: a replicated tier that loses a
    primary mid-sequence must remain observably identical to a reference
    that never crashes at all.  The second half of the sequence starts
    against the dead primary — the router's retry drives the fenced
    promotion and re-targets transparently, so every outcome and the
    final namespace must match the crash-free single-shard oracle."""
    from repro.core.faults import (
        check_group_invariants, check_tier_invariants, kill_primary,
        revive_member,
    )

    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], before))
    ref_out += reference.run(apply_ops(reference.mounts[0], after))
    ref_state = reference.run(observe(reference.mounts[0]))

    host = ShardedCofs(
        n_clients=1, shards=2, replicas=2, sharding=HashDirSharding())
    outcomes = host.run(apply_ops(host.mounts[0], before))
    dead = kill_primary(host.groups[0])
    outcomes += host.run(apply_ops(host.mounts[0], after))
    assert outcomes == ref_out
    assert host.run(observe(host.mounts[0])) == ref_state

    # The dead member rejoins by snapshot and the whole group converges.
    group = host.groups[0]
    if group.failovers:
        revive_member(dead)
        host.run(group.rejoin(dead))
    else:
        # No op of the second half touched group 0: the kill was never
        # noticed.  Revive the member as if the glitch healed.
        revive_member(dead)
    check_group_invariants(host.groups)
    check_tier_invariants(host.primaries, host.stack.sharding)


def test_sharded_symlink_scenario_matches_single_shard():
    """Symlink transparency across shard counts (fixed scenario: no hard
    links to symlinks, the one documented divergence)."""
    ops = [
        ("mkdir", "d1", None),
        ("symlink", ("d1", "ln"), None),
        ("create", "d1/x", b"abc"),
        ("rename", ("d1/x", "d2"), None),
        ("symlink", ("d2", "d1/x"), None),
        ("unlink", "ln", None),
        ("rmdir", "d1", None),  # ENOTEMPTY: d1/x is a symlink now
    ]
    reference = MountedCofs(1)
    ref_outcomes = reference.run(apply_ops(reference.mounts[0], ops))
    ref_state = reference.run(observe(reference.mounts[0]))
    for host in _sharded_stacks():
        outcomes = host.run(apply_ops(host.mounts[0], ops))
        assert outcomes == ref_outcomes
        assert host.run(observe(host.mounts[0])) == ref_state


# ---------------------------------------------------------------------------
# Rename storm: repeated directory renames under live concurrent walkers
# ---------------------------------------------------------------------------

# Phase A shuffles a replicated subtree between parents; phase B renames
# a *split* directory back and forth (the oracle never splits — the
# partitioning must be invisible).  Both storms end where they started
# names-wise only in phase B; phase A's chain is deliberately a tour.
STORM_SETUP = [
    ("mkdir", "d1", None),
    ("mkdir", "d2", None),
    ("mkdir", "d1/sub", None),
    ("create", "d1/sub/f", b"abc"),
    ("create", "d1/p", b"x"),
    ("create", "d1/q", b"yz"),
]
STORM_A = [
    ("rename", ("d1/sub", "d2/sub"), None),
    ("rename", ("d2/sub", "d1/sub2"), None),
    ("rename", ("d1/sub2", "d2/sub"), None),
    ("rename", ("d2/sub", "d1/sub"), None),
]
STORM_B = [
    ("rename", ("d1", "d3"), None),
    ("rename", ("d3", "d1"), None),
    ("rename", ("d1", "d3"), None),
    ("rename", ("d3", "d1"), None),
]
# Every name each storm ever uses: a live walker must always resolve at
# least one alternative — the flip's "old, new, or both, never neither".
WALKS_A = [
    ["/d1/sub", "/d2/sub", "/d1/sub2"],
    ["/d1/sub/f", "/d2/sub/f", "/d1/sub2/f"],
]
WALKS_B = [
    ["/d1", "/d3"],
    ["/d1/p", "/d3/p"],
    ["/d1/sub/f", "/d3/sub/f"],
]


def _walker(fs, alternative_sets, done):
    """Coroutine: probe alternative-name sets until the storm ends."""
    while not done["flag"]:
        for alts in alternative_sets:
            codes = []
            for path in alts:
                try:
                    yield from fs.stat(path)
                    codes.append("ok")
                except FsError as exc:
                    codes.append(exc.code)
            assert "ok" in codes, (
                f"walker saw no name of {alts} resolve: {codes}")


def _storm_leg(host, renames, alternative_sets):
    """Run a rename storm beside two walkers; return storm outcomes."""
    done = {"flag": False}
    box = {}

    def storm():
        box["out"] = yield from apply_ops(host.mounts[0], renames)
        done["flag"] = True

    host.run_all([storm()] + [
        _walker(host.mounts[i], alternative_sets, done) for i in (1, 2)])
    return box["out"]


def test_rename_storm_under_live_walkers_matches_single_shard():
    """Concurrent walkers never see a directory vanish mid-rename.

    A storm of directory renames — replicated subtrees, then a split
    directory — runs beside walkers that demand at least one of each
    name's alternatives resolves at every probe.  Outcomes and the
    final namespace must match the serial 1-shard oracle, which never
    splits anything and has no walkers at all.
    """
    from repro.core.config import CofsConfig

    reference = MountedCofs(1)
    ref_out = reference.run(apply_ops(reference.mounts[0], STORM_SETUP))
    ref_out += reference.run(apply_ops(reference.mounts[0], STORM_A))
    ref_out += reference.run(apply_ops(reference.mounts[0], STORM_B))
    ref_state = reference.run(observe(reference.mounts[0]))

    hosts = [
        ShardedCofs(n_clients=3, shards=2, sharding=HashDirSharding()),
        ShardedCofs(n_clients=3, shards=4, sharding=HashDirSharding(),
                    cofs_config=CofsConfig(parallel_broadcasts=True)),
    ]
    for host in hosts:
        label = (host.stack.n_shards, "rename-storm")
        outcomes = host.run(apply_ops(host.mounts[0], STORM_SETUP))
        outcomes += _storm_leg(host, STORM_A, WALKS_A)
        # Phase B renames a split directory: partition rows re-key with
        # every flip, invisibly (the oracle never split).
        assert host.run(host.shards[0].split_dir(
            "/d1", list(range(min(2, host.stack.n_shards))), host.sim.now))
        outcomes += _storm_leg(host, STORM_B, WALKS_B)
        assert outcomes == ref_out, label
        assert host.run(observe(host.mounts[0])) == ref_state, label

        from repro.core.faults import check_tier_invariants
        check_tier_invariants(host.shards, host.stack.sharding)
