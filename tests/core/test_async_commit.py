"""Crash drills for asynchronous group commit: bounded, dependency-
consistent loss.

The async tier's crash model is *bounded loss*: the journal tail since
the last completed force is gone, so an acked-but-deferred update may
vanish — but never an update another client already observed (the
dependency tracker withholds such acks until the force), and never a
non-contiguous subset (recovery replays a journal *prefix*).

The drills enumerate every force boundary a two-client workload crosses
(:func:`~repro.core.faults.arm_force_boundaries`), crash the shard right
there, recover it, and assert:

- the recovered namespace holds a *prefix* of the writer's acked
  creates (bounded loss, no holes);
- every file the second client's ``stat`` observed still exists
  (dependency consistency — observed implies durable);
- every structural tier invariant, a liveness probe, and — per drill —
  a green :class:`~repro.obs.TraceChecker` including the
  durable-before-dependent-ack rule.

The differential leg runs the same workload with async commit on and
off, no crash: the final namespaces must be identical — the mode changes
durability timing, never results.
"""

import os

from repro import obs
from repro.core.config import CofsConfig
from repro.core.faults import (
    CrashInjected,
    CrashSchedule,
    arm_force_boundaries,
    check_tier_invariants,
    disarm_force_boundaries,
    namespace_image,
)
from repro.core.sharding import SubtreeSharding
from repro.pfs.errors import FsError
from tests.core.conftest import ShardedCofs

N_FILES = 6


def _build(async_commit=True):
    host = ShardedCofs(
        n_clients=2, shards=2,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}),
        cofs_config=CofsConfig(async_commit=async_commit))

    def seed():
        yield from host.mounts[0].mkdir("/a")
        yield from host.mounts[0].mkdir("/b")

    host.run(seed())
    return host


def _writer(host, acked, dead):
    """Create ``/a/f0..fN`` with gaps so each lands in its own force
    window; record each create the moment its (possibly deferred) ack
    returns."""
    fs = host.mounts[0]
    try:
        for i in range(N_FILES):
            fh = yield from fs.create(f"/a/f{i}")
            yield from fs.close(fh)
            acked.append(i)
            yield host.sim.timeout(2.0)
    except CrashInjected:
        dead.append("writer")


def _reader(host, observed, dead):
    """Poll each file into view from the other client; every recorded
    observation is a dependent ack the tier promised to make durable."""
    fs = host.mounts[1]
    try:
        for i in range(N_FILES):
            while True:
                try:
                    yield from fs.stat(f"/a/f{i}")
                    observed.append(i)
                    break
                except FsError:
                    if dead:
                        return
                    yield host.sim.timeout(0.4)
    except CrashInjected:
        dead.append("reader")


def _run_workload(host):
    acked, observed, dead = [], [], []
    host.run_all([_writer(host, acked, dead),
                  _reader(host, observed, dead)])
    return acked, observed, dead


def _count_force_boundaries():
    """Counting pass: no crash armed, every force boundary tallied."""
    host = _build()
    schedule = CrashSchedule()
    arm_force_boundaries(host.shards, schedule)
    acked, observed, _dead = _run_workload(host)
    disarm_force_boundaries(host.shards)
    assert acked == list(range(N_FILES))
    assert observed == list(range(N_FILES))
    check_tier_invariants(host.shards, host.stack.sharding)
    return schedule.count


def _selected(count):
    """All boundaries, or ~N per scenario under REPRO_CRASH_POINTS=N."""
    env = os.environ.get("REPRO_CRASH_POINTS")
    if not env:
        return range(count)
    bound = max(1, int(env))
    stride = max(1, -(-count // bound))
    return range(0, count, stride)


def _drill(k):
    host = _build()
    schedule = CrashSchedule(armed=k)
    arm_force_boundaries(host.shards, schedule)
    acked, observed, _dead = _run_workload(host)
    disarm_force_boundaries(host.shards)
    crashed = [s for s in host.shards if s.dbsvc._crashed is not None]
    assert len(crashed) == 1, f"boundary {k} never fired"
    host.run(crashed[0].recover())

    sharding = host.stack.sharding
    image = check_tier_invariants(host.shards, sharding)
    survived = [i for i in range(N_FILES) if f"/a/f{i}" in image]
    # Bounded loss replays a journal prefix: no holes in the create order.
    assert survived == list(range(len(survived))), (
        f"boundary {k}: recovered creates are not a prefix: {survived}"
    )
    # Dependency consistency: an observed create is a durable create.
    for i in observed:
        assert i in survived, (
            f"boundary {k}: /a/f{i} was observed by the reader "
            f"(dependent ack granted) but did not survive recovery"
        )
    # Liveness: the recovered tier still serves (async) mutations.
    def probe():
        fs = host.mounts[0]
        fh = yield from fs.create("/a/probe")
        yield from fs.close(fh)
        yield from fs.unlink("/a/probe")

    host.run(probe())
    check_tier_invariants(host.shards, sharding)


def test_every_force_boundary_recovers_consistently():
    count = _count_force_boundaries()
    assert count >= N_FILES, (
        f"expected at least one force per spaced create, got {count}"
    )
    for k in _selected(count):
        _drill(k)


def test_force_boundary_drills_are_trace_clean():
    """Each drill's full history — deferred acks, forces, the crash, the
    recovery — passes every trace invariant, including the new
    durable-before-dependent-ack rule."""
    count = _count_force_boundaries()
    for k in _selected(min(count, 3)):
        obs.enable()
        try:
            _drill(k)
            checker = obs.TraceChecker(obs.TRACER).check_all()
            assert any(s.kind == "force" and s.outcome == "ok"
                       for s in checker.spans)
        finally:
            obs.disable()


def test_async_and_sync_reach_identical_namespaces():
    """The differential leg: same workload, both commit modes, no crash
    — the observable end state must not depend on the mode."""
    images = []
    for async_commit in (False, True):
        host = _build(async_commit=async_commit)
        acked, observed, dead = _run_workload(host)
        assert not dead
        assert acked == list(range(N_FILES))
        assert observed == list(range(N_FILES))
        check_tier_invariants(host.shards, host.stack.sharding)
        deferred = sum(s.dbsvc.deferred_acks for s in host.shards)
        if async_commit:
            assert deferred > 0, "async leg never deferred an ack"
        else:
            assert deferred == 0
        images.append(namespace_image(host.shards, host.stack.sharding))
    assert images[0] == images[1], (
        "async commit changed the observable result of the workload"
    )


def test_crashed_node_refuses_acks_until_recovery():
    """Between the crash and recovery, nothing is acknowledged — even
    updates whose dependencies were already durable."""
    host = _build()
    schedule = CrashSchedule(armed=0)
    arm_force_boundaries(host.shards, schedule)
    acked, _observed, _dead = _run_workload(host)
    disarm_force_boundaries(host.shards)
    crashed = [s for s in host.shards if s.dbsvc._crashed is not None]
    assert len(crashed) == 1
    # The first force covered f0; the crash fired right after it.
    assert acked[:1] == [0]

    def late_create():
        fh = yield from host.mounts[0].create("/a/late")
        yield from host.mounts[0].close(fh)

    try:
        host.run(late_create())
        raised = False
    except CrashInjected:
        raised = True
    assert raised, "a crashed node acknowledged an update"
    host.run(crashed[0].recover())
    host.run(late_create())
    image = check_tier_invariants(host.shards, host.stack.sharding)
    assert "/a/late" in image
