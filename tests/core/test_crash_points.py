"""Exhaustive fault injection over the cross-shard protocols.

Every cross-shard mutation is a sequence of durable journal commits and
shard-to-shard RPCs.  For each scenario below, a counting pass enumerates
every such boundary the operation crosses, then the replay passes re-run
the operation on a fresh tier with a crash armed at each boundary in turn
(the in-flight operation dies there — coordinator and participants
alike), run tier-wide recovery, and assert the single invariant oracle:
no dangling dentries, no stranded inodes, consistent link counts,
identical skeleton replicas, reconciled placement counters, no leftover
coordination records, epoch/fence rows consistent, and an observable
namespace equal to either the pre-op or the post-op image.  A liveness
probe then proves the tier still serves mutations.

The **concurrent drills** exercise the epoch fence: at each boundary the
in-flight operation crosses (its *phase*), a victim shard — every shard
in turn, including the coordinator itself — crashes and runs its
single-shard ``recover()`` *while the operation keeps running* against
the live tier.  The oracle then demands the invariants AND atomicity
keyed to the client-visible outcome: a success must observe the post-op
image, a clean abort (the fence's EAGAIN) the pre-op image.  Every
(victim × phase) pair is a drilled point.

``REPRO_CRASH_POINTS=N`` bounds the replay to ~N evenly-strided
boundaries per scenario (the CI smoke job uses this); unset, every
boundary is replayed.
"""

import os

import pytest

from repro.core.config import CofsConfig
from repro.core.faults import (
    CrashInjected,
    CrashSchedule,
    arm_groups,
    arm_shards,
    check_group_invariants,
    check_tier_invariants,
    disarm_groups,
    disarm_shards,
    kill_backup,
    kill_primary,
    namespace_image,
    revive_member,
)
from repro.core.sharding import SubtreeSharding, recover_tier
from repro.pfs.errors import FsError
from tests.core.conftest import ShardedCofs


def _split(n):
    """Static subtree sharding: /a → 0, /b → 1, ... (deterministic)."""
    names = ["/a", "/b", "/c", "/d"]
    return SubtreeSharding({names[i]: i for i in range(n)})


def _apply(host, ops):
    """Coroutine: drive a list of op tuples through the host's first mount.

    The ``rebalance`` op is tier-level rather than a client call: it runs
    the owner shard's re-homing protocol directly (the rebalancer is a
    control-plane driver, not a filesystem client).
    """
    fs = host.mounts[0]
    for op in ops:
        kind = op[0]
        if kind == "mkdir":
            yield from fs.mkdir(op[1])
        elif kind == "create":
            fh = yield from fs.create(op[1])
            yield from fs.close(fh)
        elif kind == "symlink":
            yield from fs.symlink(op[1], op[2])
        elif kind == "link":
            yield from fs.link(op[1], op[2])
        elif kind == "unlink":
            yield from fs.unlink(op[1])
        elif kind == "rename":
            yield from fs.rename(op[1], op[2])
        elif kind == "rmdir":
            yield from fs.rmdir(op[1])
        elif kind == "chmod":
            yield from fs.chmod(op[1], 0o700)
        elif kind == "rebalance":
            _kind, path, dst = op
            sharding = host.stack.sharding
            src = sharding.shard_of_dir(path, len(host.shards))
            yield from host.shards[src].rebalance_dir(
                path, dst, host.sim.now)
        elif kind == "split":
            _kind, path, targets = op
            sharding = host.stack.sharding
            src = sharding.shard_of_dir(path, len(host.shards))
            yield from host.shards[src].split_dir(
                path, targets, host.sim.now)
        elif kind == "merge":
            _kind, path = op
            sharding = host.stack.sharding
            src = sharding.shard_of_dir(path, len(host.shards))
            yield from host.shards[src].merge_dir(path, host.sim.now)
        else:  # pragma: no cover - scenario typo guard
            raise AssertionError(f"unknown op {kind}")
    return True


#: every scenario: shard count, deterministic setup, the one operation
#: whose boundaries are exhaustively crashed.  The three acceptance
#: protocols (cross-shard rename, cross-shard link, replicated mkdir)
#: appear first; the rest cover the remaining intent-protected paths.
SCENARIOS = {
    "rename-cross-shard": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/g")],
    ),
    "rename-cross-shard-replace": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"),
               ("create", "/a/f"), ("create", "/b/g")],
        op=[("rename", "/a/f", "/b/g")],
    ),
    "rename-cross-shard-over-stub": dict(
        # /b/l is the last name of a hard-linked inode homed on shard 0:
        # the install replaces a stub and must drain a remote link drop.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/x"),
               ("link", "/a/x", "/b/l"), ("unlink", "/a/x"),
               ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/l")],
    ),
    "rename-cross-shard-over-symlink": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/t"),
               ("symlink", "/a/t", "/b/s"), ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/s")],
    ),
    "link-cross-shard": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f")],
        op=[("link", "/a/f", "/b/l")],
    ),
    "link-via-stub": dict(
        # The fetch forwards through a stub to the inode's home shard.
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/c"),
               ("create", "/a/f"), ("link", "/a/f", "/b/l")],
        op=[("link", "/b/l", "/c/m")],
    ),
    "mkdir-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
    ),
    "mkdir-replicated-4shards": dict(
        shards=4,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
    ),
    "symlink-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b")],
        op=[("symlink", "/a", "/b/ln")],
    ),
    "rmdir-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("rmdir", "/a/sub")],
    ),
    "unlink-symlink-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("symlink", "/a", "/b/ln")],
        op=[("unlink", "/b/ln")],
    ),
    "unlink-stub": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f"),
               ("link", "/a/f", "/b/l")],
        op=[("unlink", "/b/l")],
    ),
    "setattr-dir-broadcast": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("chmod", "/a/sub")],
    ),
    "rename-replicated-dir-migrates-subtree": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/d"),
               ("create", "/a/d/f"), ("create", "/a/d/g")],
        op=[("rename", "/a/d", "/b/d")],
    ),
    "rename-replicated-dir-same-parent": dict(
        # The simplest replicated flavor: old and new live under the same
        # parent, no entry migrates — the flip alone carries visibility.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/a/d"), ("create", "/a/d/f")],
        op=[("rename", "/a/d", "/a/e")],
    ),
    "rename-split-dir": dict(
        # Renaming a split directory re-keys its partition rows: the
        # alias keys must route entries under the new name the moment a
        # replica can resolve it, and the old keys must survive until
        # the retire — on every shard, at every crash point.
        shards=2,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h"), ("create", "/a/i"),
               ("split", "/a", [0, 1])],
        op=[("rename", "/a", "/c")],
        # /a may legitimately be gone after the op: probe at the root.
        probe=[("create", "/probe"), ("unlink", "/probe")],
    ),
    # -- online re-partitioning: the migration is namespace-invisible
    #    (paths never change), so these drills lean on the structural
    #    invariants — reachability via the overridden routing, override
    #    tables identical everywhere, counters reconciled.
    "rebalance-dir-population": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h")],
        op=[("rebalance", "/a", 1)],
        invisible=True,
    ),
    "rebalance-dir-with-stub": dict(
        # /a/f is hard-linked from /b: its inode must stay home behind a
        # stub while the name re-homes.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f"),
               ("link", "/a/f", "/b/l"), ("create", "/a/g")],
        op=[("rebalance", "/a", 1)],
        invisible=True,
    ),
    "rebalance-dir-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g")],
        op=[("rebalance", "/a", 2)],
        invisible=True,
        parallel=True,
    ),
    # -- intra-directory splits: hash-partitioning a hot directory's
    #    entries across shards.  Same invisibility rule as re-homing,
    #    plus the partitions-table invariants (identical everywhere, in
    #    memory == durable) at every crash point.
    "split-dir-population": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h"), ("create", "/a/i")],
        op=[("split", "/a", [0, 1])],
        invisible=True,
    ),
    "split-dir-with-stub": dict(
        # /a/f is hard-linked from /b: its inode stays home behind a
        # stub while the name partitions away.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f"),
               ("link", "/a/f", "/b/l"), ("create", "/a/g"),
               ("create", "/a/h")],
        op=[("split", "/a", [0, 1])],
        invisible=True,
    ),
    "split-dir-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h")],
        op=[("split", "/a", [0, 1, 2])],
        invisible=True,
        parallel=True,
    ),
    "merge-split-dir": dict(
        # The inverse protocol: every partition's entries come home and
        # the surviving one-element row is routing-equivalent to none.
        shards=2,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h"), ("split", "/a", [0, 1])],
        op=[("merge", "/a")],
        invisible=True,
    ),
    "resplit-dir-multi-source": dict(
        # Widening an existing split stages from *multiple* pre-flip
        # sources; the intent's recorded sources make the redo complete
        # even though the live map already shows the new fanout.
        shards=3,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h"), ("create", "/a/i"),
               ("split", "/a", [0, 1])],
        op=[("split", "/a", [0, 1, 2])],
        invisible=True,
    ),
    # -- parallel mirror broadcasts: same protocols, overlapped fan-out;
    #    ≥3 shards so at least two mirrors genuinely overlap.
    "mkdir-replicated-4shards-parallel": dict(
        shards=4,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
        parallel=True,
    ),
    "symlink-replicated-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b")],
        op=[("symlink", "/a", "/b/ln")],
        parallel=True,
    ),
    "rmdir-replicated-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("rmdir", "/a/sub")],
        parallel=True,
    ),
    "setattr-dir-broadcast-parallel": dict(
        shards=4,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("chmod", "/a/sub")],
        parallel=True,
    ),
    "rename-replicated-dir-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/d"),
               ("create", "/a/d/f"), ("create", "/a/d/g")],
        op=[("rename", "/a/d", "/b/d")],
        parallel=True,
    ),
}

#: liveness probe: after recovery the tier must still serve mutations.
PROBE = [("create", "/a/probe"), ("unlink", "/a/probe")]


def _build(spec):
    cofs_config = CofsConfig(parallel_broadcasts=True) \
        if spec.get("parallel") else None
    host = ShardedCofs(
        n_clients=1, shards=spec["shards"], sharding=_split(spec["shards"]),
        cofs_config=cofs_config)
    host.run(_apply(host, spec["setup"]))
    return host


def _count_boundaries(spec):
    """The counting pass: images + total boundary count for a scenario."""
    host = _build(spec)
    sharding = host.stack.sharding
    pre = namespace_image(host.shards, sharding)
    schedule = CrashSchedule()
    arm_shards(host.shards, schedule)
    host.run(_apply(host, spec["op"]))
    disarm_shards(host.shards)
    post = namespace_image(host.shards, sharding)
    if spec.get("invisible"):
        # Re-homing migrations move rows between shards without touching
        # any path: the observable namespace must be *unchanged*.
        assert post == pre, "invisible op must not change the namespace"
    else:
        assert post != pre, "scenario op must change the namespace"
    # the clean run itself must satisfy every structural invariant
    check_tier_invariants(host.shards, sharding, images=(post,))
    return schedule.count, pre, post


def _selected(count):
    """All boundaries, or ~N per scenario under REPRO_CRASH_POINTS=N."""
    env = os.environ.get("REPRO_CRASH_POINTS")
    if not env:
        return range(count)
    bound = max(1, int(env))
    stride = max(1, -(-count // bound))
    return range(0, count, stride)


def _crash_at(spec, k):
    """Replay the scenario, crash at boundary ``k``; returns host + label."""
    host = _build(spec)
    schedule = CrashSchedule(armed=k)
    arm_shards(host.shards, schedule)
    crashed = []

    def run_op():
        try:
            yield from _apply(host, spec["op"])
        except CrashInjected as exc:
            crashed.append(exc)
        return True

    host.run(run_op())
    disarm_shards(host.shards)
    assert crashed, f"boundary {k} never fired"
    return host, crashed[0].label


def _drill(spec, k, pre, post, mode):
    host, label = _crash_at(spec, k)
    sharding = host.stack.sharding
    if mode == "all":
        host.run(recover_tier(host.shards))
    else:
        # Only the shard where the crash fired restarts; its recover()
        # drives the tier-wide repair against the survivors' live state.
        host.run(host.shards[label[1]].recover())
    check_tier_invariants(host.shards, sharding, images=(pre, post))
    host.run(_apply(host, spec.get("probe", PROBE)))
    check_tier_invariants(host.shards, sharding)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_boundary_recovers_whole_tier_crash(name):
    spec = SCENARIOS[name]
    count, pre, post = _count_boundaries(spec)
    assert count >= 2, f"{name}: expected a multi-boundary protocol"
    for k in _selected(count):
        _drill(spec, k, pre, post, mode="all")


@pytest.mark.parametrize(
    "name",
    ["rename-cross-shard", "rename-cross-shard-over-stub",
     "link-cross-shard", "mkdir-replicated"],
)
def test_single_shard_crash_recovery_repairs_the_tier(name):
    """Crashing only the shard where the boundary fired: its recover()
    alone (tier passes against live peers) must restore the invariants."""
    spec = SCENARIOS[name]
    count, pre, post = _count_boundaries(spec)
    for k in _selected(count):
        _drill(spec, k, pre, post, mode="one")


def test_boundary_enumeration_is_exhaustive_and_large():
    """The acceptance floor: the three core protocols alone cross well
    over 30 distinct crash boundaries."""
    core = ["rename-cross-shard", "rename-cross-shard-replace",
            "rename-cross-shard-over-stub", "link-cross-shard",
            "link-via-stub", "mkdir-replicated", "mkdir-replicated-4shards"]
    total = sum(_count_boundaries(SCENARIOS[name])[0] for name in core)
    assert total >= 30, total
    grand = sum(
        _count_boundaries(spec)[0] for spec in SCENARIOS.values())
    assert grand > total


def test_coordinator_crash_mid_rename_no_stranded_name():
    """The exact gap PR 2 documented: coordinator dies after the detach
    commit, before the install.  The old name must reappear (rollback) —
    never a vanished file."""
    spec = SCENARIOS["rename-cross-shard"]
    count, pre, post = _count_boundaries(spec)
    # Find the boundary right after the detach transaction commits on the
    # coordinator (shard 0): the first ("commit", 0) the op crosses.
    host, label = _crash_at(spec, 0)
    seen = [label]
    k = 0
    while label != ("commit", 0):
        k += 1
        host, label = _crash_at(spec, k)
        seen.append(label)
    host.run(recover_tier(host.shards))
    observed = check_tier_invariants(
        host.shards, host.stack.sharding, images=(pre, post))
    assert observed == pre, (
        "a crash between detach and install must roll back", seen)
    # and the file is fully usable again
    host.run(_apply(host, [("rename", "/a/f", "/a/f2"),
                           ("unlink", "/a/f2")]))


# ---------------------------------------------------------------------------
# Concurrent drills: a victim shard recovers while an op is in flight
# ---------------------------------------------------------------------------

#: scenarios whose operation stays in flight while a victim recovers.
#: Victims default to every shard of the tier — including the operation's
#: own coordinator, which turns the still-running op into a "zombie" the
#: peers must fence (EpochFenced → clean abort), and including pure
#: bystanders, whose recovery must leave the live intent alone.
CONCURRENT = [
    "rename-cross-shard",
    "rename-cross-shard-replace",
    "rename-cross-shard-over-stub",
    "link-cross-shard",
    "link-via-stub",
    "mkdir-replicated",
    "rmdir-replicated",
    "rename-replicated-dir-migrates-subtree",
    "rename-split-dir",
    "rebalance-dir-population",
    "rebalance-dir-with-stub",
    "split-dir-population",
    "split-dir-with-stub",
    "merge-split-dir",
]


def _concurrent_pairs(spec, count):
    """Every (victim shard × selected boundary) pair of a scenario."""
    return [(victim, k)
            for victim in range(spec["shards"])
            for k in _selected(count)]


def _concurrent_drill(spec, k, victim, pre, post):
    """One pair: recover ``victim`` at boundary ``k`` of the live op."""
    host = _build(spec)
    sharding = host.stack.sharding
    recovery = []

    def fire(_label):
        recovery.append(host.sim.process(
            host.shards[victim].recover(), name=f"recover-s{victim}"))

    schedule = CrashSchedule(armed=k, action=fire)
    arm_shards(host.shards, schedule)
    outcome = []

    def run_op():
        try:
            yield from _apply(host, spec["op"])
            outcome.append("ok")
        except FsError as exc:
            outcome.append(exc.code)
        assert recovery, f"boundary {k} never fired"
        yield recovery[0]  # join: the oracle runs after both finish
        return True

    host.run(run_op())
    disarm_shards(host.shards)
    observed = check_tier_invariants(
        host.shards, sharding, images=(pre, post))
    label = (k, victim, outcome[0])
    if spec.get("invisible"):
        assert observed == pre, label
    elif outcome[0] == "ok":
        # The operation reported success: it must be fully committed
        # (possibly rolled forward by the victim's recovery).
        assert observed == post, label
    else:
        # The operation aborted (a fence answers EAGAIN): nothing of it
        # may remain visible.
        assert observed == pre, label
    host.run(_apply(host, spec.get("probe", PROBE)))
    check_tier_invariants(host.shards, sharding)


@pytest.mark.parametrize("name", CONCURRENT)
def test_single_shard_recovery_during_live_operation(name):
    """Every (crash point × in-flight-op phase) pair: a victim shard
    crashes and recovers mid-operation, the operation keeps running, and
    the tier must end consistent with the op atomically applied or not."""
    spec = SCENARIOS[name]
    count, pre, post = _count_boundaries(spec)
    for victim, k in _concurrent_pairs(spec, count):
        _concurrent_drill(spec, k, victim, pre, post)


def test_concurrent_drill_enumeration_is_large():
    """The acceptance floor: ≥ 60 distinct (victim × phase) pairs are
    drilled across the concurrent scenarios (unbounded enumeration)."""
    total = 0
    for name in CONCURRENT:
        spec = SCENARIOS[name]
        count, _pre, _post = _count_boundaries(spec)
        total += spec["shards"] * count
    assert total >= 60, total


#: migration scenarios for the reader drill, with the probes a reader
#: issues while the migration keeps running.  ``probes`` lists the
#: alternative names of each pre-existing file (one alternative for a
#: path-invisible migration, old-or-new for a rename); ``listings`` maps
#: each stable directory to the names a mid-migration readdir must list
#: exactly once each.
MIGRATION_READS = {
    "split-dir-population": dict(
        probes=[["/a/f"], ["/a/g"], ["/a/h"], ["/a/i"]],
        listings={"/a": ["f", "g", "h", "i"]},
    ),
    "merge-split-dir": dict(
        probes=[["/a/f"], ["/a/g"], ["/a/h"]],
        listings={"/a": ["f", "g", "h"]},
    ),
    "resplit-dir-multi-source": dict(
        probes=[["/a/f"], ["/a/g"], ["/a/h"], ["/a/i"]],
        listings={"/a": ["f", "g", "h", "i"]},
    ),
    "rebalance-dir-population": dict(
        probes=[["/a/f"], ["/a/g"], ["/a/h"]],
        listings={"/a": ["f", "g", "h"]},
    ),
    "rebalance-dir-with-stub": dict(
        probes=[["/a/f"], ["/a/g"], ["/b/l"]],
        listings={"/a": ["f", "g"]},
    ),
}


def _reader_drill(name, k, reads=None):
    """Spawn a reader at boundary ``k`` of the live migration: while the
    migration keeps running to completion, the reader loops stat/readdir
    probes over the pre-existing population and must never observe a
    missing entry or a double listing."""
    spec = SCENARIOS[name]
    reads = MIGRATION_READS[name] if reads is None else reads
    host = _build(spec)
    fs = host.mounts[0]
    failures, fired, done, readers = [], [], [], []

    def reader():
        while not done:
            for alternatives in reads["probes"]:
                codes = []
                for path in alternatives:
                    try:
                        yield from fs.stat(path)
                        codes.append("ok")
                    except FsError as exc:
                        codes.append(exc.code)
                if "ok" not in codes:
                    failures.append((k, alternatives, codes))
            for dir_path, names in reads["listings"].items():
                try:
                    listing = yield from fs.readdir(dir_path)
                except FsError as exc:
                    failures.append((k, dir_path, exc.code))
                    continue
                if len(listing) != len(set(listing)):
                    failures.append((k, dir_path, "duplicate", listing))
                missing = set(names) - set(listing)
                if missing:
                    failures.append((k, dir_path, "missing", missing))
        return True

    def fire(_label):
        fired.append(True)
        readers.append(host.sim.process(reader(), name="reader"))

    schedule = CrashSchedule(armed=k, action=fire)
    arm_shards(host.shards, schedule)

    def run_op():
        yield from _apply(host, spec["op"])
        done.append(True)
        if readers:
            yield readers[0]  # join: let the reader finish its pass
        return True

    host.run(run_op())
    disarm_shards(host.shards)
    assert fired, f"boundary {k} never fired"
    assert not failures, failures
    check_tier_invariants(host.shards, host.stack.sharding)


@pytest.mark.parametrize("name", sorted(MIGRATION_READS))
def test_readers_never_lose_an_entry_mid_migration(name):
    """The headline window, drilled at every boundary of every migration
    protocol: a concurrent reader must never see a transient ENOENT for
    a pre-existing entry, and a mid-migration readdir lists every entry
    exactly once."""
    spec = SCENARIOS[name]
    count, _pre, _post = _count_boundaries(spec)
    assert count >= 2
    for k in _selected(count):
        _reader_drill(name, k)


#: rename scenarios for the old-XOR-new reader drill, one per flavor:
#: same-shard replicated dir, cross-shard file, renamed-subtree move
#: (serial and parallel broadcasts), and a split directory re-keying its
#: partition rows.  Each probe lists a name's old and new alternatives —
#: a concurrent walk must resolve at least one at every instant
#: (old, new, or both during the staged window — never neither).
RENAME_READS = {
    "rename-replicated-dir-same-parent": dict(
        probes=[["/a/d", "/a/e"], ["/a/d/f", "/a/e/f"]],
        listings={},
    ),
    "rename-cross-shard": dict(
        probes=[["/a/f", "/b/g"]],
        listings={},
    ),
    "rename-replicated-dir-migrates-subtree": dict(
        probes=[["/a/d", "/b/d"], ["/a/d/f", "/b/d/f"],
                ["/a/d/g", "/b/d/g"]],
        listings={},
    ),
    "rename-replicated-dir-parallel": dict(
        probes=[["/a/d", "/b/d"], ["/a/d/f", "/b/d/f"],
                ["/a/d/g", "/b/d/g"]],
        listings={},
    ),
    "rename-split-dir": dict(
        probes=[["/a", "/c"], ["/a/f", "/c/f"], ["/a/g", "/c/g"],
                ["/a/h", "/c/h"], ["/a/i", "/c/i"]],
        listings={},
    ),
}


@pytest.mark.parametrize("name", sorted(RENAME_READS))
def test_walkers_resolve_old_or_new_at_every_rename_boundary(name):
    """The skeleton-broadcast divergence window, closed: a concurrent
    walk during a rename of any flavor resolves the old or the new name
    at every enumerated boundary — never ENOENT for both."""
    spec = SCENARIOS[name]
    count, _pre, _post = _count_boundaries(spec)
    assert count >= 2
    for k in _selected(count):
        _reader_drill(name, k, reads=RENAME_READS[name])


def test_renamed_subtree_entries_servable_the_moment_a_replica_flips():
    """The subtree-rename migration window, checked at *every* boundary
    in one pass: the instant any shard's skeleton replica resolves the
    renamed directory under its new name, the shard owning each of its
    entries under that new name must already hold the entry (the staged
    copy) — the old migrate-after-commit order left a window where the
    new name was visible tier-wide while every entry was still parked on
    the old owner, unreachable.  (Client-visible old-name/new-name
    flicker *between* replicas is closed by the staged flip —
    ``test_walkers_resolve_old_or_new_at_every_rename_boundary`` drills
    it directly.)  Pure table reads — no simulated cost, no schedule
    perturbation."""
    spec = SCENARIOS["rename-replicated-dir-migrates-subtree"]
    host = _build(spec)
    sharding = host.stack.sharding
    n = len(host.shards)
    names = ("f", "g")
    failures = []

    def resolve_dir(shard, path):
        """vino of ``path`` on this shard's replica, or None."""
        dentries = {(d["parent"], d["name"]): d
                    for d in shard.db.table("dentries").all()}
        vino = shard.root_vino
        for part in path.strip("/").split("/"):
            dentry = dentries.get((vino, part))
            if dentry is None:
                return None
            vino = dentry["vino"]
        return vino

    class Watch:
        count = 0

        def boundary(self, label):
            Watch.count += 1
            for shard in host.shards:
                dvino = resolve_dir(shard, "/b/d")
                if dvino is None:
                    continue
                for name in names:
                    owner = host.shards[sharding.shard_of_entry(
                        "/b/d", name, n)]
                    held = any(
                        d["parent"] == dvino and d["name"] == name
                        for d in owner.db.table("dentries").all())
                    if not held:
                        failures.append(
                            (Watch.count, label, shard.shard_id, name))

    arm_shards(host.shards, Watch())
    host.run(_apply(host, spec["op"]))
    disarm_shards(host.shards)
    assert Watch.count >= 2
    assert not failures, failures
    check_tier_invariants(host.shards, sharding)


def test_fenced_zombie_coordinator_aborts_cleanly():
    """Pin the fence semantics end-to-end: the coordinator's own shard
    recovers right after the cross-shard rename's detach commit; the
    still-running rename must be fenced — never half-applied — and a
    fresh retry of the same rename must succeed under the new epoch."""
    spec = SCENARIOS["rename-cross-shard"]
    count, pre, post = _count_boundaries(spec)
    host = _build(spec)
    # Boundary 0 is the coordinator's detach commit ("commit", 0): the
    # intent is durable, nothing has reached the destination yet.
    recovery = []

    def fire(label):
        assert label == ("commit", 0), label
        recovery.append(host.sim.process(host.shards[0].recover()))

    schedule = CrashSchedule(armed=0, action=fire)
    arm_shards(host.shards, schedule)
    outcome = []

    def run_op():
        try:
            yield from _apply(host, spec["op"])
            outcome.append("ok")
        except FsError as exc:
            outcome.append(exc.code)
        yield recovery[0]
        return True

    host.run(run_op())
    disarm_shards(host.shards)
    observed = check_tier_invariants(
        host.shards, host.stack.sharding, images=(pre, post))
    if outcome[0] != "ok":
        assert outcome[0] == "EAGAIN"
        assert observed == pre
    # Either way the rename is retriable to completion afterwards.
    if observed == pre:
        host.run(_apply(host, spec["op"]))
        assert namespace_image(host.shards, host.stack.sharding) == post
    check_tier_invariants(host.shards, host.stack.sharding, images=(post,))


def test_live_ops_flow_across_single_shard_recovery():
    """Sixteen clients ping-pong cross-shard renames while shard 1
    crashes and recovers mid-stream.  Requests that land in the rebuild
    window wait at the admission gate; the completion pass gathers the
    open intents of the in-flight renames and must spare every one of
    them (their coordinators are alive).  Every op must succeed and the
    tier must end fully consistent."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=_split(2))
    files = 16
    host.run(_apply(host, [("mkdir", "/a"), ("mkdir", "/b")] +
                    [("create", f"/a/f{i}") for i in range(files)]))
    outcomes = []

    def one(i):
        fs = host.mounts[0]
        try:
            for _round in range(12):
                yield from fs.rename(f"/a/f{i}", f"/b/g{i}")
                yield from fs.rename(f"/b/g{i}", f"/a/f{i}")
            outcomes.append("ok")
        except FsError as exc:
            outcomes.append(exc.code)
        return True

    def driver():
        procs = [host.sim.process(one(i)) for i in range(files)]
        recovery = host.sim.process(host.shards[1].recover())
        yield host.sim.all_of(procs + [recovery])
        return True

    host.run(driver())
    assert outcomes == ["ok"] * files
    check_tier_invariants(host.shards, host.stack.sharding)
    host.run(_apply(host, [("unlink", f"/a/f{i}") for i in range(files)]))
    check_tier_invariants(host.shards, host.stack.sharding)


def test_reentrant_recoveries_of_one_shard_serialize():
    """Two overlapping recoveries of the same shard must serialize on
    the admission gate — neither may open the other's gate early — and
    leave the tier consistent with the epoch bumped twice."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=_split(2))
    host.run(_apply(host, [("mkdir", "/a"), ("mkdir", "/b"),
                           ("create", "/a/f")]))

    def driver():
        first = host.sim.process(host.shards[1].recover())
        second = host.sim.process(host.shards[1].recover())
        yield host.sim.all_of([first, second])
        return True

    host.run(driver())
    assert host.shards[1].epoch == 2
    assert host.shards[1]._admission is None
    check_tier_invariants(host.shards, host.stack.sharding)
    host.run(_apply(host, PROBE))
    check_tier_invariants(host.shards, host.stack.sharding)


def test_completion_pass_spares_a_live_coordinators_intent():
    """The exact hazard the old quiesced-tier caveat documented: a peer
    recovers while this shard's coordinator has an intent open.  The
    completion pass must leave the record alone (the coordinator is
    alive and will finish it), never abort it out from under the op."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=_split(2))
    host.run(_apply(host, [("mkdir", "/a"), ("mkdir", "/b")]))
    coord = host.shards[0]
    tid = coord._new_tid()  # registers the tid as live (an op is driving)

    def plant(txn):
        return coord._txn_intent(txn, coord.epoch, {
            "id": tid, "role": "coord", "op": "rename_post",
            "new": "/b/x", "now": 0.0, "pending": [],
            "replaced_symlink": False,
        })

    host.run(coord.dbsvc.execute(plant))
    host.run(host.shards[1].recover())
    survivors = [row["id"] for row in coord.db.table("intents").all()]
    assert survivors == [tid], survivors
    # ... and the op finishes on its own afterwards.
    coord._done_tids(tid)
    host.run(coord.intent_forget(tid))
    check_tier_invariants(host.shards, host.stack.sharding)


def test_completion_pass_reclaims_a_dead_coordinators_intent():
    """Same shape, but no live process drives the tid (its coroutine was
    killed): the peer's recovery must resolve the record — the behavior
    the old quiesced-tier pass applied to everything."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=_split(2))
    host.run(_apply(host, [("mkdir", "/a"), ("mkdir", "/b")]))
    coord = host.shards[0]
    tid = coord._new_tid()

    def plant(txn):
        return coord._txn_intent(txn, coord.epoch, {
            "id": tid, "role": "coord", "op": "rename_post",
            "new": "/b/x", "now": 0.0, "pending": [],
            "replaced_symlink": False,
        })

    host.run(coord.dbsvc.execute(plant))
    coord._done_tids(tid)  # the driving process died without cleanup
    host.run(host.shards[1].recover())
    assert not coord.db.table("intents").all()
    check_tier_invariants(host.shards, host.stack.sharding)


def test_zombie_coordinator_is_fenced_and_aborts_cleanly():
    """A coordinated step that captured its epoch before this shard's
    recovery (a zombie) must be refused at its very first stamped
    transaction and leave no partial state."""
    spec = SCENARIOS["rename-cross-shard"]
    host = _build(spec)
    sharding = host.stack.sharding
    pre = namespace_image(host.shards, sharding)
    stale = host.shards[0].epoch
    host.run(host.shards[0].recover())  # bumps the epoch, fences the tier
    assert host.shards[0].epoch == stale + 1
    outcome = []

    def zombie():
        try:
            yield from host.shards[0]._rename_cross_shard(
                "/a/f", "/b/g", 0, None, 1, host.sim.now, 0, epoch=stale)
        except FsError as exc:
            outcome.append(exc.code)
        return True

    host.run(zombie())
    assert outcome == ["EAGAIN"]
    observed = check_tier_invariants(host.shards, sharding, images=(pre,))
    assert observed == pre
    # the fenced tid was deregistered (no ghost liveness entries) ...
    assert not host.shards[0]._live_tids
    # ... and a fresh (current-epoch) retry of the same rename succeeds.
    host.run(_apply(host, spec["op"]))
    check_tier_invariants(host.shards, sharding)
    assert not host.shards[0]._live_tids


def test_peers_refuse_stale_epoch_rpcs():
    """The participant-side fence: any coordination RPC stamped with an
    epoch below the coordinator's fence answers EAGAIN and writes
    nothing."""
    host = ShardedCofs(n_clients=1, shards=2, sharding=_split(2))
    host.run(_apply(host, [("mkdir", "/a"), ("mkdir", "/b"),
                           ("create", "/a/f")]))
    stale = host.shards[1].epoch
    host.run(host.shards[1].recover())
    image = namespace_image(host.shards, host.stack.sharding)
    outcomes = []

    def stale_rpcs():
        for call in (
            host.shards[0].mirror_rmdir("/a", host.sim.now, (1, stale)),
            host.shards[0].unlink_vino(999, host.sim.now, None, (1, stale)),
            host.shards[0].rename_install(
                "/a/z", None, {"vino": 7, "home": 1}, host.sim.now,
                "s1.99", (1, stale)),
            host.shards[0].mirror_override("/a", 1, host.sim.now,
                                           (1, stale)),
        ):
            try:
                yield from call
                outcomes.append("ok")
            except FsError as exc:
                outcomes.append(exc.code)
        return True

    host.run(stale_rpcs())
    assert outcomes == ["EAGAIN"] * 4
    assert namespace_image(host.shards, host.stack.sharding) == image
    check_tier_invariants(host.shards, host.stack.sharding, images=(image,))


def test_double_recovery_crash_during_completion_pass():
    """Recovery itself can crash: arm a fresh schedule during the tier
    recovery, let it die mid-completion, recover again — invariants must
    hold at every recovery boundary too."""
    spec = SCENARIOS["rename-cross-shard-over-stub"]
    count, pre, post = _count_boundaries(spec)
    # Crash mid-operation somewhere in the middle of the protocol.
    mid = count // 2
    # Counting pass for the recovery itself.
    host, _label = _crash_at(spec, mid)
    rec_schedule = CrashSchedule()
    arm_shards(host.shards, rec_schedule)
    host.run(recover_tier(host.shards))
    disarm_shards(host.shards)
    rec_count = rec_schedule.count
    assert rec_count >= 1
    for rk in _selected(rec_count):
        host, _label = _crash_at(spec, mid)
        schedule = CrashSchedule(armed=rk)
        arm_shards(host.shards, schedule)

        def recover_once():
            try:
                yield from recover_tier(host.shards)
            except CrashInjected:
                pass
            return True

        host.run(recover_once())
        disarm_shards(host.shards)
        # second, undisturbed recovery
        host.run(recover_tier(host.shards))
        check_tier_invariants(
            host.shards, host.stack.sharding, images=(pre, post))
        host.run(_apply(host, PROBE))

# ---------------------------------------------------------------------------
# Failover drills: kill a group member at every boundary of a live op
# ---------------------------------------------------------------------------

#: operations drilled against a 2×2 replicated tier.  ``create-file``
#: is the pure log-shipping path (no mirror broadcast); the mkdir rides
#: a mirror broadcast *and* ships on both groups, so its boundary set
#: covers "primary dies before/after the ship", "backup dies
#: mid-catch-up", and every coordination gap in between.
GROUP_SCENARIOS = {
    "create-file": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b")],
        op=[("create", "/a/f")],
    ),
    "mkdir-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
    ),
}


def _build_replicated(spec):
    host = ShardedCofs(
        n_clients=1, shards=spec["shards"], replicas=2,
        sharding=_split(spec["shards"]))
    host.run(_apply(host, spec["setup"]))
    return host


def _count_group_boundaries(spec):
    """Counting pass on the replicated tier: every member's durable
    commits (backup applies included) and every RPC — peer, mirror, and
    intra-group ship — is a boundary."""
    host = _build_replicated(spec)
    pre = namespace_image(host.primaries, host.stack.sharding)
    schedule = CrashSchedule()
    arm_groups(host.groups, schedule)
    host.run(_apply(host, spec["op"]))
    disarm_groups(host.groups)
    post = namespace_image(host.primaries, host.stack.sharding)
    assert post != pre
    check_group_invariants(host.groups)
    return schedule.count, pre, post


def _member_kill_drill(spec, k, victim, pre, post):
    """Kill group 0's ``victim`` at boundary ``k`` of the live op.

    The operation keeps running (a kill refuses *new* dispatches; the
    in-flight handler is the zombie window).  The router's retry path is
    expected to absorb a dead primary — drive the promotion, re-target,
    and leave the client with a clean outcome.  Afterwards the dead
    member is revived and rejoined, and the whole tier must satisfy the
    group and namespace invariants.
    """
    host = _build_replicated(spec)
    group = host.groups[0]
    dead = []

    def fire(_label):
        if victim == "primary":
            dead.append(kill_primary(group))
        else:
            dead.append(kill_backup(group))

    schedule = CrashSchedule(armed=k, action=fire)
    arm_groups(host.groups, schedule)
    outcome = []

    def run_op():
        try:
            yield from _apply(host, spec["op"])
            outcome.append("ok")
        except FsError as exc:
            outcome.append(exc.code)
        return True

    host.run(run_op())
    disarm_groups(host.groups)
    assert dead, f"boundary {k} never fired"
    label = (k, victim, outcome[0])

    # A dead backup must be invisible to the client (quorum shrinks to
    # the primary alone); a dead primary is absorbed by the transparent
    # failover the router drives on retry.
    assert outcome[0] == "ok", label
    if group.primary.down:
        # The op never touched group 0 again after the kill: promote now
        # so the oracle (and the probe) run against a serving tier.
        host.run(group.ensure_failover())
    observed = check_tier_invariants(
        host.primaries, host.stack.sharding, images=(pre, post))
    assert observed == post, label

    # Revive the victim as a zombie, rejoin it, and demand full equality.
    revive_member(dead[0])
    assert dead[0] is not group.primary
    host.run(group.rejoin(dead[0]))
    host.run(_apply(host, PROBE))
    check_tier_invariants(host.primaries, host.stack.sharding)
    check_group_invariants(host.groups)


@pytest.mark.parametrize("victim", ["primary", "backup"])
@pytest.mark.parametrize("name", sorted(GROUP_SCENARIOS))
def test_member_killed_at_every_boundary_of_a_live_op(name, victim):
    spec = GROUP_SCENARIOS[name]
    count, pre, post = _count_group_boundaries(spec)
    assert count >= 4, f"{name}: expected a multi-boundary protocol"
    for k in _selected(count):
        _member_kill_drill(spec, k, victim, pre, post)


def test_trace_invariants_hold_across_member_kill_drills():
    """A bounded subset of the member-kill drills, run traced.

    Each drill's full history — the op's spans, the failover the router
    drives mid-op, the promotion, the rejoin — must satisfy the trace
    invariants (quorum-before-ack, promotion ordering, no follower-served
    mutations).  Three boundaries per (scenario × victim) keep the traced
    sweep cheap; the exhaustive untraced sweep lives above.
    """
    from repro import obs

    for name in sorted(GROUP_SCENARIOS):
        spec = GROUP_SCENARIOS[name]
        count, pre, post = _count_group_boundaries(spec)
        picks = sorted({0, count // 2, count - 1})
        for victim in ("primary", "backup"):
            for k in picks:
                tracer, _metrics = obs.enable()
                try:
                    _member_kill_drill(spec, k, victim, pre, post)
                    obs.TraceChecker(tracer).check_all()
                finally:
                    obs.disable()


def test_failover_boundary_enumeration_is_large():
    """Acceptance floor: the replicated drills cover ≥ 20 distinct
    (victim × boundary) pairs (unbounded enumeration)."""
    total = 0
    for spec in GROUP_SCENARIOS.values():
        count, _pre, _post = _count_group_boundaries(spec)
        total += 2 * count  # primary and backup victims
    assert total >= 20, total
