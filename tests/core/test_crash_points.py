"""Exhaustive fault injection over the cross-shard protocols.

Every cross-shard mutation is a sequence of durable journal commits and
shard-to-shard RPCs.  For each scenario below, a counting pass enumerates
every such boundary the operation crosses, then the replay passes re-run
the operation on a fresh tier with a crash armed at each boundary in turn
(the in-flight operation dies there — coordinator and participants
alike), run tier-wide recovery, and assert the single invariant oracle:
no dangling dentries, no stranded inodes, consistent link counts,
identical skeleton replicas, reconciled placement counters, no leftover
coordination records, and an observable namespace equal to either the
pre-op or the post-op image.  A liveness probe then proves the tier still
serves mutations.

``REPRO_CRASH_POINTS=N`` bounds the replay to ~N evenly-strided
boundaries per scenario (the CI smoke job uses this); unset, every
boundary is replayed.
"""

import os

import pytest

from repro.core.config import CofsConfig
from repro.core.faults import (
    CrashInjected,
    CrashSchedule,
    arm_shards,
    check_tier_invariants,
    disarm_shards,
    namespace_image,
)
from repro.core.sharding import SubtreeSharding, recover_tier
from tests.core.conftest import ShardedCofs


def _split(n):
    """Static subtree sharding: /a → 0, /b → 1, ... (deterministic)."""
    names = ["/a", "/b", "/c", "/d"]
    return SubtreeSharding({names[i]: i for i in range(n)})


def _apply(host, ops):
    """Coroutine: drive a list of op tuples through the host's first mount.

    The ``rebalance`` op is tier-level rather than a client call: it runs
    the owner shard's re-homing protocol directly (the rebalancer is a
    control-plane driver, not a filesystem client).
    """
    fs = host.mounts[0]
    for op in ops:
        kind = op[0]
        if kind == "mkdir":
            yield from fs.mkdir(op[1])
        elif kind == "create":
            fh = yield from fs.create(op[1])
            yield from fs.close(fh)
        elif kind == "symlink":
            yield from fs.symlink(op[1], op[2])
        elif kind == "link":
            yield from fs.link(op[1], op[2])
        elif kind == "unlink":
            yield from fs.unlink(op[1])
        elif kind == "rename":
            yield from fs.rename(op[1], op[2])
        elif kind == "rmdir":
            yield from fs.rmdir(op[1])
        elif kind == "chmod":
            yield from fs.chmod(op[1], 0o700)
        elif kind == "rebalance":
            _kind, path, dst = op
            sharding = host.stack.sharding
            src = sharding.shard_of_dir(path, len(host.shards))
            yield from host.shards[src].rebalance_dir(
                path, dst, host.sim.now)
        else:  # pragma: no cover - scenario typo guard
            raise AssertionError(f"unknown op {kind}")
    return True


#: every scenario: shard count, deterministic setup, the one operation
#: whose boundaries are exhaustively crashed.  The three acceptance
#: protocols (cross-shard rename, cross-shard link, replicated mkdir)
#: appear first; the rest cover the remaining intent-protected paths.
SCENARIOS = {
    "rename-cross-shard": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/g")],
    ),
    "rename-cross-shard-replace": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"),
               ("create", "/a/f"), ("create", "/b/g")],
        op=[("rename", "/a/f", "/b/g")],
    ),
    "rename-cross-shard-over-stub": dict(
        # /b/l is the last name of a hard-linked inode homed on shard 0:
        # the install replaces a stub and must drain a remote link drop.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/x"),
               ("link", "/a/x", "/b/l"), ("unlink", "/a/x"),
               ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/l")],
    ),
    "rename-cross-shard-over-symlink": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/t"),
               ("symlink", "/a/t", "/b/s"), ("create", "/a/f")],
        op=[("rename", "/a/f", "/b/s")],
    ),
    "link-cross-shard": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f")],
        op=[("link", "/a/f", "/b/l")],
    ),
    "link-via-stub": dict(
        # The fetch forwards through a stub to the inode's home shard.
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/c"),
               ("create", "/a/f"), ("link", "/a/f", "/b/l")],
        op=[("link", "/b/l", "/c/m")],
    ),
    "mkdir-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
    ),
    "mkdir-replicated-4shards": dict(
        shards=4,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
    ),
    "symlink-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b")],
        op=[("symlink", "/a", "/b/ln")],
    ),
    "rmdir-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("rmdir", "/a/sub")],
    ),
    "unlink-symlink-replicated": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("symlink", "/a", "/b/ln")],
        op=[("unlink", "/b/ln")],
    ),
    "unlink-stub": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f"),
               ("link", "/a/f", "/b/l")],
        op=[("unlink", "/b/l")],
    ),
    "setattr-dir-broadcast": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("chmod", "/a/sub")],
    ),
    "rename-replicated-dir-migrates-subtree": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/d"),
               ("create", "/a/d/f"), ("create", "/a/d/g")],
        op=[("rename", "/a/d", "/b/d")],
    ),
    # -- online re-partitioning: the migration is namespace-invisible
    #    (paths never change), so these drills lean on the structural
    #    invariants — reachability via the overridden routing, override
    #    tables identical everywhere, counters reconciled.
    "rebalance-dir-population": dict(
        shards=2,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g"),
               ("create", "/a/h")],
        op=[("rebalance", "/a", 1)],
        invisible=True,
    ),
    "rebalance-dir-with-stub": dict(
        # /a/f is hard-linked from /b: its inode must stay home behind a
        # stub while the name re-homes.
        shards=2,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("create", "/a/f"),
               ("link", "/a/f", "/b/l"), ("create", "/a/g")],
        op=[("rebalance", "/a", 1)],
        invisible=True,
    ),
    "rebalance-dir-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("create", "/a/f"), ("create", "/a/g")],
        op=[("rebalance", "/a", 2)],
        invisible=True,
        parallel=True,
    ),
    # -- parallel mirror broadcasts: same protocols, overlapped fan-out;
    #    ≥3 shards so at least two mirrors genuinely overlap.
    "mkdir-replicated-4shards-parallel": dict(
        shards=4,
        setup=[("mkdir", "/a")],
        op=[("mkdir", "/a/sub")],
        parallel=True,
    ),
    "symlink-replicated-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b")],
        op=[("symlink", "/a", "/b/ln")],
        parallel=True,
    ),
    "rmdir-replicated-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("rmdir", "/a/sub")],
        parallel=True,
    ),
    "setattr-dir-broadcast-parallel": dict(
        shards=4,
        setup=[("mkdir", "/a"), ("mkdir", "/a/sub")],
        op=[("chmod", "/a/sub")],
        parallel=True,
    ),
    "rename-replicated-dir-parallel": dict(
        shards=3,
        setup=[("mkdir", "/a"), ("mkdir", "/b"), ("mkdir", "/a/d"),
               ("create", "/a/d/f"), ("create", "/a/d/g")],
        op=[("rename", "/a/d", "/b/d")],
        parallel=True,
    ),
}

#: liveness probe: after recovery the tier must still serve mutations.
PROBE = [("create", "/a/probe"), ("unlink", "/a/probe")]


def _build(spec):
    cofs_config = CofsConfig(parallel_broadcasts=True) \
        if spec.get("parallel") else None
    host = ShardedCofs(
        n_clients=1, shards=spec["shards"], sharding=_split(spec["shards"]),
        cofs_config=cofs_config)
    host.run(_apply(host, spec["setup"]))
    return host


def _count_boundaries(spec):
    """The counting pass: images + total boundary count for a scenario."""
    host = _build(spec)
    sharding = host.stack.sharding
    pre = namespace_image(host.shards, sharding)
    schedule = CrashSchedule()
    arm_shards(host.shards, schedule)
    host.run(_apply(host, spec["op"]))
    disarm_shards(host.shards)
    post = namespace_image(host.shards, sharding)
    if spec.get("invisible"):
        # Re-homing migrations move rows between shards without touching
        # any path: the observable namespace must be *unchanged*.
        assert post == pre, "invisible op must not change the namespace"
    else:
        assert post != pre, "scenario op must change the namespace"
    # the clean run itself must satisfy every structural invariant
    check_tier_invariants(host.shards, sharding, images=(post,))
    return schedule.count, pre, post


def _selected(count):
    """All boundaries, or ~N per scenario under REPRO_CRASH_POINTS=N."""
    env = os.environ.get("REPRO_CRASH_POINTS")
    if not env:
        return range(count)
    bound = max(1, int(env))
    stride = max(1, -(-count // bound))
    return range(0, count, stride)


def _crash_at(spec, k):
    """Replay the scenario, crash at boundary ``k``; returns host + label."""
    host = _build(spec)
    schedule = CrashSchedule(armed=k)
    arm_shards(host.shards, schedule)
    crashed = []

    def run_op():
        try:
            yield from _apply(host, spec["op"])
        except CrashInjected as exc:
            crashed.append(exc)
        return True

    host.run(run_op())
    disarm_shards(host.shards)
    assert crashed, f"boundary {k} never fired"
    return host, crashed[0].label


def _drill(spec, k, pre, post, mode):
    host, label = _crash_at(spec, k)
    sharding = host.stack.sharding
    if mode == "all":
        host.run(recover_tier(host.shards))
    else:
        # Only the shard where the crash fired restarts; its recover()
        # drives the tier-wide repair against the survivors' live state.
        host.run(host.shards[label[1]].recover())
    check_tier_invariants(host.shards, sharding, images=(pre, post))
    host.run(_apply(host, PROBE))
    check_tier_invariants(host.shards, sharding)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_boundary_recovers_whole_tier_crash(name):
    spec = SCENARIOS[name]
    count, pre, post = _count_boundaries(spec)
    assert count >= 2, f"{name}: expected a multi-boundary protocol"
    for k in _selected(count):
        _drill(spec, k, pre, post, mode="all")


@pytest.mark.parametrize(
    "name",
    ["rename-cross-shard", "rename-cross-shard-over-stub",
     "link-cross-shard", "mkdir-replicated"],
)
def test_single_shard_crash_recovery_repairs_the_tier(name):
    """Crashing only the shard where the boundary fired: its recover()
    alone (tier passes against live peers) must restore the invariants."""
    spec = SCENARIOS[name]
    count, pre, post = _count_boundaries(spec)
    for k in _selected(count):
        _drill(spec, k, pre, post, mode="one")


def test_boundary_enumeration_is_exhaustive_and_large():
    """The acceptance floor: the three core protocols alone cross well
    over 30 distinct crash boundaries."""
    core = ["rename-cross-shard", "rename-cross-shard-replace",
            "rename-cross-shard-over-stub", "link-cross-shard",
            "link-via-stub", "mkdir-replicated", "mkdir-replicated-4shards"]
    total = sum(_count_boundaries(SCENARIOS[name])[0] for name in core)
    assert total >= 30, total
    grand = sum(
        _count_boundaries(spec)[0] for spec in SCENARIOS.values())
    assert grand > total


def test_coordinator_crash_mid_rename_no_stranded_name():
    """The exact gap PR 2 documented: coordinator dies after the detach
    commit, before the install.  The old name must reappear (rollback) —
    never a vanished file."""
    spec = SCENARIOS["rename-cross-shard"]
    count, pre, post = _count_boundaries(spec)
    # Find the boundary right after the detach transaction commits on the
    # coordinator (shard 0): the first ("commit", 0) the op crosses.
    host, label = _crash_at(spec, 0)
    seen = [label]
    k = 0
    while label != ("commit", 0):
        k += 1
        host, label = _crash_at(spec, k)
        seen.append(label)
    host.run(recover_tier(host.shards))
    observed = check_tier_invariants(
        host.shards, host.stack.sharding, images=(pre, post))
    assert observed == pre, (
        "a crash between detach and install must roll back", seen)
    # and the file is fully usable again
    host.run(_apply(host, [("rename", "/a/f", "/a/f2"),
                           ("unlink", "/a/f2")]))


def test_double_recovery_crash_during_completion_pass():
    """Recovery itself can crash: arm a fresh schedule during the tier
    recovery, let it die mid-completion, recover again — invariants must
    hold at every recovery boundary too."""
    spec = SCENARIOS["rename-cross-shard-over-stub"]
    count, pre, post = _count_boundaries(spec)
    # Crash mid-operation somewhere in the middle of the protocol.
    mid = count // 2
    # Counting pass for the recovery itself.
    host, _label = _crash_at(spec, mid)
    rec_schedule = CrashSchedule()
    arm_shards(host.shards, rec_schedule)
    host.run(recover_tier(host.shards))
    disarm_shards(host.shards)
    rec_count = rec_schedule.count
    assert rec_count >= 1
    for rk in _selected(rec_count):
        host, _label = _crash_at(spec, mid)
        schedule = CrashSchedule(armed=rk)
        arm_shards(host.shards, schedule)

        def recover_once():
            try:
                yield from recover_tier(host.shards)
            except CrashInjected:
                pass
            return True

        host.run(recover_once())
        disarm_shards(host.shards)
        # second, undisturbed recovery
        host.run(recover_tier(host.shards))
        check_tier_invariants(
            host.shards, host.stack.sharding, images=(pre, post))
        host.run(_apply(host, PROBE))
