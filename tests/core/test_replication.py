"""Primary/backup shard groups: log shipping, failover, fencing, rejoin.

These are the protocol-level tests for :class:`ReplicatedShard`: quorum
acknowledgement, backup table equality, transparent fenced failover,
zombie refusal, bounded-staleness follower reads, and snapshot rejoin.
The crash-point drills (kill a member at every RPC/commit boundary) live
in ``test_crash_points.py``; the differential oracle (a kill-primary run
must match a crash-free reference) in ``test_differential.py``.
"""

import pytest

from repro import obs
from repro.core.config import CofsConfig
from repro.core.faults import (
    check_group_invariants,
    check_tier_invariants,
    kill_backup,
    kill_primary,
    revive_member,
)
from repro.core.shard.routing import EpochFenced
from repro.core.sharding import SubtreeSharding
from repro.pfs.errors import FsError
from tests.core.conftest import ShardedCofs


@pytest.fixture(autouse=True)
def _trace_checked():
    """Every replication test runs traced; its history must satisfy the
    protocol invariants (quorum-before-ack, promotion order, recovery
    order, no follower-served mutations).  Tracing is charge-preserving,
    so the simulated results the assertions below check are unchanged."""
    tracer, _metrics = obs.enable()
    try:
        yield
        obs.TraceChecker(tracer).check_all()
    finally:
        obs.disable()


def _host(replicas=2, shards=2, **kwargs):
    return ShardedCofs(
        n_clients=1, shards=shards, replicas=replicas,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}), **kwargs)


def _populate(host, names=("f", "g", "h")):
    def setup():
        fs = host.mounts[0]
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/b")
        for name in names:
            fh = yield from fs.create(f"/a/{name}")
            yield from fs.close(fh)

    host.run(setup())


def _listing(host, path="/a"):
    def body():
        names = yield from host.mounts[0].readdir(path)
        stats = {}
        for name in names:
            stats[name] = (yield from host.mounts[0].stat(
                f"{path}/{name}")).nlink
        return stats

    return host.run(body())


# ---------------------------------------------------------------------------
# Log shipping
# ---------------------------------------------------------------------------

def test_shipping_keeps_backups_identical_and_acked_at_head():
    host = _host()
    _populate(host)
    for group in host.groups:
        assert group.lsn > 0 or group.shard_id == 1  # /b only has mirrors
        for backup in group.live_backups():
            assert group.acked[backup] == group.lsn
    check_group_invariants(host.groups)
    check_tier_invariants(host.primaries, host.stack.sharding)


def test_quorum_continues_after_a_backup_dies():
    """R=2: losing the backup shrinks the live membership to the primary
    alone (majority of one) — mutations keep flowing, and the dead
    backup rejoins later by snapshot at the new head."""
    host = _host()
    _populate(host)
    group = host.groups[0]
    backup = kill_backup(group)

    def more():
        fs = host.mounts[0]
        fh = yield from fs.create("/a/late")
        yield from fs.close(fh)

    host.run(more())
    assert group.live_backups() == []
    assert _listing(host) == {"f": 1, "g": 1, "h": 1, "late": 1}

    revive_member(backup)
    host.run(group.rejoin(backup))
    assert group.acked[backup] == group.lsn
    check_group_invariants(host.groups)
    check_tier_invariants(host.primaries, host.stack.sharding)


def test_three_replica_group_survives_one_backup_loss():
    host = _host(replicas=3, shards=2)
    _populate(host)
    group = host.groups[0]
    kill_backup(group)

    def more():
        fs = host.mounts[0]
        fh = yield from fs.create("/a/after")
        yield from fs.close(fh)

    host.run(more())
    # 2-of-3 quorum held: the surviving backup is at head.
    assert len(group.live_backups()) == 1
    check_group_invariants(host.groups)


# ---------------------------------------------------------------------------
# Failover
# ---------------------------------------------------------------------------

def test_failover_is_transparent_and_serves_the_full_namespace():
    host = _host()
    _populate(host)
    before = _listing(host)
    group = host.groups[0]
    old_epoch = group.epoch
    kill_primary(group)

    # The next client ops hit the dead primary, ride the router's retry
    # into the fenced promotion, and land on the new primary — no client
    # ever sees an error.
    assert _listing(host) == before
    assert group.failovers == 1
    assert group.epoch == old_epoch + 1
    assert group.last_failover is not None

    def mutate():
        fs = host.mounts[0]
        fh = yield from fs.create("/a/post")
        yield from fs.close(fh)
        yield from fs.mkdir("/a/sub")  # mirror broadcast from new primary
        return (yield from fs.readdir("/a"))

    names = host.run(mutate())
    assert set(names) == {"f", "g", "h", "post", "sub"}
    check_tier_invariants(host.primaries, host.stack.sharding)


def test_failover_composes_with_cross_shard_rename():
    """Cross-shard coordination names groups, not nodes: a rename whose
    destination group failed over lands on the promoted primary."""
    host = _host()
    _populate(host)
    kill_primary(host.groups[1])

    def move():
        yield from host.mounts[0].rename("/a/f", "/b/moved")
        return (yield from host.mounts[0].readdir("/b"))

    assert host.run(move()) == ["moved"]
    assert host.groups[1].failovers == 1
    check_tier_invariants(host.primaries, host.stack.sharding)
    check_group_invariants(host.groups)


def test_failover_without_live_backup_is_eio():
    host = _host()
    _populate(host)
    group = host.groups[0]
    kill_backup(group)
    kill_primary(group)
    with pytest.raises(FsError) as exc:
        host.run(group.failover())
    assert exc.value.code == "EIO"


# ---------------------------------------------------------------------------
# Zombie fencing
# ---------------------------------------------------------------------------

def test_resurrected_zombie_primary_is_fenced_until_rejoin():
    host = _host()
    _populate(host)
    group = host.groups[0]
    zombie = kill_primary(group)
    assert _listing(host)  # drives the failover
    assert group.failovers == 1

    # The zombie comes back with its pre-kill state and its shipper still
    # attached: its very first local commit fails the primaryship check
    # and the client is never acknowledged.
    revive_member(zombie)
    with pytest.raises(EpochFenced):
        host.run(zombie.setattr("/a/f", {"mode": 0o600}, host.sim.now))

    # The divergent local commit is discarded by the snapshot rejoin;
    # the member re-enters the quorum at the new primary's head.
    host.run(group.rejoin(zombie))
    assert group.acked[zombie] == group.lsn
    check_group_invariants(host.groups)
    mode = host.run(host.mounts[0].stat("/a/f")).mode
    assert mode != 0o600
    check_tier_invariants(host.primaries, host.stack.sharding)


def test_zombie_commit_that_survived_promotion_is_acked():
    """The at-least-once hazard: a concurrent committer's suffix ship
    can carry a transaction's record to the backup before the fence
    lands.  If the promoted primary provably holds the record
    (commit LSN ≤ its applied pointer), the zombie's ship must ack —
    fencing it would make the router retry a non-idempotent mutation."""
    host = _host()
    _populate(host)
    group = host.groups[0]
    old = group.primary
    head = group.lsn
    kill_primary(group)
    assert _listing(host)  # promotes the backup at applied == head
    assert group.promoted_from == (old, head)
    # A commit at or below the promoted applied pointer acks...
    host.run(group._ship(old, head))
    # ...anything past it is truly lost and fences.
    with pytest.raises(EpochFenced):
        host.run(group._ship(old, head + 1))


# ---------------------------------------------------------------------------
# Follower reads
# ---------------------------------------------------------------------------

def test_follower_reads_serve_from_an_in_sync_backup():
    host = _host(cofs_config=CofsConfig(
        follower_reads=True, follower_staleness=0))
    _populate(host)
    group = host.groups[0]
    backup = group.live_backups()[0]
    primary_reads = group.primary.dbsvc.read_txns
    backup_reads = backup.dbsvc.read_txns

    def reads():
        stats = []
        for name in ("f", "g", "h"):
            stats.append((yield from host.mounts[0].stat(f"/a/{name}")))
        return stats

    stats = host.run(reads())
    assert [s.nlink for s in stats] == [1, 1, 1]
    # The stats ran on the backup, not the primary.
    assert backup.dbsvc.read_txns > backup_reads
    assert group.primary.dbsvc.read_txns == primary_reads


def test_follower_reads_fall_back_to_the_primary_when_stale():
    host = _host(cofs_config=CofsConfig(
        follower_reads=True, follower_staleness=0))
    _populate(host)
    group = host.groups[0]
    backup = group.live_backups()[0]
    # Force staleness: pretend the backup is lagging the head.
    group.acked[backup] -= 1
    assert group.follower_for_read(0) is None
    assert group.follower_for_read(1) is backup
    primary_reads = group.primary.dbsvc.read_txns
    host.run(host.mounts[0].stat("/a/f"))
    assert group.primary.dbsvc.read_txns > primary_reads


def test_mutations_never_route_to_a_follower():
    host = _host(cofs_config=CofsConfig(
        follower_reads=True, follower_staleness=10))
    _populate(host)
    group = host.groups[0]
    backup = group.live_backups()[0]
    updates = backup.dbsvc.update_txns

    def mutate():
        yield from host.mounts[0].utime("/a/f", atime=1.0, mtime=2.0)

    host.run(mutate())
    # The backup's only new update transactions are shipped applies.
    assert backup.dbsvc.update_txns > updates  # the ship arrived
    check_group_invariants(host.groups)


# ---------------------------------------------------------------------------
# Concurrent recoveries (gate-bypassing recovery RPCs)
# ---------------------------------------------------------------------------

def test_concurrent_shard_recoveries_do_not_deadlock():
    """Regression: two shards recovering at once.  Each recovery's
    fence/reseat RPCs must bypass the *other* recovering shard's closed
    admission gate (``_recovery_dispatch``), or the two recoveries wait
    on each other forever."""
    host = ShardedCofs(
        n_clients=1, shards=2,
        sharding=SubtreeSharding({"/a": 0, "/b": 1}))
    _populate(host)
    epochs = [shard.epoch for shard in host.shards]

    host.run_all([shard.recover() for shard in host.shards])

    assert [shard.epoch for shard in host.shards] == \
        [epoch + 1 for epoch in epochs]
    assert all(shard._admission is None for shard in host.shards)
    check_tier_invariants(host.shards, host.stack.sharding)
    assert _listing(host) == {"f": 1, "g": 1, "h": 1}
