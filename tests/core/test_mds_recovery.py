"""COFS metadata-service crash recovery: the namespace survives."""

import pytest

from repro.core.config import CofsConfig
from repro.db.service import DbConfig
from repro.pfs import FsError
from tests.core.conftest import MountedCofs


def test_namespace_survives_mds_crash(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/proj")
        fh = yield from cfs.create("/proj/data")
        yield from cfs.write(fh, 0, data=b"payload")
        yield from cfs.close(fh)
        lost = yield from cofsx.mds.recover()
        names = yield from cfs.readdir("/proj")
        attr = yield from cfs.stat("/proj/data")
        fh = yield from cfs.open("/proj/data")
        data = yield from cfs.read(fh, 0, 7, want_data=True)
        yield from cfs.close(fh)
        return (lost, names, attr.size, data)

    lost, names, size, data = cofsx.run(main())
    assert lost == 0
    assert names == ["data"]
    assert size == 7
    assert data == b"payload"


def test_creates_work_after_recovery_without_vino_reuse(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/before")
        yield from cfs.close(fh)
        before = yield from cfs.stat("/before")
        yield from cofsx.mds.recover()
        fh = yield from cfs.create("/after")
        yield from cfs.close(fh)
        after = yield from cfs.stat("/after")
        return (before.ino, after.ino)

    before_ino, after_ino = cofsx.run(main())
    assert after_ino > before_ino


def test_async_mds_crash_loses_recent_namespace_changes():
    host = MountedCofs(
        n_clients=1,
        cofs_config=CofsConfig(db=DbConfig(sync_updates=False)),
    )
    cfs = host.mounts[0]

    def main():
        fh = yield from cfs.create("/durable")
        yield from cfs.close(fh)
        yield from host.mds.dbsvc.checkpoint()
        fh = yield from cfs.create("/volatile")
        yield from cfs.close(fh)
        lost = yield from host.mds.recover()
        names = yield from cfs.readdir("/")
        return (lost, names)

    lost, names = host.run(main())
    assert lost >= 1
    assert "durable" in names
    assert "volatile" not in names


def test_bucket_counters_survive_crash(cofsx, cfs):
    def main():
        for i in range(5):
            fh = yield from cfs.create(f"/f{i}")
            yield from cfs.close(fh)
        yield from cofsx.mds.recover()
        return cofsx.mds.bucket_counts()

    counts = cofsx.run(main())
    assert sum(counts.values()) == 5


# ---------------------------------------------------------------------------
# tier-wide crash drills (the sharded tier reuses this machinery)
# ---------------------------------------------------------------------------

from repro.core.faults import check_tier_invariants, skeleton_view
from repro.core.sharding import SubtreeSharding, recover_tier
from tests.core.conftest import ShardedCofs


def _split2(cofs_config=None):
    host = ShardedCofs(
        sharding=SubtreeSharding({"/a": 0, "/b": 1}),
        cofs_config=cofs_config,
    )

    def setup():
        yield from host.mounts[0].mkdir("/a")
        yield from host.mounts[0].mkdir("/b")

    host.run(setup())
    return host


def test_namespace_survives_whole_tier_crash():
    host = _split2()
    fs = host.mounts[0]

    def main():
        fh = yield from fs.create("/a/data")
        yield from fs.write(fh, 0, data=b"payload")
        yield from fs.close(fh)
        yield from fs.link("/a/data", "/b/alias")  # stub on shard 1
        lost = yield from recover_tier(host.shards)
        names_a = yield from fs.readdir("/a")
        names_b = yield from fs.readdir("/b")
        attr = yield from fs.stat("/b/alias")
        fh = yield from fs.open("/b/alias")
        data = yield from fs.read(fh, 0, 7, want_data=True)
        yield from fs.close(fh)
        return lost, names_a, names_b, attr, data

    lost, names_a, names_b, attr, data = host.run(main())
    assert lost == 0
    assert names_a == ["data"]
    assert names_b == ["alias"]
    assert attr.nlink == 2
    assert data == b"payload"
    check_tier_invariants(host.shards, host.stack.sharding)


def test_tier_recovery_with_migrated_vino_at_stride_boundary():
    """Whole-tier recovery must reseat each shard's vino stride above
    inodes that *migrated away* — including when the migrated vino is the
    highest of its class and every peer also just rebuilt."""
    host = _split2()
    fs = host.mounts[0]

    def main():
        for name in ("f1", "f2"):
            fh = yield from fs.create(f"/b/{name}")
            yield from fs.close(fh)
        top = yield from fs.stat("/b/f2")
        # migrate the newest shard-1-class inode onto shard 0
        yield from fs.rename("/b/f2", "/a/g")
        yield from recover_tier(host.shards)
        fh = yield from fs.create("/b/f3")
        yield from fs.close(fh)
        fresh = yield from fs.stat("/b/f3")
        return top, fresh

    top, fresh = host.run(main())
    assert top.ino % 2 == 0 and fresh.ino % 2 == 0  # shard 1's class
    assert fresh.ino > top.ino  # never re-issued despite the migration
    check_tier_invariants(host.shards, host.stack.sharding)


def test_skeleton_resync_after_shard_restores_older_journal_prefix():
    """A shard recovering from an older journal prefix (lazy log policy)
    must converge with its peers: missing replicas are copied back from
    the authoritative shard, and replicas whose authority lost them are
    removed everywhere — the pre-op image, exactly as a single async MDS
    loses its own recent changes."""
    host = _split2(cofs_config=CofsConfig(db=DbConfig(sync_updates=False)))
    fs = host.mounts[0]

    def main():
        yield from host.shards[1].dbsvc.checkpoint()  # shard 1: /a, /b only
        yield from fs.mkdir("/a/extra")   # coordinated by shard 0
        yield from fs.mkdir("/b/gone")    # coordinated by shard 1
        yield from host.shards[0].dbsvc.checkpoint()  # shard 0: everything
        lost = yield from recover_tier(host.shards)
        names_a = yield from fs.readdir("/a")
        names_b = yield from fs.readdir("/b")
        return lost, names_a, names_b

    lost, names_a, names_b = host.run(main())
    assert lost >= 1
    assert names_a == ["extra"]   # survived via shard 0's durable prefix
    assert names_b == []          # its authority lost it: gone everywhere
    assert skeleton_view(host.shards[0]) == skeleton_view(host.shards[1])
    check_tier_invariants(host.shards, host.stack.sharding)

    def still_writable():
        yield from fs.mkdir("/b/fresh")
        fh = yield from fs.create("/a/extra/file")
        yield from fs.close(fh)
        attr = yield from fs.stat("/a/extra/file")
        return attr

    attr = host.run(still_writable())
    assert attr.size == 0
    check_tier_invariants(host.shards, host.stack.sharding)


def test_skeleton_resync_replaces_a_reused_path_with_different_vino():
    """A replica holding a *different* object at the same path (divergent
    histories: rmdir + re-mkdir lost on the authority) must be replaced,
    not kept — membership-by-path alone would miss it."""
    host = _split2(cofs_config=CofsConfig(db=DbConfig(sync_updates=False)))
    fs = host.mounts[0]

    def main():
        yield from fs.mkdir("/b/gone")
        yield from host.shards[1].dbsvc.checkpoint()  # authority: old vino
        yield from fs.rmdir("/b/gone")
        yield from fs.mkdir("/b/gone")                # same path, new vino
        yield from host.shards[0].dbsvc.checkpoint()  # replica: new vino
        yield from recover_tier(host.shards)
        attr = yield from fs.stat("/b/gone")
        return attr

    attr = host.run(main())
    assert skeleton_view(host.shards[0]) == skeleton_view(host.shards[1])
    check_tier_invariants(host.shards, host.stack.sharding)
    # the authority's durable prefix wins: the original directory's vino
    rows1 = {r["vino"] for r in host.shards[1].db.table("inodes").all()}
    assert attr.ino in rows1


def test_skeleton_resync_nested_adds_keep_link_counts_consistent():
    """Adding a parent and its child directory in one resync must not
    double-count the parent's nlink (the authoritative row already
    counts the child)."""
    host = _split2(cofs_config=CofsConfig(db=DbConfig(sync_updates=False)))
    fs = host.mounts[0]

    def main():
        yield from host.shards[1].dbsvc.checkpoint()  # shard 1: /a, /b only
        yield from fs.mkdir("/a/extra")
        yield from fs.mkdir("/a/extra/deep")
        yield from host.shards[0].dbsvc.checkpoint()
        yield from recover_tier(host.shards)
        attr = yield from fs.stat("/a/extra")
        return attr

    attr = host.run(main())
    assert attr.nlink == 3  # itself, '.', and one subdirectory
    assert skeleton_view(host.shards[0]) == skeleton_view(host.shards[1])
    check_tier_invariants(host.shards, host.stack.sharding)
