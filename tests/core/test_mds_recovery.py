"""COFS metadata-service crash recovery: the namespace survives."""

import pytest

from repro.core.config import CofsConfig
from repro.db.service import DbConfig
from repro.pfs import FsError
from tests.core.conftest import MountedCofs


def test_namespace_survives_mds_crash(cofsx, cfs):
    def main():
        yield from cfs.mkdir("/proj")
        fh = yield from cfs.create("/proj/data")
        yield from cfs.write(fh, 0, data=b"payload")
        yield from cfs.close(fh)
        lost = yield from cofsx.mds.recover()
        names = yield from cfs.readdir("/proj")
        attr = yield from cfs.stat("/proj/data")
        fh = yield from cfs.open("/proj/data")
        data = yield from cfs.read(fh, 0, 7, want_data=True)
        yield from cfs.close(fh)
        return (lost, names, attr.size, data)

    lost, names, size, data = cofsx.run(main())
    assert lost == 0
    assert names == ["data"]
    assert size == 7
    assert data == b"payload"


def test_creates_work_after_recovery_without_vino_reuse(cofsx, cfs):
    def main():
        fh = yield from cfs.create("/before")
        yield from cfs.close(fh)
        before = yield from cfs.stat("/before")
        yield from cofsx.mds.recover()
        fh = yield from cfs.create("/after")
        yield from cfs.close(fh)
        after = yield from cfs.stat("/after")
        return (before.ino, after.ino)

    before_ino, after_ino = cofsx.run(main())
    assert after_ino > before_ino


def test_async_mds_crash_loses_recent_namespace_changes():
    host = MountedCofs(
        n_clients=1,
        cofs_config=CofsConfig(db=DbConfig(sync_updates=False)),
    )
    cfs = host.mounts[0]

    def main():
        fh = yield from cfs.create("/durable")
        yield from cfs.close(fh)
        yield from host.mds.dbsvc.checkpoint()
        fh = yield from cfs.create("/volatile")
        yield from cfs.close(fh)
        lost = yield from host.mds.recover()
        names = yield from cfs.readdir("/")
        return (lost, names)

    lost, names = host.run(main())
    assert lost >= 1
    assert "durable" in names
    assert "volatile" not in names


def test_bucket_counters_survive_crash(cofsx, cfs):
    def main():
        for i in range(5):
            fh = yield from cfs.create(f"/f{i}")
            yield from cfs.close(fh)
        yield from cofsx.mds.recover()
        return cofsx.mds.bucket_counts()

    counts = cofsx.run(main())
    assert sum(counts.values()) == 5
