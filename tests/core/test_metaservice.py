"""Direct tests of the metadata service (tables, delegation, counters)."""

import pytest

from repro.pfs import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK


def call(cofsx, method, *args):
    machine = cofsx.testbed.clients[0]
    return cofsx.run(
        machine.call(cofsx.testbed.mds, "cofsmds", method, args=args)
    )


def test_root_exists(cofsx):
    view = call(cofsx, "getattr", "/")
    assert view["kind"] == DIRECTORY
    assert view["vino"] == cofsx.mds.root_vino


def test_create_file_assigns_upath(cofsx):
    view = call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 7, 1.0)
    assert view["upath"] is not None
    assert view["upath"].startswith("/.cofs/")
    assert view["kind"] == FILE


def test_create_dir_has_no_upath(cofsx):
    view = call(cofsx, "create_node", "/d", DIRECTORY, 0o755, 0, 0,
                "node0", 0, 1.0)
    assert view["upath"] is None
    assert view["nlink"] == 2


def test_parent_mtime_updated_by_create(cofsx):
    call(cofsx, "create_node", "/d", DIRECTORY, 0o755, 0, 0, "node0", 0, 5.0)
    call(cofsx, "create_node", "/d/f", FILE, 0o644, 0, 0, "node0", 0, 9.0)
    parent = call(cofsx, "getattr", "/d")
    assert parent["mtime"] == 9.0
    assert parent["ctime"] == 9.0


def test_duplicate_create_raises(cofsx):
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    with pytest.raises(FsError) as err:
        call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 2.0)
    assert err.value.code == "EEXIST"


def test_bucket_counter_tracks_creates_and_unlinks(cofsx):
    view = call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    bucket = view["upath"].rpartition("/")[0]
    assert cofsx.mds.bucket_counts()[bucket] == 1
    upath, last = call(cofsx, "unlink", "/f", 2.0)
    assert last is True
    assert upath == view["upath"]
    assert cofsx.mds.bucket_counts()[bucket] == 0


def test_setattr_rejects_unknown_fields(cofsx):
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    with pytest.raises(FsError) as err:
        call(cofsx, "setattr", "/f", {"nlink": 9}, 2.0)
    assert err.value.code == "EINVAL"


def test_open_map_marks_delegation(cofsx):
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    view = call(cofsx, "open_map", "/f", True, 2.0)
    assert view["delegated"] is True
    again = call(cofsx, "getattr", "/f")
    assert again["delegated"] is True


def test_close_sync_clears_delegation_and_updates_size(cofsx):
    view = call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    call(cofsx, "open_map", "/f", True, 2.0)
    call(cofsx, "close_sync", view["vino"], 4096, 3.0, 3.0)
    after = call(cofsx, "getattr", "/f")
    assert after["delegated"] is False
    assert after["size"] == 4096
    assert after["mtime"] == 3.0


def test_open_map_read_does_not_delegate(cofsx):
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    view = call(cofsx, "open_map", "/f", False, 2.0)
    assert view["delegated"] is False


def test_readdir_uses_parent_index(cofsx):
    call(cofsx, "create_node", "/d", DIRECTORY, 0o755, 0, 0, "node0", 0, 1.0)
    for name in ("z", "a", "m"):
        call(cofsx, "create_node", f"/d/{name}", FILE, 0o644, 0, 0,
             "node0", 0, 1.0)
    assert call(cofsx, "readdir", "/d") == ["a", "m", "z"]


def test_rename_replacing_last_link_reports_upath(cofsx):
    a = call(cofsx, "create_node", "/a", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    b = call(cofsx, "create_node", "/b", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    replaced, last = call(cofsx, "rename", "/a", "/b", 2.0)
    assert last is True
    assert replaced == b["upath"]
    assert call(cofsx, "getattr", "/b")["vino"] == a["vino"]


def test_symlink_round_trip(cofsx):
    call(cofsx, "create_node", "/ln", SYMLINK, 0o777, 0, 0, "node0", 0,
         1.0, "/target")
    assert call(cofsx, "readlink", "/ln") == "/target"


def test_read_txns_do_not_touch_the_log(cofsx):
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    forces_before = cofsx.mds.dbsvc.log.forces
    for _ in range(5):
        call(cofsx, "getattr", "/f")
        call(cofsx, "readdir", "/")
    assert cofsx.mds.dbsvc.log.forces == forces_before


def test_update_txns_force_the_log(cofsx):
    forces_before = cofsx.mds.dbsvc.log.forces
    call(cofsx, "create_node", "/f", FILE, 0o644, 0, 0, "node0", 0, 1.0)
    assert cofsx.mds.dbsvc.log.forces > forces_before


def test_same_parent_rename_replacing_a_dir_drops_parent_nlink(cofsx):
    """Replacing an empty sibling directory must cost the shared parent
    one link: the body reads old_parent and new_parent as two
    independent copies of the SAME row, and only the old_parent copy is
    written back on a same-parent rename — the replaced subdirectory's
    decrement used to land on the discarded new_parent copy."""
    call(cofsx, "create_node", "/a", DIRECTORY, 0o755, 0, 0, "node0", 0, 1.0)
    call(cofsx, "create_node", "/b", DIRECTORY, 0o755, 0, 0, "node0", 0, 2.0)
    assert call(cofsx, "getattr", "/")["nlink"] == 4
    call(cofsx, "rename", "/a", "/b", 3.0)
    assert call(cofsx, "getattr", "/")["nlink"] == 3
    # the cross-parent replace leg writes both copies and stays correct
    call(cofsx, "create_node", "/b/c", DIRECTORY, 0o755, 0, 0,
         "node0", 0, 4.0)
    call(cofsx, "create_node", "/d", DIRECTORY, 0o755, 0, 0, "node0", 0, 5.0)
    call(cofsx, "rename", "/b/c", "/d", 6.0)
    assert call(cofsx, "getattr", "/")["nlink"] == 4
    assert call(cofsx, "getattr", "/b")["nlink"] == 2
