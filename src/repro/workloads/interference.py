"""Interference: how one application's metadata storm hurts bystanders.

The paper's core production observation (§I): "file system overheads tend
to affect the whole system (not only the 'infringing' applications), as
file servers are kept overloaded and all requests are delayed."  This
workload reproduces that measurement directly:

- an *aggressor* application runs a parallel create storm in a shared
  output directory on part of the cluster;
- a *bystander* on another node runs ``ls -l`` against that directory (the
  classic "user checks the job's output while it runs" support ticket,
  and one of the paper's two named triggers: "parallel file creation or
  large directory traversals");
- the bystander's listing latencies are recorded with the storm off and
  with the storm on.

Under the bare parallel FS the storm saturates the token server, the log
disks and the metadata disks that every node shares, so the bystander
suffers even though it touches none of the contended objects.  COFS keeps
the storm's traffic off the hot shared structures, which also protects the
bystander.
"""

from dataclasses import dataclass, field

from repro.sim.stats import SummaryStats
from repro.workloads.metarates import _mkdir_p


@dataclass
class InterferenceConfig:
    """One interference measurement."""

    storm_nodes: int = 6            # aggressor nodes (1..storm_nodes)
    storm_files_per_node: int = 256
    bystander_ops: int = 10         # listings per pass
    bystander_think_ms: float = 25.0
    stat_entries: int = 20          # `ls -l` stats the first K entries
    preexisting_files: int = 64     # directory content before the storm
    storm_directory: str = "/app/output"


@dataclass
class InterferenceResult:
    config: InterferenceConfig
    quiet_ms: SummaryStats = field(default_factory=SummaryStats)
    stormy_ms: SummaryStats = field(default_factory=SummaryStats)

    @property
    def slowdown(self):
        """Bystander latency multiplier caused by the storm."""
        if self.quiet_ms.mean == 0:
            return float("inf")
        return self.stormy_ms.mean / self.quiet_ms.mean


def run_interference(stack, config=None):
    """Measure bystander latency with and without a create storm.

    Node 0 is the bystander; nodes 1..storm_nodes run the aggressor.
    Returns an :class:`InterferenceResult`.
    """
    config = config or InterferenceConfig()
    sim = stack.testbed.sim
    result = InterferenceResult(config=config)
    if config.storm_nodes + 1 > stack.n_nodes:
        raise ValueError("testbed too small for storm_nodes + bystander")

    bystander = stack.mount(0)

    def bystander_pass(recorder):
        for _ in range(config.bystander_ops):
            yield sim.timeout(config.bystander_think_ms)
            start = sim.now
            names = yield from bystander.readdir(config.storm_directory)
            for name in names[: config.stat_entries]:
                yield from bystander.stat(f"{config.storm_directory}/{name}")
            recorder.add(sim.now - start)

    def storm(node):
        fs = stack.mount(node)
        for index in range(config.storm_files_per_node):
            path = f"{config.storm_directory}/f.{node:03d}.{index:05d}"
            fh = yield from fs.create(path)
            yield from fs.close(fh)

    def orchestrate():
        yield from _mkdir_p(bystander, config.storm_directory)
        # Pre-populate the directory (from an aggressor node, so the
        # bystander's listing is cold either way).
        setup = stack.mount(1)
        for index in range(config.preexisting_files):
            fh = yield from setup.create(
                f"{config.storm_directory}/old.{index:05d}"
            )
            yield from setup.close(fh)
        # Quiet baseline.
        yield from bystander_pass(result.quiet_ms)
        # Storm on.
        storm_procs = [
            sim.process(storm(node), name=f"storm-{node}")
            for node in range(1, config.storm_nodes + 1)
        ]
        measure = sim.process(
            bystander_pass(result.stormy_ms), name="bystander"
        )
        yield sim.all_of([measure] + storm_procs)

    sim.run_process(orchestrate(), name="interference")
    return result
