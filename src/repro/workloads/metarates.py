"""The metarates benchmark (UCAR / NCAR Scientific Computing Division).

Measures the rate of parallel metadata transactions on a file system.  The
paper (§II-A) uses four operations — create, stat, utime and open/close —
measured consecutively, all files in one shared directory:

- **create**: all processes create their files in parallel (timed), then the
  files are deleted;
- **stat / utime / open-close**: the *first* process creates every file
  sequentially, all processes then access their partitions in parallel
  (timed), and the first process deletes everything.

The create-by-first-node setup is load-bearing: it leaves the creator
holding exclusive dirty attribute tokens, so the parallel access phase pays
revocations — until directory size exceeds the creator's token cache, the
effect the paper's Fig. 5 shows as an expensive phase that converges.

Beyond the paper's four ops, the sharded-tier experiments add:

- **mdcreate** — metadata-only create (``mknod``: one MDS transaction, no
  underlying object), exposing the metadata tier's own create ceiling
  that the underlying-FS-bound full create hides (COFS stacks only);
- **mkdir / rmdir** — replicated-mutation latency probes (each pays one
  mirror RPC per extra shard, the cost parallel broadcasts attack);
- ``rank_dir_names`` — explicit per-rank directories for *skewed*
  layouts (e.g. names that all hash onto one shard), paired with
  ``assume_seeded`` so a before/after-rebalance pair of runs can reuse
  one migrated file population.
"""

from dataclasses import dataclass, field

from repro.sim.stats import OpRecorder

OPS = ("create", "stat", "utime", "open")


@dataclass
class MetaratesConfig:
    """One metarates run."""

    nodes: int = 1
    procs_per_node: int = 1
    files_per_proc: int = 64
    directory: str = "/bench/shared"
    ops: tuple = OPS
    #: delete the files between phases (the benchmark always does; exposed
    #: for tests that inspect the tree afterwards).
    cleanup: bool = True
    #: give every rank its own subdirectory under ``directory`` instead of
    #: the shared one — the many-directories regime where a sharded
    #: metadata tier (partitioned by parent directory) spreads its load.
    private_dirs: bool = False
    #: explicit per-rank directory names under ``directory`` (implies the
    #: private-dirs regime).  Lets an experiment construct a *skewed*
    #: layout — e.g. names that all hash to one metadata shard — to model
    #: organic hot spots the online re-balancer must dissolve.
    rank_dir_names: tuple = ()
    #: skip the sequential seeding of access phases (stat/utime/open):
    #: the files already exist from an earlier run on the same stack.
    #: Lets before/after-rebalance runs reuse one (migrated) population.
    assume_seeded: bool = False

    @property
    def n_procs(self):
        return self.nodes * self.procs_per_node

    @property
    def total_files(self):
        return self.n_procs * self.files_per_proc

    @property
    def uses_private_dirs(self):
        return self.private_dirs or bool(self.rank_dir_names)


@dataclass
class MetaratesResult:
    """Per-operation latency summaries plus phase wall times."""

    config: MetaratesConfig
    recorder: OpRecorder
    phase_wall_ms: dict = field(default_factory=dict)

    def mean_ms(self, op):
        """Average time per operation, as the paper's figures report."""
        return self.recorder.mean(op)

    def rate_per_s(self, op):
        """Aggregate operations/second for the timed phase."""
        wall = self.phase_wall_ms.get(op)
        if not wall:
            return 0.0
        return self.recorder.count(op) / (wall / 1e3)


def _file_name(directory, rank, index):
    return f"{directory}/f.{rank:04d}.{index:06d}"


def _mkdir_p(fs, path):
    """Coroutine: create all missing components of ``path``."""
    from repro.pfs.errors import FsError

    parts = [p for p in path.split("/") if p]
    prefix = ""
    for part in parts:
        prefix = f"{prefix}/{part}"
        try:
            yield from fs.mkdir(prefix)
        except FsError as exc:
            if exc.code != "EEXIST":
                raise


def run_metarates(stack, config):
    """Run metarates against a mounted stack; returns the result.

    Drives the stack's simulator to completion (the stack must be idle).
    """
    sim = stack.testbed.sim
    recorder = OpRecorder(keep_samples=True)
    result = MetaratesResult(config=config, recorder=recorder)

    def rank_of(node, proc):
        return node * config.procs_per_node + proc

    # Per-rank path lists, built once: the same strings are walked millions
    # of times, and reusing the objects keeps downstream memo lookups cheap.
    _rank_paths = {}

    def dir_of(rank):
        if config.rank_dir_names:
            return f"{config.directory}/{config.rank_dir_names[rank]}"
        if config.private_dirs:
            return f"{config.directory}/r{rank:04d}"
        return config.directory

    def paths_of(rank):
        got = _rank_paths.get(rank)
        if got is None:
            got = _rank_paths[rank] = [
                _file_name(dir_of(rank), rank, index)
                for index in range(config.files_per_proc)
            ]
        return got

    def worker(op, node, proc):
        fs = stack.mount(node, proc)
        rank = rank_of(node, proc)
        for path in paths_of(rank):
            start = sim.now
            if op == "create":
                fh = yield from fs.create(path)
                yield from fs.close(fh)
            elif op == "stat":
                yield from fs.stat(path)
            elif op == "utime":
                yield from fs.utime(path)
            elif op == "open":
                fh = yield from fs.open(path)
                yield from fs.close(fh)
            elif op == "mdcreate":
                # Metadata-only create: one MDS transaction, no underlying
                # object — the MDS-ceiling probe (COFS stacks only).
                yield from fs.mknod(path)
            elif op == "mkdir":
                yield from fs.mkdir(path)
            elif op == "rmdir":
                yield from fs.rmdir(path)
            else:
                raise ValueError(f"unknown metarates op: {op}")
            recorder.record(op, sim.now - start)

    def all_ranks():
        for node in range(config.nodes):
            for proc in range(config.procs_per_node):
                yield node, proc

    def seq_create_all(fs):
        for node, proc in all_ranks():
            for path in paths_of(rank_of(node, proc)):
                fh = yield from fs.create(path)
                yield from fs.close(fh)

    def seq_delete_all(fs):
        for node, proc in all_ranks():
            for path in paths_of(rank_of(node, proc)):
                yield from fs.unlink(path)

    def seq_mkdir_all(fs):
        for node, proc in all_ranks():
            for path in paths_of(rank_of(node, proc)):
                yield from fs.mkdir(path)

    def parallel_phase(op):
        procs = [
            sim.process(worker(op, node, proc), name=f"mr-{op}-{node}.{proc}")
            for node, proc in all_ranks()
        ]
        start = sim.now
        yield sim.all_of(procs)
        result.phase_wall_ms[op] = sim.now - start

    def parallel_remove(op):
        def remover(node, proc):
            fs = stack.mount(node, proc)
            for path in paths_of(rank_of(node, proc)):
                if op == "rmdir":
                    yield from fs.rmdir(path)
                else:
                    yield from fs.unlink(path)

        procs = [
            sim.process(remover(node, proc), name=f"mr-del-{node}.{proc}")
            for node, proc in all_ranks()
        ]
        yield sim.all_of(procs)

    def orchestrate():
        # Sequential phases run as child processes rather than `yield from`
        # delegation: every resume of a nested op would otherwise traverse
        # the orchestrator's frame too (pure harness overhead).  Each spawn
        # adds one zero-delay turn at a quiescent phase boundary, so
        # virtual timings are unaffected.
        first = stack.mount(0, 0)

        def setup():
            from repro.pfs.errors import FsError

            yield from _mkdir_p(first, config.directory)
            if config.uses_private_dirs:
                for node, proc in all_ranks():
                    try:
                        yield from first.mkdir(dir_of(rank_of(node, proc)))
                    except FsError as exc:
                        # A re-run on the same stack (before/after-
                        # rebalance comparisons) finds them already there.
                        if exc.code != "EEXIST":
                            raise

        yield sim.process(setup(), name="mr-setup")
        for op in config.ops:
            if op in ("create", "mdcreate", "mkdir"):
                # Create-like phases: make the namespace entries in
                # parallel (timed), then drop them again.
                yield from parallel_phase(op)
                if config.cleanup:
                    yield from parallel_remove(
                        "rmdir" if op == "mkdir" else "unlink")
            elif op == "rmdir":
                yield sim.process(seq_mkdir_all(first), name="mr-seed")
                yield from parallel_phase("rmdir")
            else:
                if not config.assume_seeded:
                    yield sim.process(seq_create_all(first), name="mr-seed")
                yield from parallel_phase(op)
                if config.cleanup:
                    yield sim.process(seq_delete_all(first), name="mr-drain")

    sim.run_process(orchestrate(), name="metarates")
    return result
