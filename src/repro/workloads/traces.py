"""A synthetic production mix, after the paper's cluster description.

§II: "Such clusters ... have a very heterogeneous workload corresponding
to different projects, comprising both large parallel applications spanning
across many nodes, and large amounts of relatively small jobs."  This
workload runs that mix concurrently from one seed:

- a parallel application checkpointing into a shared directory at
  intervals (half of the nodes),
- a stream of small jobs writing outputs into a shared results directory
  (the other half),
- an interactive user listing busy directories now and then.

The result records per-activity latency summaries, so a single run shows
how each class of user experiences the file system under the full mix.
"""

from dataclasses import dataclass, field

from repro.sim.stats import SummaryStats
from repro.units import MB
from repro.workloads.metarates import _mkdir_p


@dataclass
class TraceConfig:
    """One synthetic production window."""

    duration_ms: float = 4_000.0
    app_nodes: int = 4              # checkpointing application
    app_checkpoint_every_ms: float = 900.0
    app_bytes_per_node: int = 2 * MB
    job_nodes: int = 4              # small-job stream (next node range)
    job_every_ms: float = 60.0      # per job node, mean inter-arrival
    job_output_bytes: int = 128 * 1024
    listing_every_ms: float = 500.0
    seed_stream: str = "trace"


@dataclass
class TraceResult:
    config: TraceConfig
    checkpoint_ms: SummaryStats = field(default_factory=SummaryStats)
    job_ms: SummaryStats = field(default_factory=SummaryStats)
    listing_ms: SummaryStats = field(default_factory=SummaryStats)
    jobs_completed: int = 0
    checkpoints_completed: int = 0

    def summary(self):
        """A compact dict for reports."""
        return {
            "checkpoint_ms": self.checkpoint_ms.mean,
            "job_ms": self.job_ms.mean,
            "listing_ms": self.listing_ms.mean,
            "jobs_completed": self.jobs_completed,
            "checkpoints": self.checkpoints_completed,
        }


def run_trace(stack, config=None):
    """Run the production mix on a stack; needs app_nodes + job_nodes + 1
    client nodes (the last node is the interactive user)."""
    config = config or TraceConfig()
    sim = stack.testbed.sim
    rng = stack.testbed.streams.stream(config.seed_stream)
    result = TraceResult(config=config)
    needed = config.app_nodes + config.job_nodes + 1
    if needed > stack.n_nodes:
        raise ValueError(f"trace needs {needed} client nodes")

    app_dir = "/project/checkpoints"
    job_dir = "/project/results"
    deadline = config.duration_ms

    def app_node(node, round_counter):
        fs = stack.mount(node)
        round_index = 0
        while sim.now < deadline:
            yield sim.timeout(config.app_checkpoint_every_ms)
            start = sim.now
            path = f"{app_dir}/ckpt.{round_index:04d}.n{node:03d}"
            fh = yield from fs.create(path)
            yield from fs.write(fh, 0, size=config.app_bytes_per_node)
            yield from fs.close(fh)
            result.checkpoint_ms.add(sim.now - start)
            round_counter[0] += 1
            round_index += 1

    def job_node(node):
        fs = stack.mount(node)
        job_index = 0
        while sim.now < deadline:
            gap = rng.expovariate(1.0 / config.job_every_ms)
            yield sim.timeout(gap)
            start = sim.now
            path = f"{job_dir}/out.n{node:03d}.{job_index:05d}"
            fh = yield from fs.create(path)
            yield from fs.write(fh, 0, size=config.job_output_bytes)
            yield from fs.close(fh)
            result.job_ms.add(sim.now - start)
            result.jobs_completed += 1
            job_index += 1

    def interactive(node):
        fs = stack.mount(node)
        targets = [job_dir, app_dir]
        index = 0
        while sim.now < deadline:
            yield sim.timeout(config.listing_every_ms)
            start = sim.now
            names = yield from fs.readdir(targets[index % len(targets)])
            for name in names[:10]:
                yield from fs.stat(f"{targets[index % len(targets)]}/{name}")
            result.listing_ms.add(sim.now - start)
            index += 1

    def orchestrate():
        first = stack.mount(0)
        yield from _mkdir_p(first, app_dir)
        yield from _mkdir_p(first, job_dir)
        counter = [0]
        procs = []
        for node in range(config.app_nodes):
            procs.append(sim.process(app_node(node, counter)))
        for node in range(config.app_nodes,
                          config.app_nodes + config.job_nodes):
            procs.append(sim.process(job_node(node)))
        procs.append(sim.process(interactive(needed - 1)))
        yield sim.all_of(procs)
        result.checkpoints_completed = counter[0]

    sim.run_process(orchestrate(), name="trace")
    return result
