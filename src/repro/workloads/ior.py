"""The IOR benchmark (LLNL), POSIX interface.

Aggregate data rates for parallel and sequential read/write to shared or
separate files.  The paper (§IV) runs aggregate sizes of 256 MB, 1 GB and
4 GB through the POSIX API; when using separate files, each process's file
is the aggregate size divided by the number of processes.  Reads follow
writes within a run, so node-local caches are warm — the setup behind
Table I's "small separate files" rows.
"""

from dataclasses import dataclass, field

from repro.pfs.types import OpenFlags
from repro.units import MB, to_mb_per_s

SEQUENTIAL = "seq"
RANDOM = "random"
SEPARATE = "separate"
SHARED = "shared"


@dataclass
class IorConfig:
    """One IOR run (a write phase followed by a read phase)."""

    nodes: int = 1
    procs_per_node: int = 1
    aggregate_bytes: int = 256 * MB
    xfer_bytes: int = 1 * MB
    pattern: str = SEQUENTIAL        # "seq" or "random"
    target: str = SEPARATE           # "separate" or "shared"
    directory: str = "/ior"
    do_read: bool = True
    do_write: bool = True
    #: IOR's ``-C`` (reorderTasks): in shared-file mode each rank reads the
    #: segment its neighbour wrote, so reads measure the file system rather
    #: than the local cache.  Separate files are always read back by their
    #: writer (there is no other rank that could open them in IOR).
    reorder_tasks: bool = True

    @property
    def n_procs(self):
        return self.nodes * self.procs_per_node

    @property
    def block_bytes(self):
        """Bytes handled by each process."""
        return self.aggregate_bytes // self.n_procs


@dataclass
class IorResult:
    """Aggregate bandwidths, as IOR reports."""

    config: IorConfig
    write_wall_ms: float = 0.0
    read_wall_ms: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def write_mbps(self):
        if not self.write_wall_ms:
            return 0.0
        return to_mb_per_s(self.config.aggregate_bytes / self.write_wall_ms)

    @property
    def read_mbps(self):
        if not self.read_wall_ms:
            return 0.0
        return to_mb_per_s(self.config.aggregate_bytes / self.read_wall_ms)


def _target_path(config, rank):
    if config.target == SHARED:
        return f"{config.directory}/data"
    return f"{config.directory}/data.{rank:04d}"


def _chunk_offsets(config, rank, rng):
    """The xfer-granular offsets this rank touches, in access order."""
    block = config.block_bytes
    base = rank * block if config.target == SHARED else 0
    offsets = list(range(base, base + block, config.xfer_bytes))
    if config.pattern == RANDOM:
        rng.shuffle(offsets)
    return offsets


def run_ior(stack, config):
    """Run IOR against a mounted stack; returns the result."""
    sim = stack.testbed.sim
    streams = stack.testbed.streams
    result = IorResult(config=config)

    def rank_of(node, proc):
        return node * config.procs_per_node + proc

    def all_ranks():
        for node in range(config.nodes):
            for proc in range(config.procs_per_node):
                yield node, proc

    def writer(node, proc):
        fs = stack.mount(node, proc)
        rank = rank_of(node, proc)
        path = _target_path(config, rank)
        rng = streams.stream(f"ior.write.{rank}")
        if config.target == SHARED:
            # Every rank opens the shared file; rank 0 created it in setup.
            fh = yield from fs.open(path, OpenFlags.RDWR)
        else:
            fh = yield from fs.create(path)
        for offset in _chunk_offsets(config, rank, rng):
            span = min(config.xfer_bytes, config.block_bytes)
            yield from fs.write(fh, offset, size=span)
        yield from fs.close(fh)

    def reader(node, proc):
        fs = stack.mount(node, proc)
        rank = rank_of(node, proc)
        read_rank = rank
        if config.target == SHARED and config.reorder_tasks:
            read_rank = (rank + 1) % config.n_procs
        path = _target_path(config, rank)
        rng = streams.stream(f"ior.read.{rank}")
        fh = yield from fs.open(path, OpenFlags.RDONLY)
        for offset in _chunk_offsets(config, read_rank, rng):
            span = min(config.xfer_bytes, config.block_bytes)
            yield from fs.read(fh, offset, span)
        yield from fs.close(fh)

    def phase(factory, label):
        procs = [
            sim.process(factory(node, proc), name=f"ior-{label}-{node}.{proc}")
            for node, proc in all_ranks()
        ]
        start = sim.now
        yield sim.all_of(procs)
        return sim.now - start

    def orchestrate():
        from repro.workloads.metarates import _mkdir_p

        first = stack.mount(0, 0)
        yield from _mkdir_p(first, config.directory)
        if config.target == SHARED:
            fh = yield from first.create(_target_path(config, 0))
            yield from first.close(fh)
        if config.do_write:
            result.write_wall_ms = yield from phase(writer, "write")
        if config.do_read:
            result.read_wall_ms = yield from phase(reader, "read")

    sim.run_process(orchestrate(), name="ior")
    return result
