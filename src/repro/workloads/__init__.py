"""Workload generators: the benchmarks the paper measures with.

- :mod:`repro.workloads.metarates` — the UCAR/NCAR metarates benchmark
  (parallel metadata transaction rates: create, stat, utime, open/close);
- :mod:`repro.workloads.ior` — LLNL's IOR v2 (aggregate data rates for
  sequential/random read/write to shared or separate files);
- :mod:`repro.workloads.apps` — application-shaped workloads from the
  paper's introduction (parallel checkpoint dumps, bundles of small jobs
  writing into a shared results directory).
"""

from repro.workloads.ior import IorConfig, IorResult, run_ior
from repro.workloads.metarates import (
    MetaratesConfig,
    MetaratesResult,
    run_metarates,
)

__all__ = [
    "IorConfig",
    "IorResult",
    "MetaratesConfig",
    "MetaratesResult",
    "run_metarates",
]
