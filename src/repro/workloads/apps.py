"""Application-shaped workloads from the paper's motivation (§I-II).

Two patterns drove the observed production slowdowns:

- **parallel checkpointing** — a large parallel application where every node
  dumps its state into a per-node file in one shared checkpoint directory,
  at intervals;
- **job bundles** — large numbers of loosely coupled small jobs, each
  writing its outputs into a shared results directory.

Both hammer the same pathology: lots of files created in parallel in a
single shared directory.
"""

from dataclasses import dataclass, field

from repro.sim.stats import SummaryStats
from repro.units import MB
from repro.workloads.metarates import _mkdir_p


@dataclass
class CheckpointConfig:
    """A parallel application writing periodic checkpoints."""

    nodes: int = 8
    rounds: int = 3
    bytes_per_node: int = 8 * MB
    compute_ms: float = 500.0        # think time between checkpoints
    directory: str = "/app/checkpoints"


@dataclass
class CheckpointResult:
    config: CheckpointConfig
    round_wall_ms: list = field(default_factory=list)
    create_ms: SummaryStats = field(default_factory=SummaryStats)

    @property
    def mean_round_ms(self):
        return sum(self.round_wall_ms) / len(self.round_wall_ms)


def run_checkpoint(stack, config):
    """Run the checkpoint workload; returns per-round wall times."""
    sim = stack.testbed.sim
    result = CheckpointResult(config=config)

    def node_round(node, round_index):
        fs = stack.mount(node)
        path = f"{config.directory}/ckpt.{round_index:03d}.n{node:04d}"
        t0 = sim.now
        fh = yield from fs.create(path)
        result.create_ms.add(sim.now - t0)
        yield from fs.write(fh, 0, size=config.bytes_per_node)
        yield from fs.close(fh)

    def orchestrate():
        yield from _mkdir_p(stack.mount(0), config.directory)
        for round_index in range(config.rounds):
            yield sim.timeout(config.compute_ms)
            start = sim.now
            procs = [
                sim.process(node_round(node, round_index))
                for node in range(config.nodes)
            ]
            yield sim.all_of(procs)
            result.round_wall_ms.append(sim.now - start)

    sim.run_process(orchestrate(), name="checkpoint")
    return result


@dataclass
class JobBundleConfig:
    """A bundle of small independent jobs sharing a results directory."""

    jobs: int = 64
    nodes: int = 8
    output_bytes: int = 256 * 1024
    job_compute_ms: float = 50.0
    directory: str = "/results"


@dataclass
class JobBundleResult:
    config: JobBundleConfig
    makespan_ms: float = 0.0
    job_ms: SummaryStats = field(default_factory=SummaryStats)

    @property
    def jobs_per_second(self):
        return self.config.jobs / (self.makespan_ms / 1e3)


def run_job_bundle(stack, config):
    """Run the job bundle; jobs are dealt round-robin across nodes."""
    sim = stack.testbed.sim
    result = JobBundleResult(config=config)

    def job(index):
        node = index % config.nodes
        fs = stack.mount(node)
        start = sim.now
        yield sim.timeout(config.job_compute_ms)
        fh = yield from fs.create(f"{config.directory}/out.{index:05d}")
        yield from fs.write(fh, 0, size=config.output_bytes)
        yield from fs.close(fh)
        result.job_ms.add(sim.now - start)

    def orchestrate():
        yield from _mkdir_p(stack.mount(0), config.directory)
        start = sim.now
        procs = [sim.process(job(i)) for i in range(config.jobs)]
        yield sim.all_of(procs)
        result.makespan_ms = sim.now - start

    sim.run_process(orchestrate(), name="job-bundle")
    return result
