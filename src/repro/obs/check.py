"""Trace-checked invariants: causal orderings the prose invariants promise.

The repo's correctness story (ROADMAP "Invariants") is enforced today by
end-state oracles — table scans after the fact.  :class:`TraceChecker`
closes the gap in the middle: it reads a finished trace and asserts that
the *history* obeyed the protocol, not just that the final state does.

Checks:

1. **quorum-ack before client-ack** — every successful client-op span of
   an always-committing mutation on a replicated group contains a
   ``quorum_ack`` event in its subtree (and so does any successful
   client op whose subtree shipped).  ``rename``/``link`` are excluded
   from the always-commit set because they legally no-op (renaming a
   path onto itself commits nothing).
2. **promotion ordering** — every ``promote`` span's events appear in
   protocol order: gate_close → epoch_bump → tier_fence → member_fence*
   → reseat → gate_open, with non-decreasing timestamps.
3. **recovery ordering** — under a ``recover`` span, the intent
   completion pass ends before any skeleton resync starts (resync-first
   reads a surviving half-replicated change as divergence).
4. **no mutation on a follower** — every group RPC served by a backup is
   a bounded-staleness read; mutations only ever land on primaries.
5. **durable before dependent ack** — under asynchronous group commit an
   op's own redo may sit in the loss window when it is acked, but never
   a redo the op *depends on*: every ``commit_ack`` event carrying a
   dependency LSN must be preceded by a completed ``force`` span on that
   shard whose head covers the dependency.
6. **rename visibility (stage before retire)** — a replicated rename's
   two phases never overlap: within one successful rename client op,
   every ``mirror_rename_stage`` (and any abort's
   ``mirror_rename_unstage``) peer RPC finishes before the first
   ``mirror_rename`` retire RPC starts, so no replica is ever asked to
   drop the old name before every replica can serve the new one.

Violations raise :class:`TraceViolation` (an ``AssertionError``), so the
checker drops straight into pytest.
"""

#: Methods that, on success, always commit an update transaction on the
#: target group.  rename/link may legally no-op, so they are asserted via
#: the shipped-subtree rule instead.
ALWAYS_COMMIT = frozenset({"create_node", "setattr", "unlink", "rmdir"})

#: Read-only methods a bounded-staleness follower may serve.
FOLLOWER_OPS = frozenset({"getattr", "readlink", "readdir"})

#: Promotion sub-step events, in required protocol order.  member_fence
#: repeats once per live fellow member (possibly zero times).
PROMOTION_ORDER = ("gate_close", "epoch_bump", "tier_fence",
                   "member_fence", "reseat", "gate_open")


class TraceViolation(AssertionError):
    """A trace contradicted a protocol invariant."""


class TraceChecker:
    """Asserts causal invariants over a tracer's finished spans."""

    def __init__(self, tracer):
        self.spans = list(tracer.spans)
        self._children = {}
        for span in self.spans:
            if span.parent is not None:
                self._children.setdefault(span.parent.span_id, []).append(span)

    # -- tree helpers ------------------------------------------------------

    def subtree(self, span):
        """``span`` plus all finished descendants."""
        out = []
        stack = [span]
        while stack:
            s = stack.pop()
            out.append(s)
            stack.extend(self._children.get(s.span_id, ()))
        return out

    def _subtree_events(self, span, name):
        events = []
        for s in self.subtree(span):
            events.extend(s.find_events(name))
        return events

    # -- checks ------------------------------------------------------------

    def check_quorum_ack(self):
        """Successful replicated mutations acked only after quorum."""
        for span in self.spans:
            if span.kind != "client_op" or span.outcome != "ok":
                continue
            subtree = self.subtree(span)
            replicated = any(s.kind == "group_rpc" for s in subtree)
            if not replicated:
                continue  # pass-through / unreplicated tier
            shipped = any(s.kind == "ship" for s in subtree)
            must_ack = span.name in ALWAYS_COMMIT or shipped
            if not must_ack:
                continue
            if not self._subtree_events(span, "quorum_ack"):
                raise TraceViolation(
                    f"client op {span!r} was acked without a quorum_ack "
                    f"event anywhere in its span subtree"
                )

    def check_promotion_order(self):
        """Promotion sub-steps happen in protocol order."""
        for span in self.spans:
            if span.kind != "promote" or span.outcome != "ok":
                continue
            names = span.event_names()
            times = [t for _n, t, _x in span.events]
            if any(b < a for a, b in zip(times, times[1:])):
                raise TraceViolation(
                    f"promotion {span!r} recorded events out of time order: "
                    f"{list(zip(names, times))}"
                )
            # Collapse the member_fence repetitions, then demand the exact
            # protocol sequence.
            collapsed = [n for i, n in enumerate(names)
                         if i == 0 or n != names[i - 1] or n != "member_fence"]
            expected = [n for n in PROMOTION_ORDER
                        if n != "member_fence" or "member_fence" in names]
            if collapsed != list(expected):
                raise TraceViolation(
                    f"promotion {span!r} ran sub-steps {names}, expected "
                    f"order {list(PROMOTION_ORDER)} (member_fence optional, "
                    f"repeatable)"
                )

    def check_recovery_order(self):
        """Intent completion finishes before skeleton resync starts."""
        for span in self.spans:
            if span.kind != "recover" or span.outcome != "ok":
                continue
            passes = [s for s in self._children.get(span.span_id, ())
                      if s.kind == "recover_pass"]
            complete = [s for s in passes if s.name == "complete_intents"]
            resync = [s for s in passes if s.name == "resync_skeleton"]
            if not resync:
                continue
            if not complete:
                raise TraceViolation(
                    f"recovery {span!r} ran resync_skeleton without an "
                    f"intent completion pass"
                )
            last_complete = max(s.end for s in complete)
            first_resync = min(s.start for s in resync)
            if first_resync < last_complete:
                raise TraceViolation(
                    f"recovery {span!r} started resync_skeleton at "
                    f"t={first_resync} before intent completion ended at "
                    f"t={last_complete}"
                )

    def check_no_follower_mutations(self):
        """Backups only ever serve bounded-staleness reads."""
        for span in self.spans:
            if span.kind != "group_rpc":
                continue
            role = (span.extra or {}).get("role")
            if role == "backup" and span.name not in FOLLOWER_OPS:
                raise TraceViolation(
                    f"group RPC {span!r} routed mutation {span.name!r} to a "
                    f"backup; only {sorted(FOLLOWER_OPS)} may be "
                    f"follower-served"
                )

    def check_durable_dependent_ack(self):
        """No ack may externalize state whose redo is not yet durable.

        The async commit path tags every acknowledgement with a
        ``commit_ack`` event recording the shard, the op's own LSN and
        the highest foreign LSN its reads depended on (``dep``).  The
        op's own record may legally be in the loss window (that is the
        deferred ack), but ``dep`` must already be covered by a *force*
        span on that shard — one that finished (``outcome == "ok"``) at
        or before the ack, with ``head >= dep``.  Otherwise a crash
        after the ack could revoke state another client was told about.
        """
        forced = {}  # shard -> [(end time, head)], in finish order
        for span in self.spans:
            if span.kind == "force" and span.outcome == "ok":
                head = (span.extra or {}).get("head", 0)
                forced.setdefault(span.shard, []).append((span.end, head))
        for span in self.spans:
            for _name, when, extra in span.find_events("commit_ack"):
                dep = extra.get("dep", 0)
                lsn = extra.get("lsn", 0)
                # A non-deferred update waits for its own force, so its
                # dependency is covered by the same force that covered it;
                # checking dep alone also catches mis-ordered reads
                # (lsn == 0) observing an un-forced foreign write.
                if not dep or dep == lsn:
                    continue
                shard = extra.get("shard")
                if not any(end <= when and head >= dep
                           for end, head in forced.get(shard, ())):
                    raise TraceViolation(
                        f"commit_ack on shard {shard!r} at t={when} depends "
                        f"on LSN {dep}, but no force span on that shard "
                        f"had made it durable by then"
                    )

    def check_rename_visibility(self):
        """Stage-before-retire: a rename's flip is two ordered phases.

        Within every successful rename client op, every
        ``mirror_rename_stage`` peer RPC (phase 1: the alias lands, both
        names resolve) must finish before the first ``mirror_rename``
        retire RPC starts (phase 2: old names die) — a retire
        overlapping a stage would reopen the neither-name window the
        flip exists to close.  Any ``mirror_rename_unstage`` RPC (a flip
        abort) must equally precede the first retire: an
        abort-then-retry's cleanup may not leak into the retry's commit
        phase.
        """
        for span in self.spans:
            if span.kind != "client_op" or span.name != "rename" \
                    or span.outcome != "ok":
                continue
            subtree = self.subtree(span)
            retires = [s for s in subtree
                       if s.kind == "peer_rpc" and s.name == "mirror_rename"]
            if not retires:
                continue  # single-shard / cross-shard file path: no flip
            first_retire = min(s.start for s in retires)
            for s in subtree:
                if s.kind != "peer_rpc" or s.name not in (
                        "mirror_rename_stage", "mirror_rename_unstage"):
                    continue
                if s.end is None or s.end > first_retire:
                    raise TraceViolation(
                        f"rename {span!r}: phase-1 RPC {s!r} still in "
                        f"flight when the first retire broadcast started "
                        f"at t={first_retire}"
                    )

    def check_all(self):
        """Run every invariant check; returns self for chaining."""
        self.check_quorum_ack()
        self.check_promotion_order()
        self.check_recovery_order()
        self.check_no_follower_mutations()
        self.check_durable_dependent_ack()
        self.check_rename_visibility()
        return self
