"""Per-shard metrics registry: counters and histograms keyed by shard.

The registry is deliberately dumb — two dicts keyed ``(name, shard)`` —
so the instrumented hot paths pay one dict lookup per update.  Histogram
cells are :class:`~repro.sim.stats.SampleStats`, so every observed series
carries mean/min/max *and* p50/p99.

Canonical metric names (the registry does not enforce them; see
``docs/observability.md``):

========================  ==========  =======================================
name                      type        meaning
========================  ==========  =======================================
``op_ms.<method>``        histogram   client-observed op latency at the router
``quorum_ack_ms``         histogram   primary-side ship+quorum latency
``ship_lag_records``      histogram   journal records per ship batch
``apply_lag_records``     histogram   backup applied-LSN lag before a ship
``follower_staleness``    histogram   staleness (records) when a follower
                                      actually served a read
``admission_wait_ms``     histogram   time ops waited on the admission gate
``failover_gap_ms``       histogram   unavailability window per failover
``failover_step_ms.<s>``  histogram   promotion sub-step durations
``rebalancer_load``       histogram   per-shard load at rebalance plan time
``commit_batch_size``     histogram   journal records covered per group force
                                      (async commit)
``group_force_ms``        histogram   force + quorum-ship duration per batch
``ack_to_durable_ms``     histogram   deferred-ack exposure: time from ack to
                                      the force that made the op durable
``epoch_fenced``          counter     stamped requests refused by a fence
``member_down``           counter     requests refused by a down member
``router_retry``          counter     router EAGAIN retries
``follower_reads``        counter     reads served by a backup
``deferred_acks``         counter     updates acked before their redo was
                                      durable (async commit)
``rebalance_moves``       counter     directories re-homed
========================  ==========  =======================================
"""

from repro.sim.stats import SampleStats


class MetricsRegistry:
    """Counters and histograms keyed by ``(metric name, shard)``."""

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    # -- updates (hot paths) ----------------------------------------------

    def incr(self, name, shard, by=1):
        key = (name, shard)
        counters = self._counters
        counters[key] = counters.get(key, 0) + by

    def observe(self, name, shard, value):
        key = (name, shard)
        cell = self._histograms.get(key)
        if cell is None:
            cell = self._histograms[key] = SampleStats()
        cell.add(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name, shard=None):
        """Counter value; summed across shards when ``shard`` is None."""
        if shard is not None:
            return self._counters.get((name, shard), 0)
        return sum(v for (n, _s), v in self._counters.items() if n == name)

    def histogram(self, name, shard=None):
        """The :class:`SampleStats` cell, or a merged copy across shards."""
        if shard is not None:
            return self._histograms.get((name, shard))
        merged = None
        for (n, _s), cell in self._histograms.items():
            if n != name:
                continue
            if merged is None:
                merged = SampleStats()
            merged.merge(cell)
        return merged

    def names(self):
        names = {n for n, _s in self._counters}
        names.update(n for n, _s in self._histograms)
        return sorted(names)

    def shards(self, name):
        shards = {s for n, s in self._counters if n == name}
        shards.update(s for n, s in self._histograms if n == name)
        return sorted(shards, key=lambda s: (s is None, s))

    def rows(self):
        """Flat export rows, one per ``(name, shard)`` cell."""
        rows = []
        for (name, shard), value in sorted(
                self._counters.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            rows.append({"metric": name, "shard": shard, "type": "counter",
                         "value": value})
        for (name, shard), cell in sorted(
                self._histograms.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            row = {"metric": name, "shard": shard, "type": "histogram",
                   "count": cell.n, "mean": cell.mean,
                   "min": cell.min, "max": cell.max, "total": cell.total}
            if cell.n:
                row["p50"] = cell.p50
                row["p99"] = cell.p99
            rows.append(row)
        return rows

    def reset(self):
        self._counters = {}
        self._histograms = {}
