"""Distributed tracing over the simulation kernel.

A :class:`Span` records one causally-scoped unit of work — a client op at
the router, a group RPC attempt, a peer RPC, a replication ship, a
promotion — with simulated start/end times, the shard it ran on, the
epoch it observed, and its outcome.  Spans form a tree: the parent is
whatever span was active in the executing process when the child opened.

Context propagation rides the kernel, not the payloads: the kernel
publishes the currently executing :class:`~repro.sim.kernel.Process` on
``Tracer.current`` (see ``repro.sim.kernel.TRACE``), each process carries
an ambient ``ctx`` (its active span), and spawned processes inherit their
spawner's ``ctx`` — so parallel mirror broadcasts, fence fan-outs and
killer processes all land under the right parent without any RPC schema
change.  Because RPCs execute via ``yield from`` inline in the caller's
process, router → shard → peer chains share one ``ctx`` cell and nest
naturally.

Everything here is charge-preserving by construction: no simulated
events, no yields, no sequence numbers — only Python-side bookkeeping on
the already-running process.
"""


class Span:
    """One traced unit of work (a node in a trace tree)."""

    __slots__ = ("span_id", "parent", "trace_id", "kind", "name", "shard",
                 "epoch", "start", "end", "outcome", "events", "extra")

    def __init__(self, span_id, parent, trace_id, kind, name, shard, epoch,
                 start, extra):
        self.span_id = span_id
        self.parent = parent
        self.trace_id = trace_id
        self.kind = kind
        self.name = name
        self.shard = shard
        self.epoch = epoch
        self.start = start
        self.end = None
        self.outcome = None
        #: point events inside the span: ``(name, sim_time, extra_dict)``.
        self.events = []
        self.extra = extra

    @property
    def parent_id(self):
        return self.parent.span_id if self.parent is not None else None

    @property
    def duration(self):
        """Span length in simulated ms (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def event_names(self):
        return [name for name, _t, _x in self.events]

    def find_events(self, name):
        return [ev for ev in self.events if ev[0] == name]

    def as_dict(self):
        d = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "kind": self.kind,
            "name": self.name,
            "shard": self.shard,
            "epoch": self.epoch,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
        }
        if self.events:
            d["events"] = [
                {"name": name, "t": t, **extra}
                for name, t, extra in self.events
            ]
        if self.extra:
            d.update(self.extra)
        return d

    def __repr__(self):
        return (f"<Span {self.kind}:{self.name} #{self.span_id} "
                f"[{self.start}..{self.end}] {self.outcome}>")


class Tracer:
    """Collects spans; the kernel keeps ``current`` pointed at the
    executing process so :meth:`active` always reflects ambient context."""

    def __init__(self):
        #: the currently executing Process (maintained by the kernel).
        self.current = None
        #: finished spans, in finish order.
        self.spans = []
        self._next_span = 0
        self._next_trace = 0

    # -- context -----------------------------------------------------------

    def active(self):
        """The active span of the executing process (None outside spans)."""
        proc = self.current
        return proc.ctx if proc is not None else None

    # -- span lifecycle ----------------------------------------------------

    def start(self, kind, name, now, shard=None, epoch=None, **extra):
        """Open a span as a child of the active one and make it active.

        ``now`` is the simulated clock reading at the call site; the tracer
        deliberately holds no simulator reference (bench runs build several
        stacks, each with its own clock).
        """
        parent = self.active()
        self._next_span += 1
        if parent is not None:
            trace_id = parent.trace_id
        else:
            self._next_trace += 1
            trace_id = self._next_trace
        span = Span(self._next_span, parent, trace_id, kind, name, shard,
                    epoch, now, extra or None)
        proc = self.current
        if proc is not None:
            proc.ctx = span
        return span

    def finish(self, span, now, outcome="ok"):
        """Close ``span`` and restore its parent as the active context."""
        span.end = now
        span.outcome = outcome
        self.spans.append(span)
        proc = self.current
        # The finishing process may differ from the opening one (a span
        # can be closed after a cross-process wait); only pop the context
        # if this span is actually on top of it.
        if proc is not None and proc.ctx is span:
            proc.ctx = span.parent

    def event(self, name, now, **extra):
        """Attach a point event to the active span (no-op outside spans)."""
        span = self.active()
        if span is not None:
            span.events.append((name, now, extra))

    # -- queries -----------------------------------------------------------

    def by_kind(self, kind):
        return [s for s in self.spans if s.kind == kind]

    def reset(self):
        self.spans = []
