"""JSONL exporters and the per-run aggregation report.

Bench runs persist two artifacts next to BENCH_*.json: a trace file (one
span per line, parent-linked) and a metrics file (one ``(metric, shard)``
cell per line).  :func:`aggregate_spans` folds a span list into the
p50/p99-per-span-kind table the run report prints.
"""

import json

from repro.sim.stats import SampleStats


def write_trace_jsonl(path, tracer):
    """Write one JSON object per finished span to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in tracer.spans:
            fh.write(json.dumps(span.as_dict(), sort_keys=True))
            fh.write("\n")
    return len(tracer.spans)


def write_metrics_jsonl(path, metrics):
    """Write one JSON object per metric cell to ``path``."""
    rows = metrics.rows()
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")
    return len(rows)


def aggregate_spans(spans):
    """Per-span-kind duration summaries.

    Returns ``{kind: {"count", "mean_ms", "p50_ms", "p99_ms", "max_ms",
    "errors"}}`` over finished spans.
    """
    cells = {}
    errors = {}
    for span in spans:
        if span.end is None:
            continue
        cell = cells.get(span.kind)
        if cell is None:
            cell = cells[span.kind] = SampleStats()
            errors[span.kind] = 0
        cell.add(span.end - span.start)
        if span.outcome != "ok":
            errors[span.kind] += 1
    out = {}
    for kind in sorted(cells):
        cell = cells[kind]
        out[kind] = {
            "count": cell.n,
            "mean_ms": cell.mean,
            "p50_ms": cell.p50,
            "p99_ms": cell.p99,
            "max_ms": cell.max,
            "errors": errors[kind],
        }
    return out


def format_aggregate(aggregate, title="trace span summary"):
    """Render an :func:`aggregate_spans` result as a bench-style table."""
    # Imported lazily: repro.obs is imported by core/db modules that the
    # bench package itself builds on.
    from repro.bench.report import format_table

    rows = []
    for kind, cell in aggregate.items():
        rows.append([
            kind, cell["count"], f"{cell['mean_ms']:.3f}",
            f"{cell['p50_ms']:.3f}", f"{cell['p99_ms']:.3f}",
            f"{cell['max_ms']:.3f}", cell["errors"],
        ])
    return format_table(
        ["span kind", "count", "mean ms", "p50 ms", "p99 ms", "max ms",
         "errors"],
        rows, title=title,
    )
