"""Observability plane: distributed tracing + per-shard metrics.

The whole subsystem hangs off two module globals:

- ``obs.TRACER`` — a :class:`~repro.obs.trace.Tracer`, or ``None``;
- ``obs.METRICS`` — a :class:`~repro.obs.metrics.MetricsRegistry`, or
  ``None``.

Instrumented sites import the module (``from repro import obs``) and
guard every touch with ``if obs.TRACER is not None`` — when disabled
(the default) the only cost anywhere is that attribute load, exactly the
pattern the router's load counters established.  :func:`enable` also
arms the kernel context hook (``repro.sim.kernel.TRACE``) so span
context follows spawned processes.

Tracing is **charge-preserving**: it never creates simulated events,
yields, or sequence numbers, so every figure is byte-identical with
tracing on or off (CI's ``obs-smoke`` job proves it each run).
"""

from repro.obs.trace import Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.check import TraceChecker, TraceViolation
from repro.obs.export import (
    aggregate_spans, format_aggregate, write_metrics_jsonl, write_trace_jsonl,
)

#: Active tracer (None = tracing disabled; instrumentation is a no-op).
TRACER = None
#: Active metrics registry (None = metrics disabled).
METRICS = None


def enable(tracing=True, metrics=True):
    """Turn the observability plane on; returns ``(tracer, registry)``.

    Idempotent: an already-active tracer/registry is kept (so nested
    enables share one sink).
    """
    global TRACER, METRICS
    if tracing and TRACER is None:
        TRACER = Tracer()
    if metrics and METRICS is None:
        METRICS = MetricsRegistry()
    _sync_kernel()
    return TRACER, METRICS


def disable():
    """Turn the observability plane off and detach the kernel hook."""
    global TRACER, METRICS
    TRACER = None
    METRICS = None
    _sync_kernel()


def _sync_kernel():
    from repro.sim import kernel

    kernel.TRACE = TRACER


__all__ = [
    "TRACER", "METRICS", "Tracer", "MetricsRegistry", "TraceChecker",
    "TraceViolation", "aggregate_spans", "format_aggregate",
    "write_metrics_jsonl", "write_trace_jsonl", "enable", "disable",
]
