"""Scaled-down benchmark smoke runs: the harness-performance trajectory.

Each entry here drives a miniature version of one paper experiment and
records *wall-clock* cost alongside the simulated work done, so successive
PRs can track how fast the harness itself is (the simulated results are
checked elsewhere; this module is about seconds and ops/sec of real time).

``python -m repro.bench --quick --json BENCH_PR1.json`` runs the whole
suite and appends one labelled run to the JSON file, keeping earlier runs
(e.g. the pre-optimisation baseline) in place for before/after comparison.
"""

import json
import os
import re
import time

from repro.bench.report import format_table
from repro.bench.stack import CofsStack, PfsStack
from repro.bench.testbed import build_flat_testbed, build_hier_testbed
from repro.units import MB
from repro.workloads.ior import IorConfig, run_ior
from repro.workloads.metarates import MetaratesConfig, run_metarates

OPS = ("create", "stat", "utime", "open")


def _stack(system, n_clients, topology="flat"):
    if topology == "flat":
        testbed = build_flat_testbed(n_clients, with_mds=(system == "cofs"))
    else:
        testbed = build_hier_testbed(n_clients, with_mds=(system == "cofs"))
    if system == "cofs":
        return CofsStack(testbed)
    return PfsStack(testbed)


def _metarates_runs(runs):
    """Drive a list of (system, nodes, procs, files_per_proc, ops, topology)
    metarates configurations; returns (simulated_ops, final_virtual_ms)."""
    ops_done = 0
    virtual_ms = 0.0
    for system, nodes, procs, fpp, ops, topology in runs:
        stack = _stack(system, nodes, topology=topology)
        config = MetaratesConfig(
            nodes=nodes, procs_per_node=procs, files_per_proc=fpp, ops=ops,
        )
        res = run_metarates(stack, config)
        ops_done += sum(res.recorder.count(op) for op in ops)
        virtual_ms += stack.testbed.sim.now
    return ops_done, virtual_ms


def _quick_fig1():
    return _metarates_runs([
        ("pfs", 1, procs, total // procs, OPS, "flat")
        for procs in (1, 2) for total in (128, 512)
    ])


def _quick_fig2():
    return _metarates_runs([
        ("pfs", nodes, 1, 1024 // nodes, OPS, "flat") for nodes in (4, 8)
    ])


def _quick_sweep(op):
    return _metarates_runs([
        (system, 4, 1, fpn, (op,), "flat")
        for system in ("pfs", "cofs") for fpn in (32, 128)
    ])


def _quick_fig6():
    return _metarates_runs([
        (system, 8, 1, 64, OPS, "hier") for system in ("pfs", "cofs")
    ])


def _quick_scaling():
    """Sharded metadata tier at 1 and 2 shards (private-dir metarates)."""
    ops_done = 0
    virtual_ms = 0.0
    for n_shards in (1, 2):
        testbed = build_flat_testbed(4, with_mds=n_shards)
        stack = CofsStack(testbed)
        config = MetaratesConfig(
            nodes=4, procs_per_node=1, files_per_proc=32,
            ops=("create", "stat", "utime"), private_dirs=True,
        )
        res = run_metarates(stack, config)
        ops_done += sum(res.recorder.count(op) for op in config.ops)
        virtual_ms += stack.testbed.sim.now
    return ops_done, virtual_ms


def _quick_scaling_async():
    """Sync vs async group commit at 1 and 2 shards.

    Runs the ``scaling-async`` experiment's grid at quick scale — both
    commit modes per shard count, TraceChecker over the async legs (the
    qualitative ≥2x speedup is asserted in
    ``benchmarks/test_scaling_async.py``).  The sync legs and the async
    legs are both deterministic, so the summed virtual clock is a real
    fingerprint.
    """
    from repro.bench.experiments import run_scaling_async

    out = run_scaling_async(shard_counts=(1, 2))
    return out["ops_done"], out["virtual_ms"]


def _quick_rebalance():
    """Parallel broadcasts + online re-partitioning at small scale.

    One mkdir/rmdir run with overlapped mirrors and the skewed-stat /
    rebalance / re-run cycle, both at 3 shards — the wall-clock smoke
    for the PR 4 machinery (simulated numbers are asserted in
    ``benchmarks/test_scaling_rebalance.py``).
    """
    from repro.bench.experiments import run_scaling_rebalance

    out = run_scaling_rebalance(shard_counts=(1, 3))
    # The experiment reports its own measured-op volume; the virtual
    # clock is not meaningful across its many stacks, so report 0.
    return out["ops_done"], 0.0


def _quick_split():
    """Giant-shared-directory storm, whole vs split, at 1 and 4 shards.

    The wall-clock smoke for the intra-directory partitioning machinery
    (simulated speedups are asserted in ``benchmarks/test_scaling_split.py``).
    Unlike the rebalance/failover smokes this one *does* report a
    virtual-time fingerprint: the experiment sums its stacks' final
    clocks, and the storm is deterministic.
    """
    from repro.bench.experiments import run_scaling_split

    out = run_scaling_split(shard_counts=(1, 4))
    return out["ops_done"], out["virtual_ms"]


def _quick_failover():
    """Kill-the-primary drill on a small replicated tier.

    Runs the full failover experiment at quick scale — baseline and
    kill runs, invariant oracles included; the wall-clock smoke for the
    replication machinery (simulated numbers are asserted in
    ``benchmarks/test_scaling_failover.py``).
    """
    from repro.bench.experiments import run_scaling_failover

    out = run_scaling_failover()
    # Report the measured-op volume; the virtual clock spans two stacks,
    # so report 0 like the rebalance smoke.
    return out["results"][("failover", "post_failover_ops")], 0.0


def _quick_table1():
    ops_done = 0
    virtual_ms = 0.0
    for system in ("pfs", "cofs"):
        stack = _stack(system, 2)
        config = IorConfig(nodes=2, aggregate_bytes=64 * MB)
        run_ior(stack, config)
        # One simulated "op" per transferred chunk, write then read phase.
        ops_done += 2 * (config.aggregate_bytes // config.xfer_bytes)
        virtual_ms += stack.testbed.sim.now
    return ops_done, virtual_ms


QUICK_EXPERIMENTS = {
    "fig1": _quick_fig1,
    "fig2": _quick_fig2,
    "fig4": lambda: _quick_sweep("create"),
    "fig5": lambda: _quick_sweep("stat"),
    "fig5b": lambda: _quick_sweep("utime"),
    "fig6": _quick_fig6,
    "table1": _quick_table1,
    "scaling-mds": _quick_scaling,
    "scaling-async": _quick_scaling_async,
    "scaling-rebalance": _quick_rebalance,
    "scaling-split": _quick_split,
    "scaling-failover": _quick_failover,
}


def run_quick(names=None, label=None, print_report=True, obs_dir=None):
    """Run the scaled-down suite; returns the run record (JSON-ready).

    With ``obs_dir`` set, tracing and metrics are enabled around each
    experiment and the run's spans/metrics are exported there as
    ``<name>.trace.jsonl`` / ``<name>.metrics.jsonl`` plus a per-kind
    latency aggregate (``<name>.aggregate.json``).  The instrumentation
    is charge-preserving, so the ``virtual_ms`` fingerprints must be
    byte-identical with and without it — the obs-smoke CI job asserts
    exactly that.
    """
    names = list(names) if names else sorted(QUICK_EXPERIMENTS)
    if obs_dir is not None:
        os.makedirs(obs_dir, exist_ok=True)
    experiments = {}
    for name in names:
        if obs_dir is not None:
            from repro import obs
            obs.enable()
        start = time.perf_counter()
        ops_done, virtual_ms = QUICK_EXPERIMENTS[name]()
        wall_s = time.perf_counter() - start
        if obs_dir is not None:
            _export_obs(obs_dir, name, print_report)
            obs.disable()
        experiments[name] = {
            "wall_s": round(wall_s, 4),
            "sim_ops": ops_done,
            "ops_per_s": round(ops_done / wall_s, 1) if wall_s > 0 else 0.0,
            "virtual_ms": round(virtual_ms, 3),
        }
    run = {
        "label": label or "unlabelled",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "experiments": experiments,
    }
    if print_report:
        rows = [
            [name, rec["wall_s"], rec["sim_ops"], rec["ops_per_s"]]
            for name, rec in experiments.items()
        ]
        print(format_table(
            ["experiment", "wall s", "sim ops", "ops/s"], rows,
            title=f"Quick bench — {run['label']}",
        ))
    return run


def _export_obs(obs_dir, name, print_report):
    """Export the current obs run's artifacts for experiment ``name``."""
    from repro import obs

    trace_path = os.path.join(obs_dir, f"{name}.trace.jsonl")
    metrics_path = os.path.join(obs_dir, f"{name}.metrics.jsonl")
    obs.write_trace_jsonl(trace_path, obs.TRACER)
    obs.write_metrics_jsonl(metrics_path, obs.METRICS)
    aggregate = obs.aggregate_spans(obs.TRACER.spans)
    with open(os.path.join(obs_dir, f"{name}.aggregate.json"), "w") as handle:
        json.dump(aggregate, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if print_report:
        print(obs.format_aggregate(aggregate, title=f"{name} — span latency"))


def latest_reference(directory="."):
    """Path of the highest-numbered committed ``BENCH_PR<n>.json``, or None."""
    best, best_n = None, -1
    for entry in os.listdir(directory):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", entry)
        if match and int(match.group(1)) > best_n:
            best_n = int(match.group(1))
            best = os.path.join(directory, entry)
    return best


def check_fingerprints(run, ref_path):
    """Regression gate: this run's ``virtual_ms`` must match ``ref_path``.

    The simulated clock is a pure function of the modelled system, so the
    final virtual time of each quick experiment is a *fingerprint* of its
    behaviour: any drift — however small — means a change altered what the
    simulation does, not just how fast it runs.  Compares every experiment
    present in both this run and the reference file's most recent run and
    exits loudly on the first sign of drift.  Intentional behaviour changes
    re-baseline by committing a new ``BENCH_PR<n>.json`` (``--no-gate`` to
    bypass while iterating).
    """
    with open(ref_path) as handle:
        reference = json.load(handle)["runs"][-1]["experiments"]
    mismatches = []
    checked = 0
    for name, record in sorted(run["experiments"].items()):
        if name not in reference:
            continue
        checked += 1
        expected = reference[name]["virtual_ms"]
        if record["virtual_ms"] != expected:
            mismatches.append((name, expected, record["virtual_ms"]))
    if not checked:
        raise SystemExit(
            f"fingerprint gate: no experiment of this run appears in "
            f"{ref_path}; nothing was checked"
        )
    if mismatches:
        lines = "\n".join(
            f"  {name}: expected virtual_ms={expected}, got {got}"
            for name, expected, got in mismatches
        )
        raise SystemExit(
            f"fingerprint gate FAILED against {ref_path}:\n{lines}\n"
            "Simulated time drifted — the change alters modelled behaviour. "
            "If intentional, commit a new BENCH_PR<n>.json baseline; "
            "otherwise find the stray charge (--no-gate only while iterating)."
        )
    print(f"(fingerprint gate: {checked} experiments match {ref_path})")


def append_run(path, run):
    """Append ``run`` to the JSON file at ``path`` (kept as {"runs": [...]})."""
    data = {"runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except ValueError as exc:
            raise SystemExit(
                f"{path} exists but is not valid JSON ({exc}); refusing to "
                "overwrite it — move it aside or pass a different --json path"
            ) from None
        if "runs" not in data:
            data = {"runs": []}
    data["runs"].append(run)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data
