"""Benchmark harness: testbeds, experiment runners, reporting.

One experiment runner exists per figure/table of the paper (see DESIGN.md's
experiment index); each builds a testbed, runs the matching workload on bare
PFS and/or COFS, and returns structured results the reporters print in the
paper's layout.
"""

from repro.bench.testbed import Testbed, build_flat_testbed, build_hier_testbed

__all__ = ["Testbed", "build_flat_testbed", "build_hier_testbed"]
