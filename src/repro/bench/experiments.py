"""Experiment runners — one per figure/table of the paper.

Every function builds fresh testbeds, drives the matching workload and
returns a structured result dict; ``print_report=True`` also prints the
series/table in the paper's layout.  See DESIGN.md §5 for the experiment
index and EXPERIMENTS.md for measured-vs-paper numbers.

Scope control: the full paper sweeps (up to 8192 files per node, 4 GB IOR
aggregates) take several minutes of wall time; by default the runners use a
log-spaced subset that exhibits every effect, and ``full=True`` (or the
REPRO_FULL=1 environment variable) restores the complete grids.
"""

import dataclasses
import os

from repro import obs
from repro.bench.report import format_series, format_table
from repro.bench.stack import CofsStack, PfsStack
from repro.bench.testbed import build_flat_testbed, build_hier_testbed
from repro.core.config import CofsConfig
from repro.core.placement import HashPlacementPolicy, IdentityPlacementPolicy
from repro.core.sharding import SubtreeSharding
from repro.db.service import DbConfig
from repro.units import GB, MB
from repro.workloads.ior import IorConfig, run_ior
from repro.workloads.metarates import MetaratesConfig, run_metarates
from repro.workloads.traces import TraceConfig, run_trace

OPS = ("create", "stat", "utime", "open")


def _full(full):
    return full or os.environ.get("REPRO_FULL") == "1"


def _stack(system, n_clients, topology="flat", **kwargs):
    if topology == "flat":
        testbed = build_flat_testbed(n_clients, with_mds=(system == "cofs"))
    else:
        testbed = build_hier_testbed(n_clients, with_mds=(system == "cofs"))
    if system == "cofs":
        return CofsStack(testbed, **kwargs)
    return PfsStack(testbed)


def _metarates(system, nodes, files_per_proc, ops, procs_per_node=1,
               topology="flat", **stack_kwargs):
    stack = _stack(system, nodes, topology=topology, **stack_kwargs)
    config = MetaratesConfig(
        nodes=nodes, procs_per_node=procs_per_node,
        files_per_proc=files_per_proc, ops=ops,
    )
    return run_metarates(stack, config)


# ---------------------------------------------------------------------------
# EXP-F1 — Fig. 1: effect of directory size, single node, 1 and 2 processes
# ---------------------------------------------------------------------------

def run_fig1(full=False, print_report=False):
    """GPFS metadata times vs entries per directory on one node."""
    sizes = (128, 256, 512, 1024, 1536, 2048, 2560) if _full(full) \
        else (128, 512, 1024, 2048)
    results = {}
    for procs in (1, 2):
        for total in sizes:
            res = _metarates(
                "pfs", 1, total // procs, OPS, procs_per_node=procs
            )
            for op in OPS:
                results[(op, procs, total)] = res.mean_ms(op)
    out = {"sizes": sizes, "results": results}
    if print_report:
        for op in OPS:
            series = {
                f"{procs} process(es)": [
                    (total, results[(op, procs, total)]) for total in sizes
                ]
                for procs in (1, 2)
            }
            print(format_series(
                f"Fig 1 — avg time per {op} (single node)",
                "files/dir", "ms/op", series,
            ))
            print()
    return out


# ---------------------------------------------------------------------------
# EXP-F2 — Fig. 2: parallel metadata behaviour of GPFS
# ---------------------------------------------------------------------------

def run_fig2(full=False, print_report=False):
    """GPFS metadata times for 4/8 nodes and 1024/4096/16384 files."""
    totals = (1024, 4096, 16384) if _full(full) else (1024, 4096)
    node_counts = (4, 8)
    results = {}
    for nodes in node_counts:
        for total in totals:
            res = _metarates("pfs", nodes, total // nodes, OPS)
            for op in OPS:
                results[(op, nodes, total)] = res.mean_ms(op)
    out = {"totals": totals, "nodes": node_counts, "results": results}
    if print_report:
        rows = [
            [op, nodes, total, results[(op, nodes, total)]]
            for op in OPS for nodes in node_counts for total in totals
        ]
        print(format_table(
            ["operation", "nodes", "files", "ms/op"], rows,
            title="Fig 2 — parallel metadata behaviour of GPFS",
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-F4 / EXP-F5 / EXP-F5b — Figs. 4-5: GPFS vs COFS sweeps
# ---------------------------------------------------------------------------

def _sweep(op, full):
    files_per_node = (32, 128, 512, 2048, 8192) if _full(full) \
        else (32, 128, 512, 2048)
    node_counts = (4, 8)
    results = {}
    for system in ("pfs", "cofs"):
        for nodes in node_counts:
            for fpn in files_per_node:
                res = _metarates(system, nodes, fpn, (op,))
                results[(system, nodes, fpn)] = res.mean_ms(op)
    return {"files_per_node": files_per_node, "nodes": node_counts,
            "results": results, "op": op}


def _print_sweep(out, figure):
    op = out["op"]
    for system in ("pfs", "cofs"):
        label = "pure GPFS" if system == "pfs" else "COFS over GPFS"
        series = {
            f"{nodes} nodes": [
                (fpn, out["results"][(system, nodes, fpn)])
                for fpn in out["files_per_node"]
            ]
            for nodes in out["nodes"]
        }
        print(format_series(
            f"{figure} — avg {op} time ({label})",
            "files/node", "ms/op", series,
        ))
        print()


def run_fig4(full=False, print_report=False):
    """Create time, pure GPFS vs COFS over GPFS (paper Fig. 4)."""
    out = _sweep("create", full)
    if print_report:
        _print_sweep(out, "Fig 4")
    return out


def run_fig5(full=False, print_report=False):
    """Stat time, pure GPFS vs COFS over GPFS (paper Fig. 5)."""
    out = _sweep("stat", full)
    if print_report:
        _print_sweep(out, "Fig 5")
    return out


def run_fig5b(full=False, print_report=False):
    """utime and open/close sweeps (reported in prose in §IV-A)."""
    utime = _sweep("utime", full)
    open_close = _sweep("open", full)
    if print_report:
        _print_sweep(utime, "Fig 5b (utime)")
        _print_sweep(open_close, "Fig 5b (open/close)")
    return {"utime": utime, "open": open_close}


# ---------------------------------------------------------------------------
# EXP-F6 — Fig. 6: 64 nodes, 256 files per node, hierarchical network
# ---------------------------------------------------------------------------

def run_fig6(full=False, print_report=False, nodes=None, files_per_node=256):
    """Operation times on the large hierarchical cluster, GPFS vs COFS."""
    nodes = nodes or (64 if _full(full) else 32)
    results = {}
    for system in ("pfs", "cofs"):
        res = _metarates(system, nodes, files_per_node, OPS,
                         topology="hier")
        for op in OPS:
            results[(system, op)] = res.mean_ms(op)
    out = {"nodes": nodes, "files_per_node": files_per_node,
           "results": results}
    if print_report:
        rows = [
            [op, results[("pfs", op)], results[("cofs", op)]]
            for op in OPS
        ]
        print(format_table(
            ["operation", "gpfs ms/op", "cofs ms/op"], rows,
            title=(f"Fig 6 — {nodes} nodes, {files_per_node} files/node "
                   "(shared dir)"),
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-T1 — Table I: impact of COFS on data transfers (IOR)
# ---------------------------------------------------------------------------

def run_table1(full=False, print_report=False):
    """IOR read/write bandwidth, GPFS vs COFS, per Table I's matrix."""
    sizes = (256 * MB, 1 * GB, 4 * GB) if _full(full) else (256 * MB, 1 * GB)
    node_counts = (1, 4, 8)
    cells = {}
    for target in ("separate", "shared"):
        for pattern in ("seq", "random"):
            for nodes in node_counts:
                for agg in sizes:
                    for system in ("pfs", "cofs"):
                        stack = _stack(system, nodes)
                        result = run_ior(stack, IorConfig(
                            nodes=nodes, aggregate_bytes=agg,
                            pattern=pattern, target=target,
                        ))
                        key = (target, pattern, nodes, agg, system)
                        cells[key] = (result.write_mbps, result.read_mbps)
    out = {"sizes": sizes, "nodes": node_counts, "cells": cells}
    if print_report:
        rows = []
        for target in ("separate", "shared"):
            for pattern in ("seq", "random"):
                for nodes in node_counts:
                    for agg in sizes:
                        g = cells[(target, pattern, nodes, agg, "pfs")]
                        c = cells[(target, pattern, nodes, agg, "cofs")]
                        rows.append([
                            target, pattern, nodes, agg // MB,
                            g[0], c[0], g[1], c[1],
                        ])
        print(format_table(
            ["target", "pattern", "nodes", "MB total",
             "gpfs w MB/s", "cofs w MB/s", "gpfs r MB/s", "cofs r MB/s"],
            rows, title="Table I — IOR aggregate bandwidth",
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-A1 — ablation: placement policy variants
# ---------------------------------------------------------------------------

def run_ablation_placement(full=False, print_report=False):
    """Isolate what the placement policy contributes.

    - identity: pure interposition, no reorganization (the virtualization
      overhead with none of its benefit);
    - hash: per-(node, parent, pid) directories, no randomization level;
    - hash+rand: the paper's policy.
    """
    nodes = 4
    fpn = 512 if _full(full) else 256
    variants = {}
    cfg = CofsConfig()
    variants["identity"] = IdentityPlacementPolicy(cfg)
    variants["hash"] = HashPlacementPolicy(cfg, randomize=False)
    variants["hash+rand"] = HashPlacementPolicy(cfg, randomize=True)
    results = {}
    baseline = _metarates("pfs", nodes, fpn, ("create", "stat"))
    results[("gpfs", "create")] = baseline.mean_ms("create")
    results[("gpfs", "stat")] = baseline.mean_ms("stat")
    for name, policy in variants.items():
        res = _metarates("cofs", nodes, fpn, ("create", "stat"),
                         policy=policy)
        results[(name, "create")] = res.mean_ms("create")
        results[(name, "stat")] = res.mean_ms("stat")
    out = {"results": results, "nodes": nodes, "files_per_node": fpn}
    if print_report:
        rows = [
            [name, results[(name, "create")], results[(name, "stat")]]
            for name in ("gpfs", "identity", "hash", "hash+rand")
        ]
        print(format_table(
            ["layout policy", "create ms/op", "stat ms/op"], rows,
            title=f"Ablation — placement policy ({nodes} nodes)",
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-A2 — ablation: metadata-service durability
# ---------------------------------------------------------------------------

def run_ablation_mds(full=False, print_report=False):
    """Sync vs async metadata-service logging (Mnesia dump policy)."""
    nodes = 4
    fpn = 512 if _full(full) else 256
    results = {}
    for mode, sync in (("sync-log", True), ("async-log", False)):
        cofs_cfg = CofsConfig(db=DbConfig(sync_updates=sync))
        res = _metarates("cofs", nodes, fpn, ("create", "utime"),
                         cofs_config=cofs_cfg)
        results[(mode, "create")] = res.mean_ms("create")
        results[(mode, "utime")] = res.mean_ms("utime")
    out = {"results": results, "nodes": nodes, "files_per_node": fpn}
    if print_report:
        rows = [
            [mode, results[(mode, "create")], results[(mode, "utime")]]
            for mode in ("sync-log", "async-log")
        ]
        print(format_table(
            ["MDS durability", "create ms/op", "utime ms/op"], rows,
            title=f"Ablation — metadata service logging ({nodes} nodes)",
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-S1 — beyond the paper: metadata throughput vs number of MDS shards
# ---------------------------------------------------------------------------

def run_scaling_mds(full=False, print_report=False, shard_counts=None):
    """Aggregate metadata throughput as the metadata tier gains shards.

    Two workloads per shard count:

    - **metarates** in the many-directories regime (``private_dirs``: one
      directory per rank, so hash-by-parent-directory spreads ranks over
      shards).  Reported per-op rates and their sum over the original
      create/stat/utime trio (the ``mix`` row) are the
      throughput-vs-shards curve.  ``stat`` scales near-linearly
      (pure MDS CPU); ``utime`` sub-linearly (group-committed log forces
      batch *better* on fewer shards); ``create`` is bounded by the
      underlying file system, not the MDS — the floor virtualization
      cannot remove.  ``mdcreate`` (metadata-only create, no underlying
      object) runs as a fourth phase to expose the MDS's own create
      ceiling that the full create hides behind that floor; it is
      reported separately and deliberately kept out of ``mix`` so the
      historical curve stays comparable.
    - **traces**, the production mix, split across shards with the static
      :class:`SubtreeSharding` policy.  It is data-bound, so the check
      here is stability: per-class latencies must not regress when the
      namespace is partitioned.

    ``shard_counts`` (or the ``REPRO_SCALING_SHARDS`` environment
    variable, e.g. ``1,2``) overrides the default grid.
    """
    if shard_counts is None:
        env = os.environ.get("REPRO_SCALING_SHARDS")
        if env:
            shard_counts = tuple(int(tok) for tok in env.split(",") if tok)
        else:
            shard_counts = (1, 2, 4, 8) if _full(full) else (1, 2, 4)
    nodes = 16 if _full(full) else 8
    procs_per_node = 2
    fpp = 64 if _full(full) else 32
    # mdcreate runs last: the earlier phases' timings are untouched, so
    # the create/stat/utime/mix columns stay digit-identical to PR 2/3.
    ops = ("create", "stat", "utime", "mdcreate")
    trace_split = SubtreeSharding(
        {"/project/checkpoints": 0, "/project/results": 1}
    )
    results = {}
    for n_shards in shard_counts:
        testbed = build_flat_testbed(nodes, with_mds=n_shards)
        stack = CofsStack(testbed)
        res = run_metarates(stack, MetaratesConfig(
            nodes=nodes, procs_per_node=procs_per_node, files_per_proc=fpp,
            ops=ops, private_dirs=True,
        ))
        for op in ops:
            results[("metarates", op, n_shards)] = res.rate_per_s(op)
        results[("metarates", "mix", n_shards)] = sum(
            res.rate_per_s(op) for op in ("create", "stat", "utime")
        )
        trace_bed = build_flat_testbed(9, with_mds=n_shards)
        trace_stack = CofsStack(trace_bed, sharding=trace_split)
        trace = run_trace(trace_stack, TraceConfig(
            duration_ms=4000.0 if _full(full) else 2000.0,
        )).summary()
        results[("traces", "job_ms", n_shards)] = trace["job_ms"]
        results[("traces", "checkpoint_ms", n_shards)] = \
            trace["checkpoint_ms"]
        results[("traces", "jobs", n_shards)] = trace["jobs_completed"]
    out = {"shards": tuple(shard_counts), "nodes": nodes,
           "procs_per_node": procs_per_node, "files_per_proc": fpp,
           "ops": ops, "results": results}
    if print_report:
        rows = [
            [n_shards] +
            [round(results[("metarates", op, n_shards)], 1)
             for op in ops + ("mix",)] +
            [round(results[("traces", "job_ms", n_shards)], 2),
             results[("traces", "jobs", n_shards)]]
            for n_shards in shard_counts
        ]
        print(format_table(
            ["shards", "create/s", "stat/s", "utime/s", "mdcreate/s",
             "mix/s", "trace job ms", "trace jobs"], rows,
            title=(f"Scaling — metadata shards ({nodes} nodes x "
                   f"{procs_per_node} procs, private dirs)"),
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-S2 — beyond the paper: parallel broadcasts and online re-partitioning
# ---------------------------------------------------------------------------

def _colliding_dir_names(sharding, parent, count, n_shards, shard=0):
    """``count`` directory names under ``parent`` all owned by ``shard``.

    Models organic hot-spotting: with hash partitioning, independent
    directory names collide on one shard with probability 1/N each — an
    experiment just fast-forwards the search for a colliding set.
    """
    names = []
    index = 0
    while len(names) < count:
        name = f"s{index:04d}"
        if sharding.shard_of_dir(f"{parent}/{name}", n_shards) == shard:
            names.append(name)
        index += 1
    return tuple(names)


def run_scaling_rebalance(full=False, print_report=False, shard_counts=None):
    """Parallel mirror broadcasts and online load-aware re-partitioning.

    Two sub-experiments beyond ``scaling-mds``:

    - **mkdir/rmdir latency vs shard count, serial vs parallel
      broadcasts**: every mkdir/rmdir is a replicated mutation — local
      transaction plus one mirror RPC per peer — so its latency grows
      with the shard count.  Serial chains pay the *sum* of the peer
      round trips, overlapped broadcasts (``parallel_broadcasts``) pay
      roughly the *max*; the gap widens with shards.
    - **skewed-workload throughput before/after migration**: every rank
      directory is chosen to hash onto shard 0 (see
      :func:`_colliding_dir_names`), so a stat-heavy workload bottlenecks
      there no matter how many shards exist.  The
      :class:`~repro.core.shard.rebalance.Rebalancer` then samples the
      routers' load counters and re-homes the hot directories; the same
      workload re-runs against the *migrated* population
      (``assume_seeded``) and its throughput recovers toward the
      unskewed curve.

    ``shard_counts`` (or ``REPRO_REBALANCE_SHARDS``, e.g. ``1,2``)
    overrides the default grid of the latency sweep; the skew experiment
    uses the counts > 1.
    """
    from repro.core.shard import Rebalancer

    if shard_counts is None:
        env = os.environ.get("REPRO_REBALANCE_SHARDS")
        if env:
            shard_counts = tuple(int(tok) for tok in env.split(",") if tok)
        else:
            shard_counts = (1, 2, 4, 8) if _full(full) else (1, 2, 4)
    nodes = 8 if _full(full) else 4
    dirs_per_proc = 32 if _full(full) else 16
    results = {}
    ops_done = 0  # measured ops actually driven (quick-bench volume)

    # (a) mkdir/rmdir latency, serial vs parallel broadcasts.
    for n_shards in shard_counts:
        modes = ("serial",) if n_shards <= 2 else ("serial", "parallel")
        for mode in modes:
            testbed = build_flat_testbed(nodes, with_mds=n_shards)
            stack = CofsStack(testbed, cofs_config=CofsConfig(
                parallel_broadcasts=(mode == "parallel")))
            res = run_metarates(stack, MetaratesConfig(
                nodes=nodes, files_per_proc=dirs_per_proc,
                ops=("mkdir", "rmdir"),
            ))
            for op in ("mkdir", "rmdir"):
                results[(op, n_shards, mode)] = res.mean_ms(op)
                ops_done += res.recorder.count(op)
        if n_shards <= 2:
            # ≤1 peer: overlap cannot differ from the serial chain.
            for op in ("mkdir", "rmdir"):
                results[(op, n_shards, "parallel")] = \
                    results[(op, n_shards, "serial")]

    # (b) skewed stat workload, before/after online re-partitioning.
    skew_counts = [n for n in shard_counts if n > 1]
    procs_per_node = 2
    fpp = 64 if _full(full) else 32
    for n_shards in skew_counts:
        testbed = build_flat_testbed(nodes, with_mds=n_shards)
        stack = CofsStack(testbed)
        names = _colliding_dir_names(
            stack.sharding, "/bench/shared",
            nodes * procs_per_node, n_shards)
        config = MetaratesConfig(
            nodes=nodes, procs_per_node=procs_per_node,
            files_per_proc=fpp, ops=("stat",),
            rank_dir_names=names, cleanup=False,
        )
        skewed = run_metarates(stack, config)
        results[("skew-stat", n_shards, "before")] = skewed.rate_per_s("stat")
        rebalancer = Rebalancer(stack.routers, stack.shards)
        moves = stack.testbed.sim.run_process(rebalancer.rebalance())
        results[("skew-moves", n_shards)] = len(moves)
        rerun = run_metarates(
            stack, dataclasses.replace(config, assume_seeded=True))
        results[("skew-stat", n_shards, "after")] = rerun.rate_per_s("stat")
        ops_done += skewed.recorder.count("stat") + rerun.recorder.count("stat")

    out = {"shards": tuple(shard_counts), "nodes": nodes,
           "dirs_per_proc": dirs_per_proc, "ops_done": ops_done,
           "results": results}
    if print_report:
        rows = [
            [n_shards, op,
             round(results[(op, n_shards, "serial")], 4),
             round(results[(op, n_shards, "parallel")], 4)]
            for n_shards in shard_counts for op in ("mkdir", "rmdir")
        ]
        print(format_table(
            ["shards", "op", "serial ms/op", "parallel ms/op"], rows,
            title=f"Replicated mkdir/rmdir latency ({nodes} nodes)",
        ))
        rows = [
            [n_shards,
             round(results[("skew-stat", n_shards, "before")], 1),
             round(results[("skew-stat", n_shards, "after")], 1),
             results[("skew-moves", n_shards)]]
            for n_shards in skew_counts
        ]
        print(format_table(
            ["shards", "skewed stat/s", "rebalanced stat/s", "dirs moved"],
            rows,
            title=(f"Skewed workload vs online re-partitioning "
                   f"({nodes} nodes x {procs_per_node} procs)"),
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-S4 — beyond the paper: giant shared directories vs intra-dir splitting
# ---------------------------------------------------------------------------

def run_scaling_split(full=False, print_report=False, shard_counts=None):
    """Create-storm into ONE shared directory, whole vs split placement.

    The giant-directory regime the paper's Fig. 6 measures (every rank
    creating into the same directory) is the one workload whole-directory
    placement cannot help: the directory has exactly one owner shard, so
    the storm serializes there no matter how many shards the tier has —
    and re-homing only moves the ceiling.  Intra-directory partitioning
    hash-splits the directory's *entries* across shards; the same storm
    then spreads.

    Per shard count the storm runs twice, on fresh stacks:

    - **unsplit** — the directory left whole.  The mdcreate/stat rates
      stay flat as shards are added (the single-owner ceiling);
    - **split** — a short warmup storm first lets the
      :class:`~repro.core.shard.rebalance.Rebalancer` (armed with
      ``split_threshold``) sample the hotspot and hash-partition the
      directory across every shard, then the measured storm re-runs.
      ``mdcreate`` isolates the metadata tier (no underlying object), so
      its rate is the scaling headline; ``stat`` rides along as the
      read-side check.

    Every split run ends under the tier-wide invariant oracle.
    ``shard_counts`` (or ``REPRO_SPLIT_SHARDS``, e.g. ``1,4``) overrides
    the default grid.
    """
    from repro.core.faults import check_tier_invariants
    from repro.core.shard import Rebalancer

    if shard_counts is None:
        env = os.environ.get("REPRO_SPLIT_SHARDS")
        if env:
            shard_counts = tuple(int(tok) for tok in env.split(",") if tok)
        else:
            shard_counts = (1, 2, 4, 8) if _full(full) else (1, 2, 4)
    # The storm must *saturate* one shard for splitting to have anything
    # to spread: with few ranks every op is latency-bound and extra
    # shards buy nothing, so this experiment runs wider than the other
    # scaling sweeps.
    nodes = 16 if _full(full) else 8
    procs_per_node = 8
    fpp = 64 if _full(full) else 32
    ops = ("mdcreate", "stat")
    results = {}
    ops_done = 0
    virtual_ms = 0.0
    for n_shards in shard_counts:
        for mode in ("unsplit", "split"):
            if mode == "split" and n_shards == 1:
                # One shard has nothing to split across; the whole-dir
                # run doubles as the baseline both columns share.
                for op in ops:
                    results[(op, 1, "split")] = results[(op, 1, "unsplit")]
                results[("split-dirs", 1)] = 0
                continue
            testbed = build_flat_testbed(nodes, with_mds=n_shards)
            stack = CofsStack(testbed)
            config = MetaratesConfig(
                nodes=nodes, procs_per_node=procs_per_node,
                files_per_proc=fpp, ops=ops,
            )
            if mode == "split":
                # Warmup storm: enough traffic for the routers to sample
                # the hotspot, then one rebalancer round splits it.
                run_metarates(stack, dataclasses.replace(
                    config, files_per_proc=4, ops=("mdcreate",)))
                rebalancer = Rebalancer(
                    stack.routers, stack.shards, split_threshold=1.0)
                executed = stack.testbed.sim.run_process(
                    rebalancer.rebalance())
                splits = [rec for rec in executed if len(rec[2]) > 1]
                results[("split-dirs", n_shards)] = len(splits)
            res = run_metarates(stack, config)
            for op in ops:
                results[(op, n_shards, mode)] = res.rate_per_s(op)
                results[(op, n_shards, mode, "mean_ms")] = res.mean_ms(op)
            ops_done += sum(res.recorder.count(op) for op in ops)
            virtual_ms += stack.testbed.sim.now
            if mode == "split":
                check_tier_invariants(stack.shards, stack.sharding)
    out = {"shards": tuple(shard_counts), "nodes": nodes,
           "procs_per_node": procs_per_node, "files_per_proc": fpp,
           "ops": ops, "ops_done": ops_done, "virtual_ms": virtual_ms,
           "results": results}
    if print_report:
        rows = [
            [n_shards,
             round(results[("mdcreate", n_shards, "unsplit")], 1),
             round(results[("mdcreate", n_shards, "split")], 1),
             round(results[("stat", n_shards, "unsplit")], 1),
             round(results[("stat", n_shards, "split")], 1),
             results[("split-dirs", n_shards)]]
            for n_shards in shard_counts
        ]
        print(format_table(
            ["shards", "mdcreate/s whole", "mdcreate/s split",
             "stat/s whole", "stat/s split", "dirs split"], rows,
            title=(f"Giant shared directory — whole vs split placement "
                   f"({nodes} nodes x {procs_per_node} procs, one dir)"),
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-S3 — beyond the paper: primary failover under load
# ---------------------------------------------------------------------------

def run_scaling_failover(full=False, print_report=False):
    """Kill a shard's primary under metadata load; measure the outage.

    A replicated tier (2 shards x 2 replicas) runs the private-dirs
    metarates mix while a fault process fail-stops group 0's primary
    mid-phase.  The routers notice via EAGAIN, drive the fenced failover,
    and retry — so the *availability gap* is the promotion work itself
    (epoch bump + tier fences + allocator reseat, a few RPC round
    trips), not a journal replay: under synchronous quorum shipping the
    promoted backup's tables already hold every acknowledged record.
    Contrast ``recovery_base_ms`` (200 ms) — the *un*replicated tier's
    floor for restarting the shard in place — before counting any redo.

    Reported per run (baseline = identical load, no kill):

    - per-op mean / p50 / p99 / max latency — the tail absorbs the gap;
    - ``gap_ms`` — first dead-primary detection to serving-again,
      *derived from the failover trace span* (tracing is enabled around
      the kill run) and cross-checked against the group's own
      ``last_failover`` bookkeeping;
    - ``("failover", "step_ms", <step>)`` — the promotion sub-steps
      (epoch bump, tier fence, member fences, allocator reseat) read
      straight off the promote span's event marks;
    - ``post_failover_ops`` — ops completed after the kill (the full
      namespace keeps serving from the promoted primary; the cleanup
      phase deletes every file through it, which would fail loudly on
      any lost record).

    The run ends with the tier-wide and group invariant oracles plus the
    trace-invariant checker over the kill run's spans.
    """
    from repro.core.faults import (
        check_group_invariants, check_tier_invariants, kill_primary,
    )

    nodes = 8 if _full(full) else 4
    procs_per_node = 2
    fpp = 64 if _full(full) else 32
    shards, replicas = 2, 2
    ops = ("mdcreate", "stat", "utime")
    kill_at = 150.0  # ms: inside the *measured* mdcreate phase window
    # (quick scale: ~103-226 ms; full scale starts at the same offset and
    # runs longer), so the outage lands on timed ops and the failover
    # run's tail latencies absorb the gap instead of an untimed seeding
    # phase hiding it.
    results = {}
    owned_obs = obs.TRACER is None  # enable tracing just for the kill run
    for mode in ("baseline", "failover"):
        testbed = build_flat_testbed(nodes, with_mds=shards * replicas)
        stack = CofsStack(testbed, shards=shards, replicas=replicas)
        sim = testbed.sim
        killed = []
        mark = 0
        if mode == "failover":
            if owned_obs:
                obs.enable()
            mark = len(obs.TRACER.spans)
            group = stack.groups[0]

            def killer():
                yield sim.timeout(kill_at)
                killed.append(kill_primary(group))

            sim.process(killer(), name="kill-primary")
        res = run_metarates(stack, MetaratesConfig(
            nodes=nodes, procs_per_node=procs_per_node,
            files_per_proc=fpp, ops=ops, private_dirs=True,
        ))
        for op in ops:
            results[(mode, op, "mean_ms")] = res.mean_ms(op)
            results[(mode, op, "p50_ms")] = res.recorder.p50(op)
            results[(mode, op, "p99_ms")] = res.recorder.p99(op)
            results[(mode, op, "max_ms")] = res.recorder.summary(op).max
            results[(mode, op, "rate")] = res.rate_per_s(op)
        if mode == "failover":
            assert killed, "the kill never fired (run too short?)"
            group = stack.groups[0]
            assert group.failovers == 1, "no failover was driven"
            spans = obs.TRACER.spans[mark:]
            obs.TraceChecker(obs.TRACER).check_all()
            # The availability gap is the failover span, not ad-hoc
            # timing; the group's own bookkeeping must agree exactly
            # (both read the same simulated clock at the same points).
            gaps = [s for s in spans
                    if s.kind == "failover" and s.outcome == "ok"]
            assert len(gaps) == 1, f"expected one failover span: {gaps}"
            t0, t1 = group.last_failover
            assert abs(gaps[0].duration - (t1 - t0)) < 1e-9, (
                gaps[0].duration, t1 - t0)
            results[("failover", "gap_ms")] = gaps[0].duration
            promotes = [s for s in spans
                        if s.kind == "promote" and s.outcome == "ok"]
            assert len(promotes) == 1, "expected one promotion"
            marks_ = promotes[0].events
            for (_, prev_t, _), (step, step_t, _) in zip(marks_, marks_[1:]):
                key = ("failover", "step_ms", step)
                results[key] = results.get(key, 0.0) + (step_t - prev_t)
            if owned_obs:
                obs.disable()
            results[("failover", "killed_at_ms")] = kill_at
            results[("failover", "post_failover_ops")] = sum(
                res.recorder.count(op) for op in ops)
        check_tier_invariants(stack.primaries, stack.sharding)
        if stack.groups:
            check_group_invariants(stack.groups)
    out = {"nodes": nodes, "procs_per_node": procs_per_node,
           "files_per_proc": fpp, "shards": shards, "replicas": replicas,
           "ops": ops, "results": results}
    if print_report:
        rows = [
            [mode, op,
             round(results[(mode, op, "mean_ms")], 3),
             round(results[(mode, op, "p50_ms")], 3),
             round(results[(mode, op, "p99_ms")], 3),
             round(results[(mode, op, "max_ms")], 2),
             round(results[(mode, op, "rate")], 1)]
            for mode in ("baseline", "failover") for op in ops
        ]
        print(format_table(
            ["run", "op", "mean ms", "p50 ms", "p99 ms", "max ms", "ops/s"],
            rows,
            title=(f"Primary failover under load ({nodes} nodes, "
                   f"{shards}x{replicas} tier; gap "
                   f"{results[('failover', 'gap_ms')]:.2f} ms)"),
        ))
        step_rows = [
            [key[2], round(value, 4)]
            for key, value in sorted(results.items())
            if key[:2] == ("failover", "step_ms")
        ]
        print(format_table(
            ["promotion step", "ms"], step_rows,
            title="Availability gap breakdown (from the promote span)",
        ))
    return out


# ---------------------------------------------------------------------------
# EXP-S5 — beyond the paper: asynchronous group commit vs the force ceiling
# ---------------------------------------------------------------------------

def run_scaling_async(full=False, print_report=False, shard_counts=None):
    """Metadata mutation throughput, synchronous vs asynchronous commit.

    The private-dirs metarates mix runs twice per shard count, on fresh
    stacks: once with the default synchronous commits (every update pays
    its own journal force — the log-force ceiling ``scaling-mds``
    documents), once with ``CofsConfig(async_commit=True)`` (updates are
    acknowledged under dependency rules while a per-shard batcher
    coalesces forces; see ``docs/async-commit.md``).  ``mdcreate``
    isolates the metadata tier and is the scaling headline; ``utime``
    is the attr-write check and ``stat`` the read-side control (reads
    never force, so the two modes must agree there).

    The async runs execute under tracing with the full
    :class:`~repro.obs.TraceChecker` — including the
    durable-before-dependent-ack rule — over every emitted history, and
    end under the tier-wide invariant oracle.  ``shard_counts`` (or
    ``REPRO_ASYNC_SHARDS``, e.g. ``1,4``) overrides the default grid.
    """
    from repro.core.faults import check_tier_invariants

    if shard_counts is None:
        env = os.environ.get("REPRO_ASYNC_SHARDS")
        if env:
            shard_counts = tuple(int(tok) for tok in env.split(",") if tok)
        else:
            shard_counts = (1, 2, 4, 8) if _full(full) else (1, 2, 4)
    nodes = 16 if _full(full) else 8
    procs_per_node = 2
    fpp = 64 if _full(full) else 32
    ops = ("mdcreate", "utime", "stat")
    results = {}
    ops_done = 0
    virtual_ms = 0.0
    owned_obs = obs.TRACER is None  # trace just the async legs
    for n_shards in shard_counts:
        for mode in ("sync", "async"):
            cofs_cfg = CofsConfig(async_commit=(mode == "async"))
            testbed = build_flat_testbed(nodes, with_mds=n_shards)
            stack = CofsStack(testbed, cofs_config=cofs_cfg)
            if mode == "async" and owned_obs:
                obs.enable()
            res = run_metarates(stack, MetaratesConfig(
                nodes=nodes, procs_per_node=procs_per_node,
                files_per_proc=fpp, ops=ops, private_dirs=True,
            ))
            for op in ops:
                results[(op, n_shards, mode)] = res.rate_per_s(op)
                results[(op, n_shards, mode, "mean_ms")] = res.mean_ms(op)
            deferred = sum(s.dbsvc.deferred_acks for s in stack.shards)
            results[("deferred_acks", n_shards, mode)] = deferred
            if mode == "async":
                assert deferred > 0, "async run never deferred an ack"
                obs.TraceChecker(obs.TRACER).check_all()
                if owned_obs:
                    obs.disable()
            else:
                assert deferred == 0
            if stack.n_shards > 1:  # single-shard stacks have no tier
                check_tier_invariants(stack.shards, stack.sharding)
            ops_done += sum(res.recorder.count(op) for op in ops)
            virtual_ms += stack.testbed.sim.now
    out = {"shards": tuple(shard_counts), "nodes": nodes,
           "procs_per_node": procs_per_node, "files_per_proc": fpp,
           "ops": ops, "ops_done": ops_done, "virtual_ms": virtual_ms,
           "results": results}
    if print_report:
        rows = [
            [n_shards,
             round(results[("mdcreate", n_shards, "sync")], 1),
             round(results[("mdcreate", n_shards, "async")], 1),
             round(results[("utime", n_shards, "sync")], 1),
             round(results[("utime", n_shards, "async")], 1),
             round(results[("stat", n_shards, "async")], 1),
             results[("deferred_acks", n_shards, "async")]]
            for n_shards in shard_counts
        ]
        print(format_table(
            ["shards", "mdcreate/s sync", "mdcreate/s async",
             "utime/s sync", "utime/s async", "stat/s", "deferred acks"],
            rows,
            title=(f"Async group commit vs the log-force ceiling "
                   f"({nodes} nodes x {procs_per_node} procs, "
                   f"private dirs)"),
        ))
    return out


EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig5b": run_fig5b,
    "fig6": run_fig6,
    "table1": run_table1,
    "ablation-placement": run_ablation_placement,
    "ablation-mds": run_ablation_mds,
    "scaling-mds": run_scaling_mds,
    "scaling-rebalance": run_scaling_rebalance,
    "scaling-split": run_scaling_split,
    "scaling-failover": run_scaling_failover,
    "scaling-async": run_scaling_async,
}
