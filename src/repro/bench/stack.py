"""Full system stacks: bare parallel FS, and COFS over it.

A *stack* owns everything mounted on a testbed and hands out per-(node,
process) VFS mounts for workloads.  For the bare parallel FS, processes on a
node share the node's client (kernel filesystems are per node).  For COFS,
each process gets its own view of the node's FUSE mount because the
placement driver hashes the *creating process* into the underlying path
(paper §III-B).
"""

from repro.core.cofs import CofsFileSystem
from repro.core.config import CofsConfig
from repro.core.metaservice import MetadataService
from repro.core.sharding import (
    GroupTargets,
    HashDirSharding,
    ReplicatedShard,
    ShardMetadataService,
    ShardRouter,
)
from repro.fuse.mount import FuseConfig, FuseMount
from repro.pfs.config import PfsConfig
from repro.pfs.filesystem import Pfs


class PfsStack:
    """The baseline: clients mount the parallel FS directly."""

    system = "pfs"

    def __init__(self, testbed, config=None):
        self.testbed = testbed
        self.config = config or PfsConfig()
        self.pfs = Pfs(testbed.sim, testbed.servers, self.config)
        self._mounts = [self.pfs.client(m) for m in testbed.clients]

    def mount(self, node_index, pid=0):
        """The VFS for process ``pid`` on node ``node_index``."""
        return self._mounts[node_index]

    @property
    def n_nodes(self):
        return len(self._mounts)


class CofsStack:
    """COFS over the parallel FS, under a FUSE mount on every node.

    ``shards`` selects how many of the testbed's metadata machines host a
    namespace shard (default: all of them).  One shard keeps the original
    single :class:`MetadataService`; more build the sharded tier of
    :mod:`repro.core.sharding`, partitioned by ``sharding`` (defaults to
    hash-by-parent-directory).  Clients always talk through a
    :class:`ShardRouter`, which is a pure pass-through at one shard.

    ``replicas`` (default 1) turns each logical shard into a
    :class:`ReplicatedShard` group — a primary plus ``replicas - 1``
    backups, each on its own metadata machine (consecutive machines form
    a group), under synchronous quorum log shipping with epoch-fenced
    failover.  ``shards * replicas`` machines are consumed; routers
    become group-aware (they re-target the promoted primary on failure,
    and serve follower reads when the config enables them).  With the
    default ``replicas=1`` nothing changes — groups are never built and
    the routers take the exact seed code paths.
    """

    system = "cofs"

    def __init__(self, testbed, pfs_config=None, cofs_config=None,
                 fuse_config=None, policy=None, shards=None, sharding=None,
                 replicas=1):
        if testbed.mds is None:
            raise ValueError("COFS needs a testbed built with with_mds=True")
        self.testbed = testbed
        self.pfs_config = pfs_config or PfsConfig()
        self.cofs_config = cofs_config or CofsConfig()
        self.fuse_config = fuse_config or FuseConfig()
        self.pfs = Pfs(testbed.sim, testbed.servers, self.pfs_config)
        mds_machines = testbed.mds_shards or [testbed.mds]
        if replicas < 1:
            raise ValueError(f"need replicas >= 1, got {replicas}")
        if shards is None:
            shards = len(mds_machines) // replicas
        if not 1 <= shards * replicas <= len(mds_machines):
            raise ValueError(
                f"{shards} shards x {replicas} replicas needs "
                f"1..{len(mds_machines)} machines")
        if replicas > 1 and shards < 2:
            raise ValueError("replication needs the sharded tier "
                             "(shards >= 2)")
        self.sharding = sharding or HashDirSharding()
        self.groups = None
        if shards == 1:
            self.shards = [MetadataService(
                testbed.mds, self.cofs_config, policy=policy,
                streams=testbed.streams,
            )]
            router_targets = mds_machines[:shards]
        elif replicas == 1:
            mds_machines = mds_machines[:shards]
            self.shards = [
                ShardMetadataService(
                    machine, self.cofs_config, shard_id=index,
                    shard_machines=mds_machines, sharding=self.sharding,
                    policy=policy, streams=testbed.streams,
                )
                for index, machine in enumerate(mds_machines)
            ]
            router_targets = mds_machines
        else:
            # Pre-allocate the group->primary map so members can size the
            # tier before any group exists, then bind it once they do.
            targets = GroupTargets(shards)
            self.groups = []
            for index in range(shards):
                chunk = mds_machines[index * replicas:
                                     (index + 1) * replicas]
                members = [
                    ShardMetadataService(
                        machine, self.cofs_config, shard_id=index,
                        shard_machines=targets, sharding=self.sharding,
                        policy=policy, streams=testbed.streams,
                    )
                    for machine in chunk
                ]
                self.groups.append(
                    ReplicatedShard(members, self.cofs_config))
            targets.bind(self.groups)
            self.shards = [group.primary for group in self.groups]
            router_targets = targets
        self.mds = self.shards[0]
        self.n_shards = shards
        self.replicas = replicas
        self._underlying = [self.pfs.client(m) for m in testbed.clients]
        self._drivers = [
            ShardRouter(m, router_targets, self.cofs_config, self.sharding,
                        groups=self.groups)
            for m in testbed.clients
        ]
        self._views = {}

    @property
    def primaries(self):
        """Each group's *current* primary (the flat tier on replicas=1)."""
        if self.groups is None:
            return list(self.shards)
        return [group.primary for group in self.groups]

    def mount(self, node_index, pid=0):
        """The FUSE-mounted COFS view for process ``pid`` on a node."""
        key = (node_index, pid)
        view = self._views.get(key)
        if view is None:
            machine = self.testbed.clients[node_index]
            cofs = CofsFileSystem(
                machine, self._underlying[node_index],
                self._drivers[node_index], self.cofs_config, pid=pid,
            )
            view = FuseMount(machine, cofs, self.fuse_config)
            self._views[key] = view
        return view

    def underlying(self, node_index):
        """The bare parallel-FS client beneath a node's COFS mount
        (maintenance tools — the scrubber — walk the layout through it)."""
        return self._underlying[node_index]

    def driver(self, node_index):
        """A node's metadata router (maintenance fan-outs, rebalancing)."""
        return self._drivers[node_index]

    @property
    def routers(self):
        """Every node's metadata router (the rebalancer samples them)."""
        return list(self._drivers)

    @property
    def n_nodes(self):
        return len(self._underlying)
