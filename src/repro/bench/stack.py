"""Full system stacks: bare parallel FS, and COFS over it.

A *stack* owns everything mounted on a testbed and hands out per-(node,
process) VFS mounts for workloads.  For the bare parallel FS, processes on a
node share the node's client (kernel filesystems are per node).  For COFS,
each process gets its own view of the node's FUSE mount because the
placement driver hashes the *creating process* into the underlying path
(paper §III-B).
"""

from repro.core.cofs import CofsFileSystem
from repro.core.config import CofsConfig
from repro.core.metadriver import MetadataDriver
from repro.core.metaservice import MetadataService
from repro.fuse.mount import FuseConfig, FuseMount
from repro.pfs.config import PfsConfig
from repro.pfs.filesystem import Pfs


class PfsStack:
    """The baseline: clients mount the parallel FS directly."""

    system = "pfs"

    def __init__(self, testbed, config=None):
        self.testbed = testbed
        self.config = config or PfsConfig()
        self.pfs = Pfs(testbed.sim, testbed.servers, self.config)
        self._mounts = [self.pfs.client(m) for m in testbed.clients]

    def mount(self, node_index, pid=0):
        """The VFS for process ``pid`` on node ``node_index``."""
        return self._mounts[node_index]

    @property
    def n_nodes(self):
        return len(self._mounts)


class CofsStack:
    """COFS over the parallel FS, under a FUSE mount on every node."""

    system = "cofs"

    def __init__(self, testbed, pfs_config=None, cofs_config=None,
                 fuse_config=None, policy=None):
        if testbed.mds is None:
            raise ValueError("COFS needs a testbed built with with_mds=True")
        self.testbed = testbed
        self.pfs_config = pfs_config or PfsConfig()
        self.cofs_config = cofs_config or CofsConfig()
        self.fuse_config = fuse_config or FuseConfig()
        self.pfs = Pfs(testbed.sim, testbed.servers, self.pfs_config)
        self.mds = MetadataService(
            testbed.mds, self.cofs_config, policy=policy,
            streams=testbed.streams,
        )
        self._underlying = [self.pfs.client(m) for m in testbed.clients]
        self._drivers = [
            MetadataDriver(m, testbed.mds, self.cofs_config)
            for m in testbed.clients
        ]
        self._views = {}

    def mount(self, node_index, pid=0):
        """The FUSE-mounted COFS view for process ``pid`` on a node."""
        key = (node_index, pid)
        view = self._views.get(key)
        if view is None:
            machine = self.testbed.clients[node_index]
            cofs = CofsFileSystem(
                machine, self._underlying[node_index],
                self._drivers[node_index], self.cofs_config, pid=pid,
            )
            view = FuseMount(machine, cofs, self.fuse_config)
            self._views[key] = view
        return view

    @property
    def n_nodes(self):
        return len(self._underlying)
