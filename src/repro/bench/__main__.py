"""Command-line entry point: regenerate any figure/table of the paper.

Usage::

    python -m repro.bench fig4            # quick grid
    python -m repro.bench fig4 --full     # the paper's complete sweep
    python -m repro.bench all
    python -m repro.bench --quick --json BENCH_PR1.json --label after
"""

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.quick import (
    QUICK_EXPERIMENTS,
    append_run,
    check_fingerprints,
    latest_reference,
    run_quick,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment", nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run (default: all with --quick)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's complete parameter grid (slower)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run scaled-down versions of every figure, recording "
             "wall-clock seconds, simulated ops and ops/sec",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="with --quick: append the run to this JSON file",
    )
    parser.add_argument(
        "--label", default=None,
        help="with --quick: label stored with the run (e.g. baseline/after)",
    )
    parser.add_argument(
        "--obs", metavar="DIR", default=None,
        help="with --quick: enable tracing+metrics and write per-experiment "
             "trace/metrics JSONL and span-latency aggregates into DIR "
             "(charge-preserving: virtual_ms fingerprints are unchanged)",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="with --quick: skip the virtual_ms fingerprint regression gate "
             "against the latest committed BENCH_PR*.json",
    )
    args = parser.parse_args(argv)

    if args.json and not args.quick:
        parser.error("--json requires --quick")
    if args.obs and not args.quick:
        parser.error("--obs requires --quick")

    if args.quick:
        if args.experiment and args.experiment != "all":
            if args.experiment not in QUICK_EXPERIMENTS:
                parser.error(
                    f"no quick variant of {args.experiment!r}; choose from "
                    f"{', '.join(sorted(QUICK_EXPERIMENTS))}"
                )
            names = [args.experiment]
        else:
            names = sorted(QUICK_EXPERIMENTS)
        run = run_quick(names=names, label=args.label, obs_dir=args.obs)
        if not args.no_gate:
            reference = latest_reference()
            if reference is not None:
                check_fingerprints(run, reference)
            else:
                print("(fingerprint gate: no BENCH_PR*.json found; skipped)")
        if args.json:
            append_run(args.json, run)
            print(f"(appended run {run['label']!r} to {args.json})")
        return 0

    if not args.experiment:
        parser.error("an experiment name (or --quick) is required")
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===")
        EXPERIMENTS[name](full=args.full, print_report=True)
        print(f"({name} took {time.time() - start:.1f}s wall)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
