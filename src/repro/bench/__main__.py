"""Command-line entry point: regenerate any figure/table of the paper.

Usage::

    python -m repro.bench fig4            # quick grid
    python -m repro.bench fig4 --full     # the paper's complete sweep
    python -m repro.bench all
"""

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's complete parameter grid (slower)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        start = time.time()
        print(f"=== {name} ===")
        EXPERIMENTS[name](full=args.full, print_report=True)
        print(f"({name} took {time.time() - start:.1f}s wall)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
