"""Simulated testbeds matching the paper's hardware.

The base testbed (paper §II-A): IBM JS20 blades (2 CPUs each) in a blade
center with an internal 1 Gb switch; two Intel storage servers attached to
the blade center by a 1 Gb link each.  The 64-node experiment (paper §IV-A)
chains additional blade centers through extra switches, so remote blades
cross several (shared) uplinks to reach the file servers.

An optional extra machine hosts the COFS metadata service, with a local disk
(the paper used a 25 GB ext3-formatted disk on one blade).  ``with_mds``
also accepts an integer N to provision N metadata machines (each with its
own disk) for the sharded metadata tier; ``with_mds=True`` is exactly
``with_mds=1``, keeping single-MDS testbeds byte-identical.
"""

from dataclasses import dataclass, field

from repro.cluster.machine import Machine
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rand import RandomStreams
from repro.units import gbps

#: one-way propagation + forwarding latency per hop (ms)
HOP_LATENCY_MS = 0.04
#: link speed inside and between blade centers (1 GbE)
LINK_BW = gbps(1.0)


@dataclass
class Testbed:
    """A built cluster: simulator, network, machines."""

    sim: Simulator
    topology: Topology
    network: Network
    clients: list = field(default_factory=list)
    servers: list = field(default_factory=list)
    mds: Machine = None
    streams: RandomStreams = None
    #: all metadata-service machines (``mds`` is ``mds_shards[0]``).
    mds_shards: list = field(default_factory=list)


def _build_mds_machines(sim, net, topo, switch, with_mds):
    """The metadata machine(s): ``with_mds`` is a bool or a shard count."""
    machines = []
    for index in range(int(with_mds)):
        name = "mds" if index == 0 else f"mds{index}"
        host = topo.add_host(name)
        topo.add_link(host, switch, bandwidth=LINK_BW,
                      latency=HOP_LATENCY_MS)
        machines.append(Machine(sim, net, host, cpus=2))
    return machines


def build_flat_testbed(n_clients, n_servers=2, with_mds=False, seed=0,
                       client_cpus=2):
    """One blade center: ``n_clients`` blades + servers on a single switch."""
    sim = Simulator()
    topo = Topology(sim)
    net = Network(sim, topo)
    switch = topo.add_switch("bc0.sw")
    clients = []
    for i in range(n_clients):
        host = topo.add_host(f"node{i}")
        topo.add_link(host, switch, bandwidth=LINK_BW, latency=HOP_LATENCY_MS)
        clients.append(Machine(sim, net, host, cpus=client_cpus))
    servers = []
    for i in range(n_servers):
        host = topo.add_host(f"server{i}")
        topo.add_link(host, switch, bandwidth=LINK_BW, latency=HOP_LATENCY_MS)
        servers.append(Machine(sim, net, host, cpus=2))
    mds_shards = _build_mds_machines(sim, net, topo, switch, with_mds)
    return Testbed(
        sim=sim, topology=topo, network=net, clients=clients,
        servers=servers, mds=mds_shards[0] if mds_shards else None,
        streams=RandomStreams(seed), mds_shards=mds_shards,
    )


def build_hier_testbed(n_clients, blades_per_bc=8, n_servers=2,
                       with_mds=False, seed=0, client_cpus=2):
    """Chained blade centers (the paper's 64-node configuration).

    Blade center 0 holds the file servers; further centers are daisy-chained
    through 1 Gb uplinks, so blades in center *k* cross *k* extra switches
    (and share those uplinks) to reach the servers.
    """
    sim = Simulator()
    topo = Topology(sim)
    net = Network(sim, topo)
    n_bcs = (n_clients + blades_per_bc - 1) // blades_per_bc
    switches = []
    for bc in range(n_bcs):
        switch = topo.add_switch(f"bc{bc}.sw")
        switches.append(switch)
        if bc > 0:
            topo.add_link(
                switches[bc - 1], switch,
                bandwidth=LINK_BW, latency=HOP_LATENCY_MS,
            )
    clients = []
    for i in range(n_clients):
        bc = i // blades_per_bc
        host = topo.add_host(f"node{i}")
        topo.add_link(host, switches[bc], bandwidth=LINK_BW,
                      latency=HOP_LATENCY_MS)
        clients.append(Machine(sim, net, host, cpus=client_cpus))
    servers = []
    for i in range(n_servers):
        host = topo.add_host(f"server{i}")
        topo.add_link(host, switches[0], bandwidth=LINK_BW,
                      latency=HOP_LATENCY_MS)
        servers.append(Machine(sim, net, host, cpus=2))
    mds_shards = _build_mds_machines(sim, net, topo, switches[0], with_mds)
    return Testbed(
        sim=sim, topology=topo, network=net, clients=clients,
        servers=servers, mds=mds_shards[0] if mds_shards else None,
        streams=RandomStreams(seed), mds_shards=mds_shards,
    )
