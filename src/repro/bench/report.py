"""ASCII reporting in the layout of the paper's figures and tables."""


def format_table(headers, rows, title=None):
    """Render an aligned text table; rows are sequences matching headers."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title, xlabel, ylabel, series):
    """Render several (x, y) series as a compact table.

    ``series`` maps a label to a list of (x, y) pairs; all series are shown
    against the union of x values, in the paper's "values along the sweep"
    style.
    """
    xs = sorted({x for points in series.values() for x, _y in points})
    headers = [xlabel] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for label in series:
            lookup = dict(series[label])
            value = lookup.get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=f"{title}  [{ylabel}]")


def speedup(baseline, improved):
    """baseline/improved, guarding zero."""
    if improved <= 0:
        return float("inf")
    return baseline / improved
