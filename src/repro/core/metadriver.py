"""The client-side metadata driver: the stub talking to the MDS."""


class MetadataDriver:
    """Forwards metadata requests from one client node to the service."""

    def __init__(self, machine, mds_machine, config):
        self.machine = machine
        self.mds_machine = mds_machine
        self.config = config
        self.calls = 0

    def call(self, method, *args):
        """Coroutine: one RPC to the metadata service."""
        self.calls += 1
        return self.machine.call(
            self.mds_machine, "cofsmds", method, args=args,
            req_size=self.config.rpc_bytes, resp_size=self.config.rpc_bytes,
        )
