"""COFS — the COmposite File System (the paper's contribution).

COFS decouples three things the underlying parallel FS couples together
(paper §III): the user-visible file hierarchy, metadata handling, and the
physical placement of files.

- The **placement driver** (:mod:`repro.core.placement`) maps every new
  regular file into an underlying directory chosen by hashing the creating
  node, the virtual parent directory and the creating process, plus a
  randomization sublevel, with underlying directories capped at 512 entries.
  Shared-directory parallel workloads become per-node private small
  directories — exactly the regime the underlying FS is optimized for.
- The **metadata service** (:mod:`repro.core.metaservice`) keeps the virtual
  namespace and file attributes in database tables (Mnesia in the paper,
  :mod:`repro.db` here) on a dedicated node.  It stores *no* block/location
  information: data operations never touch it.
- The **metadata driver** (:mod:`repro.core.metadriver`) is the client-side
  stub forwarding namespace/attribute operations to the service.
- :class:`~repro.core.cofs.CofsFileSystem` ties these together behind the
  same VFS interface as the bare parallel FS; mount it under
  :class:`~repro.fuse.FuseMount` to charge the user-space interposition
  costs, as the paper's prototype did.
"""

from repro.core.cofs import CofsFileSystem
from repro.core.config import CofsConfig
from repro.core.metadriver import MetadataDriver
from repro.core.metaservice import MetadataService
from repro.core.placement import (
    HashPlacementPolicy,
    IdentityPlacementPolicy,
    PlacementPolicy,
    RandomSpreadPolicy,
)

__all__ = [
    "CofsConfig",
    "CofsFileSystem",
    "HashPlacementPolicy",
    "IdentityPlacementPolicy",
    "MetadataDriver",
    "MetadataService",
    "PlacementPolicy",
    "RandomSpreadPolicy",
]
