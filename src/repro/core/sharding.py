"""Compatibility façade for the sharded metadata tier.

The 2,200-line monolith that used to live here was decomposed into the
layered :mod:`repro.core.shard` package; this module re-exports the
public surface so existing imports (tests, benches, stacks, examples)
keep working unchanged.  The old module's sections map onto the new
layout as follows:

================================  =====================================
old ``sharding.py`` section        new home
================================  =====================================
ResolveForward / VinoForward       :mod:`repro.core.shard.routing`
Partitioning policies              :mod:`repro.core.shard.routing`
Client-side router                 :mod:`repro.core.shard.routing`
shard arithmetic / peer comms      :mod:`repro.core.shard.routing`
resolution hooks / read handlers   :mod:`repro.core.shard.routing`
vino-addressed ops, peer queries   :mod:`repro.core.shard.routing`
namespace mutation w/ replication  :mod:`repro.core.shard.replication`
mirror (replication) ops           :mod:`repro.core.shard.replication`
coordination records               :mod:`repro.core.shard.coordination`
rename (local/replicated/cross)    :mod:`repro.core.shard.coordination`
subtree migration (copy/import/    :mod:`repro.core.shard.coordination`
purge)
link / link_vino / unlink_vino     :mod:`repro.core.shard.coordination`
recovery + tier-wide passes        :mod:`repro.core.shard.recovery`
``recover_tier``                   :mod:`repro.core.shard.recovery`
*(new)* online re-partitioning     :mod:`repro.core.shard.rebalance`
``ShardMetadataService``           :mod:`repro.core.shard.service`
================================  =====================================

See the package docstring of :mod:`repro.core.shard` for the design
overview (partition function, replicated skeleton, forwards, 2-phase
coordination, crash recovery, online re-partitioning) and each module's
docstring for its layer's invariants and known simplifications.
"""

from repro.core.shard import (
    EpochFenced,
    GroupTargets,
    HashDirSharding,
    MemberDown,
    Rebalancer,
    ReplicatedShard,
    ResolveForward,
    ShardingPolicy,
    ShardMetadataService,
    ShardRouter,
    SubtreeSharding,
    VinoForward,
    recover_tier,
)

__all__ = [
    "EpochFenced",
    "GroupTargets",
    "HashDirSharding",
    "MemberDown",
    "Rebalancer",
    "ReplicatedShard",
    "ResolveForward",
    "ShardingPolicy",
    "ShardMetadataService",
    "ShardRouter",
    "SubtreeSharding",
    "VinoForward",
    "recover_tier",
]
