"""Sharded metadata tier: the COFS namespace over N metadata servers.

The paper's metadata service is a single node; the moment client counts
grow, it becomes the next bottleneck after the one it removed.  This module
partitions the virtual namespace across N :class:`MetadataService` shards,
following the HopsFS school of hierarchical-metadata partitioning:

- **Partition function** (:class:`ShardingPolicy`): the shard that owns a
  name is a pure function of its *parent directory's* virtual path.  All
  dentries of one directory therefore live together on one shard — exactly
  HopsFS's "partition inodes by parent id" scheme, which keeps the common
  operations (lookup, create, readdir of a directory) single-shard.  Two
  policies are provided, mirroring the pluggable-placement pattern of
  :mod:`repro.core.placement`: :class:`HashDirSharding` (hash of the parent
  path, HopsFS-style) and :class:`SubtreeSharding` (static subtree
  assignment, the classic Ceph/static-partition alternative).

- **Replicated skeleton**: directory and symlink inodes (the *skeleton* of
  the tree) are synchronously replicated to every shard by their
  coordinator, so path resolution for the replicated prefix is always
  local, shard-local resolve caches stay charge-preserving, and only leaf
  (file) entries are partitioned.  This is HopsFS's observation that the
  immutable-ish upper tree is cheap to share while the file population —
  the actual bottleneck — must be spread.

- **Shard router** (:class:`ShardRouter`): the client-side replacement for
  the single-target :class:`~repro.core.metadriver.MetadataDriver`.  It
  holds one driver per shard and routes every operation by virtual path
  (or, for ``close_sync``, by a learned vino→shard map so delegation
  write-back lands on the shard that owns the inode).

- **Forwarded resolves**: when a walk crosses a symlink whose target is
  owned by another shard, the serving shard aborts its (so far read-only)
  transaction and re-dispatches the whole operation to the owner — a
  server-to-server RPC with full simulated cost.  Cross-shard hard links
  store a *stub* dentry carrying the inode's home shard; inode operations
  through such a name are forwarded to the home shard the same way.

- **Cross-shard rename/link**: a rename whose source and destination
  resolve to different shards commits via the source shard acting as
  coordinator: detach locally, install remotely (``rename_install``), and
  compensate (re-attach) if the install fails.  Renames of replicated
  objects (directories, symlinks) replay on every shard, with any
  replaced-file upath reported back by the shard that owned it.

- **Crash consistency (2-phase prepare/commit)**: every multi-step
  mutation journals a durable *intent record* (table ``intents``)
  atomically with its first local change, participants journal *prepare*
  records atomically with theirs, and non-idempotent side effects
  (remote link-count drops) are guarded by *dedup* records so they apply
  exactly once.  A cross-shard file rename commits the moment the
  destination's install transaction (carrying the prepare record) is
  durable; a cross-shard link commits when the coordinator's
  dentry-insert transaction (which atomically deletes its intent) is
  durable.  :meth:`ShardMetadataService.recover` runs a tier-wide
  completion pass that rolls committed intents forward and uncommitted
  ones back, resyncs the replicated skeleton, and reconciles placement
  counters — proven by exhaustive per-boundary fault injection in
  ``tests/core/test_crash_points.py`` (see :mod:`repro.core.faults`).

A 1-shard configuration never constructs this service; the stack keeps the
plain :class:`MetadataService` + a pass-through router, so every seed
figure doubles as a regression test for the routing layer.

Known simplifications (documented, exercised by tests where noted):

- Replication and broadcasts are synchronous and serial; a coordinator
  answers only after every mirror applied (no partial-failure handling
  beyond rename compensation).
- Hard links to *symlinks* are rejected on sharded stacks (replica link
  counts would drift); plain files hard-link across shards fine.
- Bucket (placement) counters travel with the inode row: a cross-shard
  rename decrements the origin shard's counter and increments the
  destination's in the same transactions that move the row, and
  recovery's :meth:`ShardMetadataService.reconcile_buckets` recounts
  them from the surviving rows.
- A crash can orphan *underlying* objects (a replaced file's underlying
  path is unlinked by the client after the metadata commit; if the
  client died with the coordinator, the object lingers until a scrub).
  The metadata tier itself stays consistent — only underlying space is
  leaked.
- A directory's mtime/ctime are authoritative on its *contents-owner*
  shard (file creates/unlinks update only that replica); ``getattr`` of a
  directory re-fetches from it, and directory ``setattr`` broadcasts.
  Stat of a directory *through a symlink* may still read a stale replica.
- ``rmdir``'s emptiness checks and its mirror broadcast are not one
  atomic unit; a mirror that grew entries in the window refuses to
  delete (no file becomes unreachable, but the skeleton diverges until
  the rmdir is retried).  Full cross-shard atomicity is a ROADMAP item.
- A partitioned file in the *middle* of a path answers ENOTDIR on every
  kind of walk: a missing dentry forwards to the shard owning the
  enclosing directory's entries, which resolves authoritatively.  Parent
  walks (create, unlink, rename destination, readdir) mark the forward
  *final* so the redispatch lands on that owner verbatim — re-deriving
  the target from the leaf's parent would ping-pong with the router's
  leaf-parent routing.  (This closed the historical ENOENT/ENOTDIR
  asymmetry between leaf and parent walks; the cross-shard-count
  differential oracle now pins the symmetric behavior.)
- A directory rename commits (locally and on every mirror) *before*
  :meth:`ShardMetadataService._migrate_renamed_subtree` re-homes the
  subtree's file entries; until each copy → import → purge RPC triple
  lands, a re-homed file is transiently ENOENT for other clients whose
  lookups route to the new owner shard.  The window is crash-safe (the
  migration is idempotent and redone by the rename's intent on
  recovery) but not atomic for concurrent readers — pinned by
  ``test_subtree_migration_window_only_transient_enoent``.  Making the
  migration part of the rename's atomic commit is a ROADMAP item
  alongside cross-shard rmdir atomicity.
"""

import hashlib
import itertools

from repro.core.metadriver import MetadataDriver
from repro.core.metaservice import _MAX_SYMLINK_DEPTH, MetadataService
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, normalize, split


class ResolveForward(Exception):
    """Control flow: continue this operation on ``shard`` at ``path``.

    ``final`` marks a forward to the shard that *authoritatively* owns
    the missing component's enclosing directory: the redispatch target
    must not be re-derived from the path (that would bounce the op right
    back to the shard that raised the forward).
    """

    def __init__(self, shard, path, final=False):
        super().__init__(shard, path)
        self.shard = shard
        self.path = path
        self.final = final


class VinoForward(Exception):
    """Control flow: the leaf's inode lives on ``shard`` under ``vino``."""

    def __init__(self, shard, vino):
        super().__init__(shard, vino)
        self.shard = shard
        self.vino = vino


# ---------------------------------------------------------------------------
# Partitioning policies
# ---------------------------------------------------------------------------

class ShardingPolicy:
    """Interface: which shard owns the entries of a directory."""

    def shard_of_dir(self, dir_path, n_shards):
        """The shard (int in ``range(n_shards)``) owning ``dir_path``'s
        entries."""
        raise NotImplementedError


class HashDirSharding(ShardingPolicy):
    """Hash-by-parent-directory (HopsFS-style).

    Entries of one directory always co-locate; distinct directories spread
    uniformly, so workloads touching many directories scale with shards.
    """

    def shard_of_dir(self, dir_path, n_shards):
        if n_shards <= 1:
            return 0
        digest = hashlib.blake2b(
            normalize(dir_path).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % n_shards


class SubtreeSharding(ShardingPolicy):
    """Static subtree partitioning: longest matching prefix wins.

    ``assignments`` maps a directory prefix to a shard; everything below it
    (unless a longer rule overrides) is served there.  Unmatched paths fall
    to ``default``.  This is the administrator-controlled alternative to
    hashing: whole projects stay on one shard.
    """

    def __init__(self, assignments, default=0):
        self.rules = sorted(
            ((normalize(prefix), int(shard))
             for prefix, shard in dict(assignments).items()),
            key=lambda rule: len(rule[0]), reverse=True,
        )
        self.default = default

    def shard_of_dir(self, dir_path, n_shards):
        if n_shards <= 1:
            return 0
        norm = normalize(dir_path)
        for prefix, shard in self.rules:
            if norm == prefix or prefix == "/" \
                    or norm.startswith(prefix + "/"):
                return shard % n_shards
        return self.default % n_shards


# ---------------------------------------------------------------------------
# Client-side router
# ---------------------------------------------------------------------------

class ShardRouter:
    """Routes each metadata op to the shard owning its leaf's directory.

    Drop-in replacement for a single :class:`MetadataDriver`: exposes the
    same ``call(method, *args)`` coroutine.  With one shard it degenerates
    to a pure pass-through (zero simulated and zero accounting difference),
    which is what keeps 1-shard stacks byte-identical to the pre-sharding
    system.
    """

    #: methods whose first argument is a path routed by its parent dir.
    _LEAF_OPS = frozenset({
        "getattr", "create_node", "setattr", "unlink", "rmdir",
        "readlink", "open_map",
    })

    def __init__(self, machine, shard_machines, config, sharding):
        self.machine = machine
        self.config = config
        self.sharding = sharding
        self.drivers = [
            MetadataDriver(machine, m, config) for m in shard_machines
        ]
        self.n_shards = len(self.drivers)
        self._vino_shard = {}  # vino -> home shard (learned from views)

    @property
    def calls(self):
        return sum(driver.calls for driver in self.drivers)

    def shard_for_dir(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def shard_for_leaf(self, path):
        parent, _name = split(path)
        return self.sharding.shard_of_dir(parent, self.n_shards)

    def call(self, method, *args):
        """Coroutine: one (possibly fanned-out) metadata RPC."""
        if self.n_shards == 1:
            return self.drivers[0].call(method, *args)
        if method == "statfs":
            return self._statfs()
        if method == "close_sync":
            shard = self._vino_shard.get(args[0], 0)
            return self.drivers[shard].call(method, *args)
        if method == "readdir":
            shard = self.shard_for_dir(args[0])
        elif method == "rename":
            shard = self.shard_for_leaf(args[0])
        elif method == "link":
            shard = self.shard_for_leaf(args[1])
        elif method in self._LEAF_OPS:
            shard = self.shard_for_leaf(args[0])
        else:
            shard = 0
        return self._tracked(shard, method, args)

    #: bound on learned vino homes; overflow clears (close_sync then
    #: falls back to shard 0 and the service fans out on a miss).
    _VINO_MAP_MAX = 4096

    def _tracked(self, shard, method, args):
        """Coroutine: call one shard; learn vino homes from returned views."""
        view = yield from self.drivers[shard].call(method, *args)
        if type(view) is dict and "vino" in view:
            if len(self._vino_shard) >= self._VINO_MAP_MAX:
                self._vino_shard.clear()
            self._vino_shard[view["vino"]] = view.get("shard", shard)
        return view

    def _statfs(self):
        """Coroutine: namespace stats aggregated across every shard.

        The replicated skeleton (directories, symlinks) is counted once
        via shard 0's totals; files sum across shards.
        """
        merged = None
        files = 0
        for driver in self.drivers:
            stats = yield from driver.call("statfs")
            if merged is None:
                merged = dict(stats)
            files += stats["files"]
        # shard 0's inode count covers the whole skeleton plus its own
        # files; the other shards contribute only their files.
        merged["inodes"] = merged["inodes"] + files - merged["files"]
        merged["files"] = files
        return merged


# ---------------------------------------------------------------------------
# The sharded service
# ---------------------------------------------------------------------------

class ShardMetadataService(MetadataService):
    """One shard of the partitioned metadata tier.

    Extends :class:`MetadataService` with a shard identity, the replicated
    directory/symlink skeleton, forwarded resolves, and the cross-shard
    rename/link protocols described in the module docstring.  Registered as
    ``cofsmds`` on its own machine, so shard-to-shard coordination uses the
    exact same simulated RPC path as client traffic.
    """

    def __init__(self, machine, config, shard_id, shard_machines, sharding,
                 policy=None, streams=None):
        self.shard_id = shard_id
        self.n_shards = len(shard_machines)
        self.shard_machines = shard_machines
        self.sharding = sharding
        self._local_only = False
        self._parent_walk = False
        #: optional :class:`repro.core.faults.CrashSchedule`; when set,
        #: every peer RPC send/receive becomes a crash boundary.
        self.faults = None
        #: allocator for intent-record ids (reseated on recovery).
        self._intent_seq = itertools.count(1)
        super().__init__(machine, config, policy=policy, streams=streams)
        # Vino allocation: stride-N classes keep shards collision-free while
        # every shard bootstraps the same replicated root as vino 1.
        start = self.shard_id + 1
        if self.shard_id == 0:
            start += self.n_shards  # vino 1 is the root, already allocated
        self._vino = itertools.count(start, self.n_shards)

    def _placement_stream(self):
        """Placement randomization: an independent stream per shard."""
        return f"cofs.placement.s{self.shard_id}"

    # -- shard arithmetic -------------------------------------------------

    def _owner_of(self, path):
        """The shard owning ``path``'s leaf entry (by its parent dir)."""
        parent, _name = split(path)
        return self.sharding.shard_of_dir(parent, self.n_shards)

    def _dir_owner(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def _check_hops(self, hops, path):
        if hops > _MAX_SYMLINK_DEPTH:
            raise FsError.einval(
                f"too many levels of symbolic links: {path}")

    # -- peer communication ----------------------------------------------

    def _peer(self, shard, method, *args):
        """Coroutine: an internal shard-to-shard RPC (full network cost)."""
        call = self.machine.call(
            self.shard_machines[shard], "cofsmds", method, args=args,
            req_size=self.config.rpc_bytes, resp_size=self.config.rpc_bytes,
        )
        if self.faults is None:
            return call
        return self._peer_traced(call, shard, method)

    def _peer_traced(self, call, shard, method):
        """Coroutine: a peer RPC whose send/receive are crash boundaries."""
        self.faults.boundary(("send", self.shard_id, shard, method))
        result = yield from call
        self.faults.boundary(("recv", self.shard_id, shard, method))
        return result

    # -- coordination records (intent / prepare / dedup) -------------------

    def _new_tid(self):
        """A fresh intent id, unique per shard and across recoveries."""
        return f"s{self.shard_id}.{next(self._intent_seq)}"

    @staticmethod
    def _part_id(tid):
        """The participant (prepare) record id derived from ``tid``."""
        return f"{tid}@p"

    @staticmethod
    def _dedup_id(tid, vino):
        """The dedup record id guarding one remote link-count drop."""
        return f"{tid}#d{vino}"

    def intent_forget(self, rid):
        """RPC (also used locally): durably drop one coordination record."""
        yield from self._dispatch()

        def body(txn):
            if txn.read("intents", rid) is None:
                return False
            txn.delete("intents", rid)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def open_intents(self):
        """RPC: every unresolved coordination record on this shard."""
        yield from self._dispatch()

        def body(txn):
            return [dict(row) for row in txn.match("intents")]

        rows = yield from self.dbsvc.execute(body)
        return rows

    def _gather_intents(self):
        """Coroutine: ``(shard, record)`` for every open record tier-wide."""
        records = []
        for shard in range(self.n_shards):
            rows = yield from self._call_shard(shard, "open_intents")
            records.extend((shard, row) for row in rows)
        return records

    def _forget_dedups(self, tid, pending):
        """Coroutine: drop the dedup records a drained op left at homes."""
        for home, vino in pending:
            yield from self._peer(
                home, "intent_forget", self._dedup_id(tid, vino))
        return True

    def _redispatch(self, fwd, method, *args):
        """Coroutine: restart ``method`` where a forward says it belongs."""
        return self._call_shard(fwd.shard, method, *args)

    def _broadcast(self, method, *args):
        """Coroutine: apply a mirror op on every other shard (serial)."""
        results = []
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                results.append((yield from self._peer(shard, method, *args)))
        return results

    def _drain_pending(self, pending, now, tid=None):
        """Coroutine: run remote inode adjustments a txn body queued.

        ``pending`` is the caller-owned list its transaction body filled
        (never instance state: bodies of concurrent operations must not
        see each other's queues).  Returns the remote ``(upath, last)``
        outcomes so a rename that replaced a stub name can report the
        underlying path to unlink.  With ``tid``, each drop is guarded by
        a dedup record at its home shard so a post-crash redo applies it
        exactly once.
        """
        outcomes = []
        for home, vino in pending:
            dedup = None if tid is None else self._dedup_id(tid, vino)
            outcomes.append(
                (yield from self._peer(home, "unlink_vino", vino, now,
                                       dedup)))
        return outcomes

    @staticmethod
    def _merge_replaced(result, outcomes):
        """Fold remote unlink outcomes into a rename's (upath, last)."""
        replaced_upath, replaced_last = result
        for outcome in outcomes:
            if outcome and outcome[0] is not None and outcome[1]:
                replaced_upath, replaced_last = outcome[0], outcome[1]
        return (replaced_upath, replaced_last)

    def _local_body(self, fn):
        """Wrap a txn body so resolution never forwards (mirror replays)."""
        def wrapped(txn):
            self._local_only = True
            try:
                return fn(txn)
            finally:
                self._local_only = False
        return wrapped

    # -- resolution hooks -------------------------------------------------

    def _attr_view(self, row):
        view = super()._attr_view(row)
        view["shard"] = self.shard_id
        return view

    def _resolve_retarget(self, txn, target, follow, depth):
        if not self._local_only:
            # Walking toward a directory whose *contents* matter (a parent
            # walk, or readdir) routes by the target directory itself;
            # walking to a leaf routes by the leaf's parent.
            owner = self._dir_owner(target) if self._parent_walk \
                else self._owner_of(target)
            if owner != self.shard_id:
                raise ResolveForward(owner, target)
        return super()._resolve_retarget(txn, target, follow, depth)

    def _absent_dentry(self, txn, path, parts, index):
        last = index == len(parts) - 1
        if not self._local_only and (self._parent_walk or not last):
            dir_path = "/" + "/".join(parts[:index])
            owner = self._dir_owner(dir_path)
            if owner != self.shard_id:
                # A component with no local dentry may still be a
                # partitioned file (or stub) on the shard owning this
                # directory's entries — which must then answer ENOTDIR,
                # not ENOENT.  Forward; the owner resolves authoritatively
                # and never re-forwards (it holds the entries).  Parent
                # walks mark the forward ``final``: their redispatch must
                # go to this owner verbatim, since re-deriving the shard
                # from the leaf's parent would route straight back here.
                # (A leaf walk's *last* component never forwards — the
                # router already sent it to the dentry owner.)
                raise ResolveForward(
                    owner, path, final=self._parent_walk)
        super()._absent_dentry(txn, path, parts, index)

    def _missing_child(self, txn, path, dentry, last):
        home = dentry.get("home")
        if home is None or home == self.shard_id or self._local_only:
            return super()._missing_child(txn, path, dentry, last)
        if not last or self._parent_walk:
            # A cross-shard hard link is never a directory; using it as a
            # path component (or as a parent/readdir target) is ENOTDIR —
            # only leaf inode ops forward to the home shard.
            raise FsError.enotdir(path)
        raise VinoForward(home, dentry["vino"])

    def _txn_resolve_parent(self, txn, path):
        # Transaction bodies never yield, so this flag is scoped to the
        # synchronous walk: no other handler can observe it mid-flight.
        prev = self._parent_walk
        self._parent_walk = True
        try:
            return super()._txn_resolve_parent(txn, path)
        except ResolveForward as fwd:
            # The *parent* walk crossed shards: re-attach the leaf so the
            # re-dispatched operation carries the full rewritten path.  An
            # authoritative (final) forward keeps its target shard; a
            # symlink-retarget forward re-routes by the rewritten parent.
            _parent, name = split(path)
            base = normalize(fwd.path)
            full = f"/{name}" if base == "/" else f"{base}/{name}"
            if fwd.final:
                raise ResolveForward(fwd.shard, full, final=True) from None
            raise ResolveForward(self._owner_of(full), full) from None
        finally:
            self._parent_walk = prev

    def _resolve_rename_old(self, txn, old):
        # rename's peek already pinned the source to this shard; walk the
        # local skeleton replica so a concurrently-installed cross-shard
        # symlink can't raise a source forward that the redispatch
        # handlers would misread as a destination forward.
        prev = self._local_only
        self._local_only = True
        try:
            return super()._resolve_rename_old(txn, old)
        finally:
            self._local_only = prev

    def _rename_replace_stub(self, txn, existing, pending):
        home = existing.get("home")
        if home is None or home == self.shard_id:
            return False
        pending.append((home, existing["vino"]))
        return True

    def _unlink_stub_home(self, dentry):
        home = dentry.get("home")
        if home is None or home == self.shard_id:
            return None
        return home

    # -- forwarded single-path handlers -----------------------------------

    def getattr(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().getattr(path)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "getattr", fwd.path, _hops + 1)
            return view
        except VinoForward as fwd:
            view = yield from self._peer(fwd.shard, "getattr_vino", fwd.vino)
            return view
        if view["kind"] == DIRECTORY:
            # File creates/unlinks touch a directory's times only on its
            # contents-owner shard — the authoritative replica for stat.
            owner = self._dir_owner(path)
            if owner != self.shard_id:
                view = yield from self._peer(
                    owner, "getattr", path, _hops + 1)
        return view

    def setattr(self, path, changes, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        self._check_setattr(changes)
        tids = []
        inner = self._setattr_body(path, changes, now)

        def body(txn):
            row = inner(txn)
            if row["kind"] == DIRECTORY:
                # Keep every replica of the skeleton coherent (stat reads
                # the contents-owner replica; see getattr); the intent
                # makes the broadcast crash-redoable.
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_setattr", [path, changes, now]))
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "setattr", fwd.path, changes, now, _hops + 1)
            return view
        except VinoForward as fwd:
            view = yield from self._peer(
                fwd.shard, "setattr_vino", fwd.vino, changes, now)
            return view
        view = self._attr_view(row)
        if tids:
            yield from self._broadcast("mirror_setattr", path, changes, now)
            yield from self.intent_forget(tids[0])
        return view

    def _txn_mirror_intent(self, txn, mirror, args):
        """Journal a redoable mirror broadcast with the local change."""
        tid = self._new_tid()
        txn.insert("intents", {
            "id": tid, "role": "coord", "op": "mirror",
            "mirror": mirror, "args": list(args),
        })
        return tid

    def mirror_setattr(self, path, changes, now):
        """RPC (shard-to-shard): replicate a directory/symlink setattr."""
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            try:
                row = dict(self._txn_resolve(txn, path))
            except FsError:
                return False
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def open_map(self, path, for_write, now, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().open_map(path, for_write, now)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "open_map", fwd.path, for_write, now, _hops + 1)
        except VinoForward as fwd:
            view = yield from self._peer(
                fwd.shard, "open_vino", fwd.vino, for_write, now)
        return view

    def readdir(self, path, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()

        def body(txn):
            # Like a parent walk: a symlink on the way must route by the
            # target directory itself (whose entries live on its owner).
            prev = self._parent_walk
            self._parent_walk = True
            try:
                row = self._txn_resolve(txn, path)
            finally:
                self._parent_walk = prev
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            names = [d["name"] for d in
                     txn.index_read("dentries", "parent", row["vino"])]
            return sorted(names)

        try:
            names = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            names = yield from self._redispatch(
                fwd, "readdir", fwd.path, _hops + 1)
        return names

    def readlink(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            target = yield from super().readlink(path)
        except ResolveForward as fwd:
            target = yield from self._redispatch(
                fwd, "readlink", fwd.path, _hops + 1)
        except VinoForward:
            # A cross-shard hard-link stub: its inode is never a symlink
            # (hard links to symlinks are rejected on sharded stacks), so
            # answer directly instead of leaking the control-flow exception.
            raise FsError.einval(f"not a symlink: {path}")
        return target

    # -- namespace mutation with replication -------------------------------

    def create_node(self, path, kind, mode, uid, gid, node, pid, now,
                    target=None, _hops=0):
        self._check_hops(_hops, path)
        if kind == FILE:
            # Files are single-shard: the base transaction, no intent.
            try:
                view = yield from super().create_node(
                    path, kind, mode, uid, gid, node, pid, now, target)
            except ResolveForward as fwd:
                view = yield from self._redispatch(
                    fwd, "create_node", fwd.path, kind, mode, uid, gid,
                    node, pid, now, target, _hops + 1)
            return view
        yield from self._dispatch()
        tids = []
        inner = self._create_body(
            path, kind, mode, uid, gid, node, pid, now, target)

        def body(txn):
            row = inner(txn)
            tids.append(self._txn_mirror_intent(
                txn, "mirror_create", [path, self._attr_view(row), now]))
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "create_node", fwd.path, kind, mode, uid, gid, node,
                pid, now, target, _hops + 1)
            return view
        view = self._attr_view(row)
        yield from self._broadcast("mirror_create", path, view, now)
        yield from self.intent_forget(tids[0])
        return view

    def unlink(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        tids = []
        inner = self._unlink_body(path, now)

        def body(txn):
            outcome = inner(txn)
            if outcome[0] == "#stub":
                # The remote link-count drop must survive a crash here.
                tid = self._new_tid()
                txn.insert("intents", {
                    "id": tid, "role": "coord", "op": "unlink_stub",
                    "vino": outcome[1], "home": outcome[2], "now": now,
                })
                tids.append(tid)
            elif outcome[0] == SYMLINK and outcome[1][1]:
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_unlink", [path, now]))
            return outcome

        try:
            outcome = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "unlink", fwd.path, now, _hops + 1)
            return result
        if outcome[0] == "#stub":  # inode adjusted at its home shard
            _marker, vino, home = outcome
            tid = tids[0]
            dedup = self._dedup_id(tid, vino)
            result = yield from self._peer(
                home, "unlink_vino", vino, now, dedup)
            yield from self.intent_forget(tid)
            yield from self._peer(home, "intent_forget", dedup)
            return result
        kind, (upath, last) = outcome
        if kind == SYMLINK and last:
            yield from self._broadcast("mirror_unlink", path, now)
            yield from self.intent_forget(tids[0])
        return (upath, last)

    def rmdir(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        owner = self._dir_owner(path)
        if owner != self.shard_id:
            # The directory's file population lives on its owner shard.
            entries = yield from self._peer(owner, "count_children_of", path)
            if entries:
                raise FsError.enotempty(path)
        yield from self._dispatch()
        tids = []
        inner = self._rmdir_body(path, now)

        def body(txn):
            result = inner(txn)
            tids.append(self._txn_mirror_intent(
                txn, "mirror_rmdir", [path, now]))
            return result

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rmdir", fwd.path, now, _hops + 1)
            return result
        yield from self._broadcast("mirror_rmdir", path, now)
        yield from self.intent_forget(tids[0])
        return result

    # -- rename: local, replicated, and cross-shard ------------------------

    def rename(self, old, new, now, _hops=0):
        self._check_hops(_hops, old)
        yield from self._dispatch()

        def peek(txn):
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(old)
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return (None, dentry["vino"], home)
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                raise FsError.enoent(old)
            return (row["kind"], row["vino"], None)

        try:
            kind, vino, home = yield from self.dbsvc.execute(peek)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename", fwd.path, new, now, _hops + 1)
            return result

        dst = self._owner_of(new)
        if kind in (DIRECTORY, SYMLINK):
            return (yield from self._rename_replicated(
                kind, vino, old, new, dst, now, _hops))
        if dst == self.shard_id and home is None:
            # Entirely this shard's business: the base transaction, plus
            # an intent when it leaves redoable remote work behind (a
            # replaced stub's link drop, a replaced symlink's replicas).
            pending, replaced, tids = [], [], []
            inner = self._rename_body(old, new, now, pending, replaced)

            def body(txn):
                result = inner(txn)
                if pending or SYMLINK in replaced:
                    tid = self._new_tid()
                    txn.insert("intents", {
                        "id": tid, "role": "coord", "op": "rename_post",
                        "new": new, "now": now, "pending": list(pending),
                        "replaced_symlink": SYMLINK in replaced,
                    })
                    tids.append(tid)
                return result

            try:
                result = yield from self.dbsvc.execute(body)
            except ResolveForward as fwd:
                result = yield from self.rename(old, fwd.path, now, _hops + 1)
                return result
            if tids:
                tid = tids[0]
                drained = yield from self._drain_pending(pending, now, tid)
                result = self._merge_replaced(result, drained)
                if SYMLINK in replaced:
                    # The rename destroyed a replicated symlink at ``new``;
                    # its replicas on every other shard must die with it
                    # (as unlink does), or stale replicas keep resolving.
                    yield from self._broadcast("mirror_unlink", new, now)
                yield from self.intent_forget(tid)
                yield from self._forget_dedups(tid, pending)
            return result
        return (yield from self._rename_cross_shard(
            old, new, vino, home, dst, now, _hops))

    def _rename_replicated(self, kind, vino, old, new, dst, now, _hops):
        """Coroutine: rename of a directory/symlink — replay on all shards."""
        if dst != self.shard_id:
            entry = yield from self._peer(dst, "peek_entry", new)
            if entry is not None and entry["kind"] not in (DIRECTORY, SYMLINK):
                if kind == DIRECTORY:
                    # A file (or stub) occupies the target name on its owner.
                    raise FsError.enotdir(new)
        if kind == DIRECTORY:
            # Replacing a directory: its file population lives on its owner.
            content_owner = self._dir_owner(new)
            if content_owner != self.shard_id:
                entries = yield from self._peer(
                    content_owner, "count_children_of", new)
                if entries:
                    raise FsError.enotempty(new)
        pending, tids = [], []
        inner = self._rename_body(old, new, now, pending)

        def body(txn):
            result = inner(txn)
            tid = self._new_tid()
            txn.insert("intents", {
                "id": tid, "role": "coord", "op": "rename_replicated",
                "kind": kind, "vino": vino, "old": old, "new": new,
                "now": now, "pending": list(pending),
            })
            tids.append(tid)
            return result

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self.rename(old, fwd.path, now, _hops + 1)
            return result
        tid = tids[0]
        drained = yield from self._drain_pending(pending, now, tid)
        result = self._merge_replaced(result, drained)
        mirrored = yield from self._broadcast("mirror_rename", old, new, now)
        result = self._merge_replaced(result, mirrored)
        if kind == DIRECTORY:
            yield from self._migrate_renamed_subtree(vino, old, new, now)
        yield from self.intent_forget(tid)
        yield from self._forget_dedups(tid, pending)
        return result

    def _migrate_renamed_subtree(self, vino, old, new, now):
        """Coroutine: re-home file children after a directory rename.

        Partitioning is by *path*, so renaming a directory may change the
        owner of its (and every descendant directory's) file entries — the
        well-known cost of path-based partitioning that HopsFS sidesteps by
        hashing immutable inode ids.  The replicated skeleton makes the
        fix cheap to coordinate: this shard enumerates the subtree locally,
        then moves each re-homed directory's file entries with a
        copy → import → purge RPC triple.  Copy-then-delete (rather than
        the destructive export this replaced) means a crash between the
        RPCs never loses entries: they transiently exist on both shards,
        and re-running the migration (recovery's intent roll-forward does)
        converges — import skips keys it already holds, purge deletes
        only what the copy listed.
        """

        def collect(txn):
            found = [(old, new, vino)]
            frontier = [(vino, old, new)]
            while frontier:
                dvino, old_path, new_path = frontier.pop()
                for dentry in txn.index_read("dentries", "parent", dvino):
                    if dentry.get("home") is not None:
                        continue
                    row = txn.read("inodes", dentry["vino"])
                    if row is not None and row["kind"] == DIRECTORY:
                        entry = (f"{old_path}/{dentry['name']}",
                                 f"{new_path}/{dentry['name']}",
                                 dentry["vino"])
                        found.append(entry)
                        frontier.append((dentry["vino"], entry[0], entry[1]))
            return found

        dirs = yield from self.dbsvc.execute(collect)
        for old_path, new_path, dvino in dirs:
            src = self._dir_owner(old_path)
            dst = self._dir_owner(new_path)
            if src == dst:
                continue
            dentries, inodes = yield from self._call_shard(
                src, "copy_dir_children", dvino)
            if dentries:
                yield from self._call_shard(
                    dst, "import_dir_children", dvino, dentries, inodes)
                yield from self._call_shard(
                    src, "purge_dir_children", dvino,
                    [d["key"] for d in dentries],
                    [r["vino"] for r in inodes])

    def copy_dir_children(self, vino):
        """RPC (shard-to-shard): read a directory's file entries here.

        Read-only: the entries stay until :meth:`purge_dir_children`
        confirms the destination holds them, so no crash point between
        the migration RPCs can lose an entry.
        """
        yield from self._dispatch()

        def body(txn):
            dentries, inodes = [], []
            for dentry in txn.index_read("dentries", "parent", vino):
                dentry = dict(dentry)
                if dentry.get("home") is None:
                    row = txn.read("inodes", dentry["vino"])
                    if row is None or row["kind"] != FILE:
                        continue  # replicated skeleton stays put
                    if row["nlink"] > 1:
                        # Hard-linked under other names: the inode stays
                        # home (see _rename_cross_shard's detach); only
                        # the name moves, shipped as a stub back here.
                        dentry["home"] = self.shard_id
                    else:
                        inodes.append(dict(row))
                dentries.append(dentry)
            return (dentries, inodes)

        result = yield from self.dbsvc.execute(body)
        return result

    def import_dir_children(self, vino, dentries, inodes):
        """RPC (shard-to-shard): adopt re-homed file entries (idempotent)."""
        yield from self._dispatch()

        def body(txn):
            for row in inodes:
                if txn.read("inodes", row["vino"]) is None:
                    txn.insert("inodes", dict(row))
                    if row["upath"]:
                        self._txn_bucket_adjust(txn, row["upath"], 1)
            for dentry in dentries:
                dentry = dict(dentry)
                if dentry.get("home") == self.shard_id:
                    del dentry["home"]  # the stub came home
                if txn.read("dentries", tuple(dentry["key"])) is None:
                    txn.insert("dentries", dentry)
            self._invalidate_resolve(vino)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def purge_dir_children(self, vino, keys, vinos):
        """RPC (shard-to-shard): drop migrated entries once the new owner
        holds them (idempotent: deletes only what is still here)."""
        yield from self._dispatch()

        def body(txn):
            changed = False
            for key in keys:
                if txn.read("dentries", tuple(key)) is not None:
                    txn.delete("dentries", tuple(key))
                    changed = True
            for moved in vinos:
                row = txn.read("inodes", moved)
                if row is not None and row["kind"] == FILE:
                    txn.delete("inodes", moved)
                    if row["upath"]:
                        self._txn_bucket_adjust(txn, row["upath"], -1)
                    changed = True
            if changed:
                self._invalidate_resolve(vino)
            return changed

        result = yield from self.dbsvc.execute(body)
        return result

    def _call_shard(self, shard, method, *args):
        """Coroutine: invoke an internal op on a shard (maybe this one)."""
        if shard == self.shard_id:
            return getattr(self, method)(*args)
        return self._peer(shard, method, *args)

    def _rename_cross_shard(self, old, new, vino, home, dst, now, _hops):
        """Coroutine: move a file's name (and inode) to another shard.

        Two-phase: the detach transaction journals an intent record —
        carrying the detached inode row itself, so no crash point can
        lose it — atomically with the detach; the destination's install
        transaction journals a prepare record atomically with the
        install and is the commit point.  Afterwards the coordinator
        drops its intent, then the participant's prepare record.  A
        crash anywhere is resolved by recovery's completion pass: the
        prepare record's existence decides commit (roll forward) vs
        abort (re-attach from the intent's payload).
        """
        tid = self._new_tid()

        def detach(txn):
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(old)
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            if dentry.get("home") is not None:
                out = (None, dentry["home"])
            else:
                row = txn.read_for_update("inodes", dentry["vino"])
                if row is None:
                    raise FsError.enoent(old)
                if row["nlink"] > 1:
                    # Other names — local hard links or remote stubs —
                    # still reference this inode; moving the row would
                    # dangle every one of them.  It stays home and the
                    # renamed name becomes a stub pointing here.
                    row["ctime"] = now
                    txn.write("inodes", row)
                    out = (None, self.shard_id)
                else:
                    txn.delete("inodes", row["vino"])
                    if row["upath"]:
                        # The placement charge travels with the row.
                        self._txn_bucket_adjust(txn, row["upath"], -1)
                    row["ctime"] = now
                    out = (row, None)
            moved, stub_home = out
            txn.insert("intents", {
                "id": tid, "role": "coord", "op": "rename",
                "old": old, "new": new, "dst": dst, "now": now,
                "row": dict(moved) if moved is not None else None,
                "stub": None if stub_home is None
                else {"vino": dentry["vino"], "home": stub_home},
            })
            return out

        # The peek above already pinned ``old``'s canonical resolution to
        # this shard; the detach — and any compensation — walks the local
        # replica of the skeleton (_local_body), so a cross-shard symlink
        # installed concurrently on the path can neither leak a forward
        # exception to the client nor strand the detached inode.
        row, stub_home = yield from self.dbsvc.execute(
            self._local_body(detach))
        if row is None:
            payload, stub = None, {"vino": vino, "home": stub_home}
        else:
            payload, stub = row, None
        try:
            result = yield from self._call_shard(
                dst, "rename_install", new, payload, stub, now, tid)
        except FsError:
            yield from self._rename_rollback(tid, old, payload, stub, now)
            raise
        if result == "#same":
            # Old and new name already point at the same inode: POSIX says
            # do nothing, so undo the detach (the install wrote no prepare
            # record, so a crash before this lands rolls back the same way).
            yield from self._rename_rollback(tid, old, payload, stub, now)
            return (None, False)
        yield from self.intent_forget(tid)
        yield from self._call_shard(result[2], "retire_rename_part", tid)
        return (result[0], result[1])

    def _rename_rollback(self, tid, old, row, stub, now):
        """Coroutine: abort a cross-shard rename — re-attach the detached
        name and drop the intent in one transaction (idempotent: recovery
        may race or repeat it)."""

        def body(txn):
            if txn.read("intents", tid) is None:
                return False
            parent, name = self._txn_resolve_parent(txn, old)
            if txn.read("dentries", (parent["vino"], name)) is None:
                self._txn_reattach(txn, old, row, stub, now)
            txn.delete("intents", tid)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _txn_reattach(self, txn, path, row, stub, now):
        """Compensation: put a detached name (and inode) back."""
        parent, name = self._txn_resolve_parent(txn, path)
        vino = row["vino"] if row is not None else stub["vino"]
        dentry = {
            "key": (parent["vino"], name), "parent": parent["vino"],
            "name": name, "vino": vino,
        }
        if stub is not None and stub["home"] != self.shard_id:
            dentry["home"] = stub["home"]
        self._invalidate_resolve(parent["vino"])
        txn.insert("dentries", dentry)
        if row is not None:
            txn.insert("inodes", dict(row))
            if row["upath"]:
                self._txn_bucket_adjust(txn, row["upath"], 1)
        up = dict(parent)
        up["mtime"] = up["ctime"] = now
        txn.write("inodes", up)
        return True

    def rename_install(self, new, row, stub, now, tid, _hops=0):
        """RPC (shard-to-shard): attach a renamed file at its new shard.

        The install transaction is the rename's commit point: it journals
        a prepare record (under ``tid``) atomically with the attach, so
        recovery can tell a committed rename (roll the coordinator's
        intent forward) from an aborted one (re-attach the old name).
        Returns ``(replaced_upath, replaced_last, installer_shard)``, or
        ``"#same"`` without writing a prepare record.
        """
        self._check_hops(_hops, new)
        yield from self._dispatch()
        moving_vino = row["vino"] if row is not None else stub["vino"]
        pending, replaced = [], []

        def body(txn):
            new_parent, new_name = self._txn_resolve_parent(txn, new)
            existing = txn.read("dentries", (new_parent["vino"], new_name))
            replaced_upath, replaced_last = None, False
            if existing is not None:
                if existing["vino"] == moving_vino:
                    return "#same"
                ehome = existing.get("home")
                if ehome is not None and ehome != self.shard_id:
                    pending.append((ehome, existing["vino"]))
                else:
                    target = txn.read_for_update("inodes", existing["vino"])
                    if target is not None:
                        if target["kind"] == DIRECTORY:
                            raise FsError.eisdir(new)
                        target["nlink"] -= 1
                        if target["nlink"] <= 0:
                            txn.delete("inodes", target["vino"])
                            if target["kind"] == FILE and target["upath"]:
                                self._txn_bucket_adjust(
                                    txn, target["upath"], -1)
                            replaced_upath = target["upath"]
                            replaced_last = True
                            replaced.append(target["kind"])
                        else:
                            txn.write("inodes", target)
                txn.delete("dentries", (new_parent["vino"], new_name))
            self._invalidate_resolve(new_parent["vino"])
            dentry = {
                "key": (new_parent["vino"], new_name),
                "parent": new_parent["vino"], "name": new_name,
                "vino": moving_vino,
            }
            if stub is not None and stub["home"] != self.shard_id:
                dentry["home"] = stub["home"]
            txn.insert("dentries", dentry)
            if row is not None:
                txn.insert("inodes", dict(row))
                if row["upath"]:
                    self._txn_bucket_adjust(txn, row["upath"], 1)
            np = dict(new_parent)
            np["mtime"] = np["ctime"] = now
            txn.write("inodes", np)
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "rename",
                "new": new, "now": now, "pending": list(pending),
                "replaced_symlink": SYMLINK in replaced,
            })
            return (replaced_upath, replaced_last)

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename_install", fwd.path, row, stub, now, tid,
                _hops + 1)
            return result
        if result == "#same":
            return result
        outcomes = yield from self._drain_pending(pending, now, tid)
        if SYMLINK in replaced:
            # The install destroyed a replicated symlink at ``new``; kill
            # its replicas everywhere else (including the coordinator) so
            # no stale replica keeps resolving the dead link.
            yield from self._broadcast("mirror_unlink", new, now)
        merged = self._merge_replaced(result, outcomes)
        return (merged[0], merged[1], self.shard_id)

    def mirror_rename(self, old, new, now):
        """RPC (shard-to-shard): replay a replicated-object rename.

        A replay that replaces a stub queues a remote link-count drop;
        that drop gets its own intent here (this shard coordinates it),
        because the *caller's* intent only redoes the broadcast — and a
        replayed ``mirror_rename`` whose rename already applied answers
        ENOENT, so it would never re-reach this drop.
        """
        yield from self._dispatch()
        pending, tids = [], []
        inner = self._rename_body(old, new, now, pending)

        def body(txn):
            result = inner(txn)
            if pending:
                tid = self._new_tid()
                txn.insert("intents", {
                    "id": tid, "role": "coord", "op": "rename_post",
                    "new": new, "now": now, "pending": list(pending),
                    "replaced_symlink": False,
                })
                tids.append(tid)
            return result

        try:
            result = yield from self.dbsvc.execute(self._local_body(body))
        except FsError:
            return (None, False)
        if tids:
            tid = tids[0]
            drained = yield from self._drain_pending(pending, now, tid)
            result = self._merge_replaced(result, drained)
            yield from self.intent_forget(tid)
            yield from self._forget_dedups(tid, pending)
        return result

    # -- link: possibly cross-shard ---------------------------------------

    def link(self, src, dst, now, _hops=0):
        """Coroutine: hard link, two-phase when it crosses shards.

        The coordinator (destination-parent owner) journals an intent
        *before* any link count moves; the bump transaction at the
        source's home journals a prepare record atomically with the
        bump; the coordinator's dentry-insert transaction atomically
        deletes the intent — that deletion is the commit point.  On any
        failure (or crash) the bump is rolled back by
        :meth:`link_abort`, which drops the count and the prepare record
        in one transaction, so neither a repeat nor a crash mid-rollback
        can double-revert it.
        """
        self._check_hops(_hops, src)
        yield from self._dispatch()
        tid = self._new_tid()
        src_owner = self._owner_of(src)
        try:
            if src_owner == self.shard_id:
                view, home = yield from self._link_fetch_local(
                    src, now, tid, coordinate=True)
            else:
                # The intent must be durable before any *remote* bump:
                # a prepare record without a coordinator intent reads as
                # committed to recovery.  (The local-fetch path instead
                # folds the intent into the bump transaction itself.)
                yield from self.dbsvc.execute(
                    lambda txn: txn.insert(
                        "intents", self._link_intent(tid, src, dst, now)))
                view, home = yield from self._peer(
                    src_owner, "link_fetch", src, now, tid)
        except ResolveForward as fwd:
            yield from self.intent_forget(tid)
            result = yield from self._redispatch(
                fwd, "link", fwd.path, dst, now, _hops + 1)
            return result
        except FsError:
            # The bump transaction aborted: no prepare record anywhere.
            yield from self.intent_forget(tid)
            raise

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, dst)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                raise FsError.eexist(dst)
            self._invalidate_resolve(parent["vino"])
            dentry = {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            }
            if home != self.shard_id:
                dentry["home"] = home
            txn.insert("dentries", dentry)
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            txn.delete("intents", tid)  # the commit point
            if home == self.shard_id:
                # The prepare record sits on this very shard: retire it
                # with the commit instead of in a follow-up transaction.
                txn.delete("intents", self._part_id(tid))
            return True

        try:
            yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            # Destination parent crossed shards: undo the bump, move the
            # whole operation to the right coordinator.
            yield from self._call_shard(home, "link_abort", tid, now)
            yield from self.intent_forget(tid)
            result = yield from self._redispatch(
                fwd, "link", src, fwd.path, now, _hops + 1)
            return result
        except FsError:
            yield from self._call_shard(home, "link_abort", tid, now)
            yield from self.intent_forget(tid)
            raise
        if home != self.shard_id:
            yield from self._peer(
                home, "intent_forget", self._part_id(tid))
        return view

    def _link_intent(self, tid, src, dst, now):
        return {"id": tid, "role": "coord", "op": "link",
                "src": src, "dst": dst, "now": now}

    def _link_fetch_local(self, src, now, tid, coordinate=False):
        """Coroutine: bump the link count of ``src``'s inode on this shard.

        With ``coordinate`` (this shard is the link's coordinator), the
        coordinator intent rides the bump transaction alongside the
        prepare record — one durable commit covers both; when the source
        turns out to be a stub, the intent is journaled alone *before*
        the remote bump instead.  A remote coordinator (``link_fetch``)
        already journaled its intent and passes ``coordinate=False``.
        """

        def body(txn):
            row = self._txn_resolve(txn, src, follow=False)
            if row["kind"] == DIRECTORY:
                raise FsError.eisdir(src)
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: {src}")
            row = dict(row)
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            if coordinate:
                txn.insert("intents", self._link_intent(tid, src, None, now))
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "link",
                "vino": row["vino"], "now": now,
            })
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except VinoForward as fwd:
            if coordinate:
                yield from self.dbsvc.execute(
                    lambda txn: txn.insert(
                        "intents", self._link_intent(tid, src, None, now)))
            view = yield from self._peer(
                fwd.shard, "link_vino", fwd.vino, now, tid)
            return (view, fwd.shard)
        return (self._attr_view(row), self.shard_id)

    def link_fetch(self, src, now, tid, _hops=0):
        """RPC (shard-to-shard): resolve + bump a link source for a peer
        (the caller coordinates: its intent is already durable)."""
        self._check_hops(_hops, src)
        yield from self._dispatch()
        try:
            result = yield from self._link_fetch_local(src, now, tid)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "link_fetch", fwd.path, now, tid, _hops + 1)
        return result

    def link_abort(self, tid, now):
        """RPC (shard-to-shard): roll back an optimistic link-count bump.

        Atomic with the prepare record's deletion, so it is idempotent:
        recovery (or a repeated live rollback) finds no record and does
        nothing.  Uses the full ``_drop_link`` semantics — if every other
        name vanished while the link was in flight, the rollback is the
        last drop and must reclaim the inode and its placement slot.
        """
        yield from self._dispatch()
        pid = self._part_id(tid)

        def body(txn):
            rec = txn.read("intents", pid)
            if rec is None:
                return False
            txn.delete("intents", pid)
            row = txn.read_for_update("inodes", rec["vino"])
            if row is None:
                return False
            self._drop_link(txn, row, now)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def close_sync(self, vino, size, mtime, now):
        """Delegated write-back; chases an inode a rename migrated away.

        The router targets the learned home shard, but a concurrent
        cross-shard rename can move the inode after a client learned its
        home.  A miss here fans out to the peers before giving up, so the
        delegated size/mtime are never silently dropped.
        """
        result = yield from super().close_sync(vino, size, mtime, now)
        if result:
            return True
        for shard in range(self.n_shards):
            if shard == self.shard_id:
                continue
            found = yield from self._peer(
                shard, "close_sync_local", vino, size, mtime, now)
            if found:
                return True
        return False

    def close_sync_local(self, vino, size, mtime, now):
        """RPC (shard-to-shard): close_sync without the fan-out retry."""
        result = yield from super().close_sync(vino, size, mtime, now)
        return result

    # -- vino-addressed inode ops (forward targets) ------------------------

    def getattr_vino(self, vino):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def setattr_vino(self, vino, changes, now):
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def open_vino(self, vino, for_write, now):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if for_write:
                if row["kind"] == DIRECTORY:
                    raise FsError.eisdir(f"vino {vino}")
                row = dict(row)
                row["delegated"] = True
                txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def link_vino(self, vino, now, tid):
        """RPC: bump a link count at the inode's home, with the prepare
        record journaled atomically (the stub-mediated fetch path)."""
        yield from self._dispatch()

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: "
                    f"vino {vino}")
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "link",
                "vino": vino, "now": now,
            })
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def unlink_vino(self, vino, now, dedup=None):
        """RPC: drop one link at the inode's home shard.

        With ``dedup``, the drop is exactly-once: a dedup record commits
        atomically with it (storing the outcome), and a repeat — live
        retry or recovery redo — returns the recorded outcome instead of
        dropping again.
        """
        yield from self._dispatch()

        def body(txn):
            if dedup is not None:
                rec = txn.read("intents", dedup)
                if rec is not None:
                    return tuple(rec["outcome"])
            row = txn.read_for_update("inodes", vino)
            if row is None:
                outcome = (None, False)
            else:
                outcome = self._drop_link(txn, row, now)
            if dedup is not None:
                txn.insert("intents", {
                    "id": dedup, "role": "dedup",
                    "outcome": list(outcome),
                })
            return outcome

        result = yield from self.dbsvc.execute(body)
        return result

    # -- peer queries ------------------------------------------------------

    def count_children_of(self, path):
        """RPC (shard-to-shard): how many entries this shard holds under
        ``path`` (0 when the path does not resolve here)."""
        yield from self._dispatch()

        def body(txn):
            try:
                row = self._txn_resolve(txn, path)
            except (FsError, ResolveForward):
                return 0
            if row["kind"] != DIRECTORY:
                return 0
            return len(txn.index_read("dentries", "parent", row["vino"]))

        count = yield from self.dbsvc.execute(body)
        return count

    def peek_entry(self, path):
        """RPC (shard-to-shard): this shard's dentry at ``path``, if any.

        ``kind`` is None for a stub whose inode lives elsewhere.
        """
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except (FsError, ResolveForward):
                return None
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return None
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return {"vino": dentry["vino"], "kind": None, "home": home}
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                return None
            return {"vino": row["vino"], "kind": row["kind"],
                    "home": self.shard_id}

        entry = yield from self.dbsvc.execute(body)
        return entry

    # -- mirror (replication) ops ------------------------------------------

    def mirror_create(self, path, view, now):
        """RPC (shard-to-shard): replicate a directory/symlink create."""
        yield from self._dispatch()

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, path)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                return False
            row = {
                "vino": view["vino"], "kind": view["kind"],
                "mode": view["mode"], "uid": view["uid"], "gid": view["gid"],
                "nlink": view["nlink"], "size": view["size"],
                "atime": view["atime"], "mtime": view["mtime"],
                "ctime": view["ctime"], "target": view["target"],
                "upath": view["upath"], "delegated": False,
            }
            txn.insert("inodes", row)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            })
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            if view["kind"] == DIRECTORY:
                up["nlink"] += 1
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_unlink(self, path, now):
        """RPC (shard-to-shard): replicate a symlink removal."""
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            row = txn.read("inodes", dentry["vino"])
            if row is not None:
                txn.delete("inodes", row["vino"])
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_rmdir(self, path, now):
        """RPC (shard-to-shard): replicate a directory removal.

        Guard against the coordinator's check-then-act window: if entries
        appeared here since the emptiness checks, refuse to delete so no
        file becomes unreachable (the skeleton diverges until the retried
        rmdir; full cross-shard atomicity is a ROADMAP open item).
        """
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            if txn.index_read("dentries", "parent", dentry["vino"]):
                return False
            self._invalidate_resolve(parent["vino"])
            self._invalidate_resolve(dentry["vino"])
            txn.delete("dentries", (parent["vino"], name))
            txn.delete("inodes", dentry["vino"])
            up = dict(parent)
            up["nlink"] -= 1
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    # -- recovery ----------------------------------------------------------

    def recover(self):
        """Coroutine: crash/recover this shard, then repair the tier.

        After the local rebuild (journal replay + allocator reseating,
        :meth:`recover_local`), this shard drives the tier-wide passes:
        resolve every open intent/prepare record (roll committed
        cross-shard operations forward, uncommitted ones back), *then*
        resync the replicated skeleton (a shard restored from an older
        journal prefix may hold a stale replica set), and reconcile the
        placement counters against the surviving inode rows.  Intent
        completion must come first: a half-replicated rename's surviving
        intent re-broadcasts the replay, whereas resyncing first would
        read the half-replicated state as divergence and erase both
        sides of it.  Every pass is idempotent — a crash *during*
        recovery is recovered from by simply recovering again.

        Recovery assumes a quiesced tier: the completion pass reads
        *every* shard's open intents and would resolve (abort) the
        intent of an operation still in flight on a healthy peer,
        racing its coordinator.  Real deployments fence with epochs or
        leases before admitting new operations; that machinery is a
        ROADMAP item, and the crash drills quiesce by construction (the
        injected crash kills the whole in-flight operation).
        """
        lost = yield from self.recover_local()
        yield from self.complete_tier_intents()
        yield from self.resync_skeleton()
        yield from self.reconcile_tier_buckets()
        # The completion pass can re-attach rows a rolled-back rename had
        # detached (they travelled inside the intent record, invisible to
        # the first reseat): reseat again against the settled tables.
        yield from self.reseat_allocators()
        return lost

    def recover_local(self):
        """Coroutine: rebuild this shard only, keeping its vino stride."""
        lost = yield from super().recover()
        yield from self.reseat_allocators()
        return lost

    def reseat_allocators(self):
        """Coroutine: reseat the vino and intent-id allocators.

        Cross-shard renames migrate inodes (with their vinos) to other
        shards, so the local tables alone under-estimate how far this
        shard's allocation class has advanced: the peers are asked for
        their highest vino in this class before the allocator reseats.
        The intent-id allocator reseats the same way (prepare and dedup
        records derived from this shard's ids live on peers).
        """
        base, step = self.shard_id + 1, self.n_shards
        vinos = [row["vino"] for row in self.db.table("inodes").all()]
        top = max(vinos) if vinos else 0
        seq = self._max_local_intent_seq()
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                peak = yield from self._peer(
                    shard, "max_vino_in_class", base, step)
                top = max(top, peak)
                speak = yield from self._peer(
                    shard, "max_intent_seq", f"s{self.shard_id}.")
                seq = max(seq, speak)
        if top >= base:
            base += ((top - base) // step + 1) * step
        self._vino = itertools.count(base, step)
        self._intent_seq = itertools.count(seq + 1)
        return True

    def _max_local_intent_seq(self, prefix=None):
        """Highest intent sequence number with ``prefix`` in this table."""
        prefix = prefix or f"s{self.shard_id}."
        peak = 0
        for row in self.db.table("intents").all():
            base = row["id"].split("@")[0].split("#")[0]
            if base.startswith(prefix):
                try:
                    peak = max(peak, int(base[len(prefix):]))
                except ValueError:
                    pass
        return peak

    def max_vino_in_class(self, base, step):
        """RPC (shard-to-shard): highest local vino ≡ base (mod step)."""
        yield from self._dispatch()

        def body(txn):
            peak = 0
            for row in txn.match("inodes"):
                vino = row["vino"]
                if vino >= base and (vino - base) % step == 0:
                    peak = max(peak, vino)
            return peak

        peak = yield from self.dbsvc.execute(body)
        return peak

    def max_intent_seq(self, prefix):
        """RPC (shard-to-shard): highest intent seq with ``prefix`` here."""
        yield from self._dispatch()

        def body(txn):
            return self._max_local_intent_seq(prefix)

        peak = yield from self.dbsvc.execute(body)
        return peak

    # -- tier-wide recovery passes -----------------------------------------

    def resync_skeleton(self):
        """Coroutine: make every skeleton replica match its authority.

        The authoritative copy of the entry at path P lives on the shard
        owning P's parent's entries — the shard that coordinated its
        creation.  A shard that recovered from an older journal prefix
        may be missing newer entries (copy them in) or still hold entries
        whose authority lost them (remove them).  Runs *after* the intent
        completion pass, which already re-broadcast every half-finished
        replication — what remains diverging here is journal loss, and
        the authority's survived prefix is the truth.
        """
        maps = []
        for shard in range(self.n_shards):
            maps.append((yield from self._call_shard(shard, "skeleton_map")))
        auth = {}
        every = set()
        for view in maps:
            every.update(view)
        for path in sorted(every, key=lambda p: p.count("/")):
            row = maps[self._owner_of(path)].get(path)
            if row is None:
                continue  # the authority lost it: everyone drops it
            parent, _name = split(path)
            if parent != "/" and parent not in auth:
                continue  # orphaned subtree: its parent is gone
            auth[path] = row
        ordered = sorted(auth, key=lambda p: p.count("/"))
        structural = ("kind", "mode", "uid", "gid", "target")
        for shard in range(self.n_shards):
            local = maps[shard]
            adds, rewrites = [], []
            for path in ordered:
                row = auth[path]
                mine = local.get(path)
                if mine is None or mine["vino"] != row["vino"]:
                    # Missing — or a *different* object reused the path
                    # (divergent histories): replace, don't keep both.
                    adds.append((path, row))
                elif any(mine[f] != row[f] for f in structural):
                    rewrites.append((path, row))
            removes = sorted(
                (path for path, mine in local.items()
                 if path not in auth or auth[path]["vino"] != mine["vino"]),
                key=lambda p: -p.count("/"))
            if adds or removes or rewrites:
                yield from self._call_shard(
                    shard, "skeleton_apply", adds, removes, rewrites)
        return True

    def skeleton_map(self):
        """RPC (shard-to-shard): this shard's skeleton replica by path."""
        yield from self._dispatch()

        def body(txn):
            view = {}
            frontier = [("", self.root_vino)]
            while frontier:
                dir_path, dvino = frontier.pop()
                for dentry in txn.index_read("dentries", "parent", dvino):
                    if dentry.get("home") is not None:
                        continue
                    row = txn.read("inodes", dentry["vino"])
                    if row is None or row["kind"] == FILE:
                        continue
                    path = f"{dir_path}/{dentry['name']}"
                    view[path] = dict(row)
                    if row["kind"] == DIRECTORY:
                        frontier.append((path, row["vino"]))
            return view

        view = yield from self.dbsvc.execute(body)
        return view

    def skeleton_apply(self, adds, removes, rewrites):
        """RPC (shard-to-shard): reshape this replica to the authority.

        ``removes`` (deepest first) drop stale skeleton entries — along
        with any local file entries under a dropped directory, which are
        unreachable once the directory is gone everywhere.  ``adds``
        (shallowest first) copy in authoritative rows.  ``rewrites``
        overwrite same-vino rows whose attributes diverged (a lost
        setattr broadcast).  Directory link counts are recomputed from
        the final dentry set afterwards — authoritative rows already
        count children the same apply may add or remove, so incremental
        bookkeeping would double-count.  One transaction: a crash
        mid-resync leaves the old replica, and the next recovery resyncs
        again.
        """
        yield from self._dispatch()

        def body(txn):
            for path in removes:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                dentry = txn.read("dentries", (parent["vino"], name))
                if dentry is None:
                    continue
                self._invalidate_resolve(parent["vino"])
                txn.delete("dentries", (parent["vino"], name))
                row = txn.read("inodes", dentry["vino"])
                if row is not None:
                    if row["kind"] == DIRECTORY:
                        for child in txn.index_read(
                                "dentries", "parent", row["vino"]):
                            txn.delete("dentries", child["key"])
                            crow = txn.read("inodes", child["vino"])
                            if crow is not None and crow["kind"] == FILE \
                                    and child.get("home") is None:
                                txn.delete("inodes", crow["vino"])
                                if crow["upath"]:
                                    self._txn_bucket_adjust(
                                        txn, crow["upath"], -1)
                        self._invalidate_resolve(row["vino"])
                    txn.delete("inodes", row["vino"])
            for path, auth_row in adds:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                if txn.read("dentries", (parent["vino"], name)) is not None:
                    continue
                txn.write("inodes", dict(auth_row))
                self._invalidate_resolve(parent["vino"])
                txn.insert("dentries", {
                    "key": (parent["vino"], name), "parent": parent["vino"],
                    "name": name, "vino": auth_row["vino"],
                })
            for _path, auth_row in rewrites:
                txn.write("inodes", dict(auth_row))
            self._txn_fix_dir_nlinks(txn)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _txn_fix_dir_nlinks(self, txn):
        """Recompute every directory's nlink (2 + subdirectories) from
        the transaction's final dentry set."""
        for row in txn.match("inodes"):
            if row["kind"] != DIRECTORY:
                continue
            subdirs = 0
            for dentry in txn.index_read("dentries", "parent", row["vino"]):
                if dentry.get("home") is not None:
                    continue
                child = txn.read("inodes", dentry["vino"])
                if child is not None and child["kind"] == DIRECTORY:
                    subdirs += 1
            if row["nlink"] != 2 + subdirs:
                fixed = dict(row)
                fixed["nlink"] = 2 + subdirs
                txn.write("inodes", fixed)

    def complete_tier_intents(self):
        """Coroutine: resolve every open coordination record tier-wide.

        Three idempotent passes: (A) every coordinator intent is rolled
        forward (its prepare record exists → the operation committed) or
        back; (B) surviving prepare records — their coordinator already
        committed and dropped its intent — redo their post-commit side
        effects (dedup-guarded) and retire; (C) dedup records whose
        operation is fully resolved are garbage-collected.  A crash at
        any point leaves records a re-run resolves the same way.
        """
        records = yield from self._gather_intents()
        parts = {rec["id"]: shard for shard, rec in records
                 if rec["role"] == "part"}
        for shard, rec in records:
            if rec["role"] != "coord":
                continue
            if rec["op"] == "rename":
                committed = self._part_id(rec["id"]) in parts
                yield from self._call_shard(
                    shard, "finish_rename_intent", rec, committed)
            elif rec["op"] == "link":
                # The intent is deleted atomically with the commit, so
                # its survival means abort: revert the bump if it landed.
                pshard = parts.get(self._part_id(rec["id"]))
                if pshard is not None:
                    yield from self._call_shard(
                        pshard, "link_abort", rec["id"], rec["now"])
                yield from self._call_shard(
                    shard, "intent_forget", rec["id"])
            else:
                yield from self._call_shard(shard, "redo_intent", rec)
        records = yield from self._gather_intents()
        for shard, rec in records:
            if rec["role"] != "part":
                continue
            if rec["op"] == "rename":
                yield from self._call_shard(shard, "redo_rename_part", rec)
            else:  # a committed link's prepare record: the bump stands
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        records = yield from self._gather_intents()
        live = {rec["id"].split("@")[0].split("#")[0]
                for _shard, rec in records if rec["role"] != "dedup"}
        for shard, rec in records:
            if rec["role"] == "dedup" and \
                    rec["id"].split("#")[0] not in live:
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        return True

    def finish_rename_intent(self, rec, committed):
        """RPC (shard-to-shard): resolve a cross-shard rename intent here.

        Committed (the destination holds the prepare record): the detach
        stands, only the intent retires.  Aborted: re-attach the old name
        from the intent's payload — unless something already occupies it
        — atomically with the intent's deletion.
        """
        yield from self._dispatch()

        def body(txn):
            if txn.read("intents", rec["id"]) is None:
                return False
            if not committed:
                parent, name = self._txn_resolve_parent(txn, rec["old"])
                if txn.read("dentries", (parent["vino"], name)) is None:
                    self._txn_reattach(
                        txn, rec["old"], rec["row"], rec["stub"],
                        rec["now"])
            txn.delete("intents", rec["id"])
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def redo_intent(self, rec):
        """RPC (shard-to-shard): roll a coordinator intent forward here.

        Every redo is idempotent (mirror replays no-op when already
        applied; link drops are dedup-guarded), so the record is deleted
        only after its effects are re-applied.
        """
        op = rec["op"]
        if op == "mirror":
            yield from self._broadcast(rec["mirror"], *rec["args"])
            yield from self.intent_forget(rec["id"])
        elif op == "rename_post":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(pending, rec["now"], rec["id"])
            if rec["replaced_symlink"]:
                yield from self._broadcast(
                    "mirror_unlink", rec["new"], rec["now"])
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "rename_replicated":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(pending, rec["now"], rec["id"])
            yield from self._broadcast(
                "mirror_rename", rec["old"], rec["new"], rec["now"])
            if rec["kind"] == DIRECTORY:
                yield from self._migrate_renamed_subtree(
                    rec["vino"], rec["old"], rec["new"], rec["now"])
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "unlink_stub":
            dedup = self._dedup_id(rec["id"], rec["vino"])
            yield from self._peer(
                rec["home"], "unlink_vino", rec["vino"], rec["now"], dedup)
            yield from self.intent_forget(rec["id"])
            yield from self._peer(rec["home"], "intent_forget", dedup)
        return True

    def retire_rename_part(self, tid):
        """RPC (shard-to-shard): drop a committed install's prepare record
        and then its dedup guards (in that order: a crash in between
        leaves only garbage the completion pass collects)."""
        yield from self._dispatch()
        pid = self._part_id(tid)

        def body(txn):
            rec = txn.read("intents", pid)
            if rec is None:
                return None
            txn.delete("intents", pid)
            return [tuple(p) for p in rec["pending"]]

        pending = yield from self.dbsvc.execute(body)
        if pending:
            yield from self._forget_dedups(tid, pending)
        return True

    def redo_rename_part(self, rec):
        """RPC (shard-to-shard): redo a committed install's side effects.

        The prepare record survives only when the coordinator committed
        but the forget never arrived; the drains are dedup-guarded and
        the symlink-replica removal idempotent, so redoing is safe.  The
        record is deleted before its dedup guards so a crash between the
        deletions leaves only garbage pass C collects.
        """
        pending = [tuple(p) for p in rec["pending"]]
        tid = rec["id"].rsplit("@", 1)[0]
        yield from self._drain_pending(pending, rec["now"], tid)
        if rec["replaced_symlink"]:
            yield from self._broadcast(
                "mirror_unlink", rec["new"], rec["now"])
        yield from self.intent_forget(rec["id"])
        yield from self._forget_dedups(tid, pending)
        return True

    def reconcile_tier_buckets(self):
        """Coroutine: recount placement counters on every shard."""
        for shard in range(self.n_shards):
            yield from self._call_shard(shard, "reconcile_buckets")
        return True

    def reconcile_buckets(self):
        """RPC (shard-to-shard): recount this shard's placement counters
        from its surviving file rows (counters travel with inode rows;
        a crash between a migration's transactions can leave them a step
        behind — the recount is the authoritative repair)."""
        yield from self._dispatch()

        def body(txn):
            want = {}
            for row in txn.match("inodes"):
                if row["kind"] == FILE and row["upath"]:
                    bucket, _slash, _leaf = row["upath"].rpartition("/")
                    want[bucket] = want.get(bucket, 0) + 1
            changed = 0
            for brow in txn.match("buckets"):
                target = want.pop(brow["path"], 0)
                if brow["count"] != target:
                    fixed = dict(brow)
                    fixed["count"] = target
                    txn.write("buckets", fixed)
                    changed += 1
            for path, count in want.items():
                txn.write("buckets", {"path": path, "count": count})
                changed += 1
            return changed

        result = yield from self.dbsvc.execute(body)
        return result


# ---------------------------------------------------------------------------
# Tier-wide crash recovery
# ---------------------------------------------------------------------------

def recover_tier(shards):
    """Coroutine: recover a whole crashed tier.

    Rebuilds *every* shard from its durable journal prefix first — a
    whole-tier power failure leaves no live peer to ask — then runs the
    tier-wide repair passes (skeleton resync, intent completion, bucket
    reconciliation) exactly once, driven by shard 0.  Single-shard crashes
    use :meth:`ShardMetadataService.recover`, which runs the same passes
    against the surviving peers' live tables.
    """
    lost = 0
    for shard in shards:
        lost += yield from shard.recover_local()
    driver = shards[0]
    yield from driver.complete_tier_intents()
    yield from driver.resync_skeleton()
    yield from driver.reconcile_tier_buckets()
    for shard in shards:
        # intent completion may have re-attached rows that travelled
        # inside intent records; reseat against the settled tables.
        yield from shard.reseat_allocators()
    return lost
