"""Sharded metadata tier: the COFS namespace over N metadata servers.

The paper's metadata service is a single node; the moment client counts
grow, it becomes the next bottleneck after the one it removed.  This module
partitions the virtual namespace across N :class:`MetadataService` shards,
following the HopsFS school of hierarchical-metadata partitioning:

- **Partition function** (:class:`ShardingPolicy`): the shard that owns a
  name is a pure function of its *parent directory's* virtual path.  All
  dentries of one directory therefore live together on one shard — exactly
  HopsFS's "partition inodes by parent id" scheme, which keeps the common
  operations (lookup, create, readdir of a directory) single-shard.  Two
  policies are provided, mirroring the pluggable-placement pattern of
  :mod:`repro.core.placement`: :class:`HashDirSharding` (hash of the parent
  path, HopsFS-style) and :class:`SubtreeSharding` (static subtree
  assignment, the classic Ceph/static-partition alternative).

- **Replicated skeleton**: directory and symlink inodes (the *skeleton* of
  the tree) are synchronously replicated to every shard by their
  coordinator, so path resolution for the replicated prefix is always
  local, shard-local resolve caches stay charge-preserving, and only leaf
  (file) entries are partitioned.  This is HopsFS's observation that the
  immutable-ish upper tree is cheap to share while the file population —
  the actual bottleneck — must be spread.

- **Shard router** (:class:`ShardRouter`): the client-side replacement for
  the single-target :class:`~repro.core.metadriver.MetadataDriver`.  It
  holds one driver per shard and routes every operation by virtual path
  (or, for ``close_sync``, by a learned vino→shard map so delegation
  write-back lands on the shard that owns the inode).

- **Forwarded resolves**: when a walk crosses a symlink whose target is
  owned by another shard, the serving shard aborts its (so far read-only)
  transaction and re-dispatches the whole operation to the owner — a
  server-to-server RPC with full simulated cost.  Cross-shard hard links
  store a *stub* dentry carrying the inode's home shard; inode operations
  through such a name are forwarded to the home shard the same way.

- **Cross-shard rename/link**: a rename whose source and destination
  resolve to different shards commits via the source shard acting as
  coordinator: detach locally, install remotely (``rename_install``), and
  compensate (re-attach) if the install fails.  Renames of replicated
  objects (directories, symlinks) replay on every shard, with any
  replaced-file upath reported back by the shard that owned it.

A 1-shard configuration never constructs this service; the stack keeps the
plain :class:`MetadataService` + a pass-through router, so every seed
figure doubles as a regression test for the routing layer.

Known simplifications (documented, exercised by tests where noted):

- Replication and broadcasts are synchronous and serial; a coordinator
  answers only after every mirror applied (no partial-failure handling
  beyond rename compensation).
- Hard links to *symlinks* are rejected on sharded stacks (replica link
  counts would drift); plain files hard-link across shards fine.
- Bucket (placement) counters stay on the shard where a file was created;
  a cross-shard rename migrates the inode but not the counter, so the
  origin shard keeps the slot charged until the file is unlinked.
- A directory's mtime/ctime are authoritative on its *contents-owner*
  shard (file creates/unlinks update only that replica); ``getattr`` of a
  directory re-fetches from it, and directory ``setattr`` broadcasts.
  Stat of a directory *through a symlink* may still read a stale replica.
- ``rmdir``'s emptiness checks and its mirror broadcast are not one
  atomic unit; a mirror that grew entries in the window refuses to
  delete (no file becomes unreachable, but the skeleton diverges until
  the rmdir is retried).  Full cross-shard atomicity is a ROADMAP item.
- A partitioned file in the *middle* of a path answers ENOTDIR on leaf
  walks (a missing middle dentry forwards to the shard owning the
  enclosing directory's entries), but parent walks — create, unlink,
  rename destination, readdir — answer ENOENT: re-forwarding them would
  ping-pong with the router's leaf-parent routing, so the forward is
  deliberately gated to non-parent walks (``_absent_dentry``).
- A directory rename commits (locally and on every mirror) *before*
  :meth:`ShardMetadataService._migrate_renamed_subtree` re-homes the
  subtree's file entries; until each export/import RPC pair lands, a
  re-homed file is transiently ENOENT for other clients whose lookups
  route to the new owner shard.  The renaming client itself never sees
  the window (its rename does not return until migration completes),
  but concurrent-workload tests must not misattribute these transient
  ENOENTs.  Making the migration part of the rename's atomic commit is
  a ROADMAP item alongside cross-shard rmdir atomicity.
"""

import hashlib
import itertools

from repro.core.metadriver import MetadataDriver
from repro.core.metaservice import _MAX_SYMLINK_DEPTH, MetadataService
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, normalize, split


class ResolveForward(Exception):
    """Control flow: continue this operation on ``shard`` at ``path``."""

    def __init__(self, shard, path):
        super().__init__(shard, path)
        self.shard = shard
        self.path = path


class VinoForward(Exception):
    """Control flow: the leaf's inode lives on ``shard`` under ``vino``."""

    def __init__(self, shard, vino):
        super().__init__(shard, vino)
        self.shard = shard
        self.vino = vino


# ---------------------------------------------------------------------------
# Partitioning policies
# ---------------------------------------------------------------------------

class ShardingPolicy:
    """Interface: which shard owns the entries of a directory."""

    def shard_of_dir(self, dir_path, n_shards):
        """The shard (int in ``range(n_shards)``) owning ``dir_path``'s
        entries."""
        raise NotImplementedError


class HashDirSharding(ShardingPolicy):
    """Hash-by-parent-directory (HopsFS-style).

    Entries of one directory always co-locate; distinct directories spread
    uniformly, so workloads touching many directories scale with shards.
    """

    def shard_of_dir(self, dir_path, n_shards):
        if n_shards <= 1:
            return 0
        digest = hashlib.blake2b(
            normalize(dir_path).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % n_shards


class SubtreeSharding(ShardingPolicy):
    """Static subtree partitioning: longest matching prefix wins.

    ``assignments`` maps a directory prefix to a shard; everything below it
    (unless a longer rule overrides) is served there.  Unmatched paths fall
    to ``default``.  This is the administrator-controlled alternative to
    hashing: whole projects stay on one shard.
    """

    def __init__(self, assignments, default=0):
        self.rules = sorted(
            ((normalize(prefix), int(shard))
             for prefix, shard in dict(assignments).items()),
            key=lambda rule: len(rule[0]), reverse=True,
        )
        self.default = default

    def shard_of_dir(self, dir_path, n_shards):
        if n_shards <= 1:
            return 0
        norm = normalize(dir_path)
        for prefix, shard in self.rules:
            if norm == prefix or prefix == "/" \
                    or norm.startswith(prefix + "/"):
                return shard % n_shards
        return self.default % n_shards


# ---------------------------------------------------------------------------
# Client-side router
# ---------------------------------------------------------------------------

class ShardRouter:
    """Routes each metadata op to the shard owning its leaf's directory.

    Drop-in replacement for a single :class:`MetadataDriver`: exposes the
    same ``call(method, *args)`` coroutine.  With one shard it degenerates
    to a pure pass-through (zero simulated and zero accounting difference),
    which is what keeps 1-shard stacks byte-identical to the pre-sharding
    system.
    """

    #: methods whose first argument is a path routed by its parent dir.
    _LEAF_OPS = frozenset({
        "getattr", "create_node", "setattr", "unlink", "rmdir",
        "readlink", "open_map",
    })

    def __init__(self, machine, shard_machines, config, sharding):
        self.machine = machine
        self.config = config
        self.sharding = sharding
        self.drivers = [
            MetadataDriver(machine, m, config) for m in shard_machines
        ]
        self.n_shards = len(self.drivers)
        self._vino_shard = {}  # vino -> home shard (learned from views)

    @property
    def calls(self):
        return sum(driver.calls for driver in self.drivers)

    def shard_for_dir(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def shard_for_leaf(self, path):
        parent, _name = split(path)
        return self.sharding.shard_of_dir(parent, self.n_shards)

    def call(self, method, *args):
        """Coroutine: one (possibly fanned-out) metadata RPC."""
        if self.n_shards == 1:
            return self.drivers[0].call(method, *args)
        if method == "statfs":
            return self._statfs()
        if method == "close_sync":
            shard = self._vino_shard.get(args[0], 0)
            return self.drivers[shard].call(method, *args)
        if method == "readdir":
            shard = self.shard_for_dir(args[0])
        elif method == "rename":
            shard = self.shard_for_leaf(args[0])
        elif method == "link":
            shard = self.shard_for_leaf(args[1])
        elif method in self._LEAF_OPS:
            shard = self.shard_for_leaf(args[0])
        else:
            shard = 0
        return self._tracked(shard, method, args)

    #: bound on learned vino homes; overflow clears (close_sync then
    #: falls back to shard 0 and the service fans out on a miss).
    _VINO_MAP_MAX = 4096

    def _tracked(self, shard, method, args):
        """Coroutine: call one shard; learn vino homes from returned views."""
        view = yield from self.drivers[shard].call(method, *args)
        if type(view) is dict and "vino" in view:
            if len(self._vino_shard) >= self._VINO_MAP_MAX:
                self._vino_shard.clear()
            self._vino_shard[view["vino"]] = view.get("shard", shard)
        return view

    def _statfs(self):
        """Coroutine: namespace stats aggregated across every shard.

        The replicated skeleton (directories, symlinks) is counted once
        via shard 0's totals; files sum across shards.
        """
        merged = None
        files = 0
        for driver in self.drivers:
            stats = yield from driver.call("statfs")
            if merged is None:
                merged = dict(stats)
            files += stats["files"]
        # shard 0's inode count covers the whole skeleton plus its own
        # files; the other shards contribute only their files.
        merged["inodes"] = merged["inodes"] + files - merged["files"]
        merged["files"] = files
        return merged


# ---------------------------------------------------------------------------
# The sharded service
# ---------------------------------------------------------------------------

class ShardMetadataService(MetadataService):
    """One shard of the partitioned metadata tier.

    Extends :class:`MetadataService` with a shard identity, the replicated
    directory/symlink skeleton, forwarded resolves, and the cross-shard
    rename/link protocols described in the module docstring.  Registered as
    ``cofsmds`` on its own machine, so shard-to-shard coordination uses the
    exact same simulated RPC path as client traffic.
    """

    def __init__(self, machine, config, shard_id, shard_machines, sharding,
                 policy=None, streams=None):
        self.shard_id = shard_id
        self.n_shards = len(shard_machines)
        self.shard_machines = shard_machines
        self.sharding = sharding
        self._local_only = False
        self._parent_walk = False
        super().__init__(machine, config, policy=policy, streams=streams)
        # Vino allocation: stride-N classes keep shards collision-free while
        # every shard bootstraps the same replicated root as vino 1.
        start = self.shard_id + 1
        if self.shard_id == 0:
            start += self.n_shards  # vino 1 is the root, already allocated
        self._vino = itertools.count(start, self.n_shards)

    def _placement_stream(self):
        """Placement randomization: an independent stream per shard."""
        return f"cofs.placement.s{self.shard_id}"

    # -- shard arithmetic -------------------------------------------------

    def _owner_of(self, path):
        """The shard owning ``path``'s leaf entry (by its parent dir)."""
        parent, _name = split(path)
        return self.sharding.shard_of_dir(parent, self.n_shards)

    def _dir_owner(self, dir_path):
        return self.sharding.shard_of_dir(dir_path, self.n_shards)

    def _check_hops(self, hops, path):
        if hops > _MAX_SYMLINK_DEPTH:
            raise FsError.einval(
                f"too many levels of symbolic links: {path}")

    # -- peer communication ----------------------------------------------

    def _peer(self, shard, method, *args):
        """Coroutine: an internal shard-to-shard RPC (full network cost)."""
        return self.machine.call(
            self.shard_machines[shard], "cofsmds", method, args=args,
            req_size=self.config.rpc_bytes, resp_size=self.config.rpc_bytes,
        )

    def _redispatch(self, fwd, method, *args):
        """Coroutine: restart ``method`` where a forward says it belongs."""
        return self._call_shard(fwd.shard, method, *args)

    def _broadcast(self, method, *args):
        """Coroutine: apply a mirror op on every other shard (serial)."""
        results = []
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                results.append((yield from self._peer(shard, method, *args)))
        return results

    def _drain_pending(self, pending, now):
        """Coroutine: run remote inode adjustments a txn body queued.

        ``pending`` is the caller-owned list its transaction body filled
        (never instance state: bodies of concurrent operations must not
        see each other's queues).  Returns the remote ``(upath, last)``
        outcomes so a rename that replaced a stub name can report the
        underlying path to unlink.
        """
        outcomes = []
        for home, vino in pending:
            outcomes.append(
                (yield from self._peer(home, "unlink_vino", vino, now)))
        return outcomes

    @staticmethod
    def _merge_replaced(result, outcomes):
        """Fold remote unlink outcomes into a rename's (upath, last)."""
        replaced_upath, replaced_last = result
        for outcome in outcomes:
            if outcome and outcome[0] is not None and outcome[1]:
                replaced_upath, replaced_last = outcome[0], outcome[1]
        return (replaced_upath, replaced_last)

    def _local_body(self, fn):
        """Wrap a txn body so resolution never forwards (mirror replays)."""
        def wrapped(txn):
            self._local_only = True
            try:
                return fn(txn)
            finally:
                self._local_only = False
        return wrapped

    # -- resolution hooks -------------------------------------------------

    def _attr_view(self, row):
        view = super()._attr_view(row)
        view["shard"] = self.shard_id
        return view

    def _resolve_retarget(self, txn, target, follow, depth):
        if not self._local_only:
            # Walking toward a directory whose *contents* matter (a parent
            # walk, or readdir) routes by the target directory itself;
            # walking to a leaf routes by the leaf's parent.
            owner = self._dir_owner(target) if self._parent_walk \
                else self._owner_of(target)
            if owner != self.shard_id:
                raise ResolveForward(owner, target)
        return super()._resolve_retarget(txn, target, follow, depth)

    def _absent_dentry(self, txn, path, parts, index):
        last = index == len(parts) - 1
        if not last and not self._local_only and not self._parent_walk:
            dir_path = "/" + "/".join(parts[:index])
            owner = self._dir_owner(dir_path)
            if owner != self.shard_id:
                # A *middle* component with no local dentry may still be a
                # partitioned file (or stub) on the shard owning this
                # directory's entries — which must then answer ENOTDIR,
                # not ENOENT.  Forward; the owner resolves authoritatively
                # and never re-forwards (it holds the entries).
                raise ResolveForward(owner, path)
        super()._absent_dentry(txn, path, parts, index)

    def _missing_child(self, txn, path, dentry, last):
        home = dentry.get("home")
        if home is None or home == self.shard_id or self._local_only:
            return super()._missing_child(txn, path, dentry, last)
        if not last or self._parent_walk:
            # A cross-shard hard link is never a directory; using it as a
            # path component (or as a parent/readdir target) is ENOTDIR —
            # only leaf inode ops forward to the home shard.
            raise FsError.enotdir(path)
        raise VinoForward(home, dentry["vino"])

    def _txn_resolve_parent(self, txn, path):
        # Transaction bodies never yield, so this flag is scoped to the
        # synchronous walk: no other handler can observe it mid-flight.
        prev = self._parent_walk
        self._parent_walk = True
        try:
            return super()._txn_resolve_parent(txn, path)
        except ResolveForward as fwd:
            # The *parent* walk crossed shards: re-attach the leaf so the
            # re-dispatched operation carries the full rewritten path.
            _parent, name = split(path)
            base = normalize(fwd.path)
            full = f"/{name}" if base == "/" else f"{base}/{name}"
            raise ResolveForward(self._owner_of(full), full) from None
        finally:
            self._parent_walk = prev

    def _resolve_rename_old(self, txn, old):
        # rename's peek already pinned the source to this shard; walk the
        # local skeleton replica so a concurrently-installed cross-shard
        # symlink can't raise a source forward that the redispatch
        # handlers would misread as a destination forward.
        prev = self._local_only
        self._local_only = True
        try:
            return super()._resolve_rename_old(txn, old)
        finally:
            self._local_only = prev

    def _rename_replace_stub(self, txn, existing, pending):
        home = existing.get("home")
        if home is None or home == self.shard_id:
            return False
        pending.append((home, existing["vino"]))
        return True

    def _unlink_stub_home(self, dentry):
        home = dentry.get("home")
        if home is None or home == self.shard_id:
            return None
        return home

    # -- forwarded single-path handlers -----------------------------------

    def getattr(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().getattr(path)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "getattr", fwd.path, _hops + 1)
            return view
        except VinoForward as fwd:
            view = yield from self._peer(fwd.shard, "getattr_vino", fwd.vino)
            return view
        if view["kind"] == DIRECTORY:
            # File creates/unlinks touch a directory's times only on its
            # contents-owner shard — the authoritative replica for stat.
            owner = self._dir_owner(path)
            if owner != self.shard_id:
                view = yield from self._peer(
                    owner, "getattr", path, _hops + 1)
        return view

    def setattr(self, path, changes, now, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().setattr(path, changes, now)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "setattr", fwd.path, changes, now, _hops + 1)
            return view
        except VinoForward as fwd:
            view = yield from self._peer(
                fwd.shard, "setattr_vino", fwd.vino, changes, now)
            return view
        if view["kind"] == DIRECTORY:
            # Keep every replica of the skeleton coherent (stat reads the
            # contents-owner replica; see getattr).
            yield from self._broadcast("mirror_setattr", path, changes, now)
        return view

    def mirror_setattr(self, path, changes, now):
        """RPC (shard-to-shard): replicate a directory/symlink setattr."""
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            try:
                row = dict(self._txn_resolve(txn, path))
            except FsError:
                return False
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def open_map(self, path, for_write, now, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().open_map(path, for_write, now)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "open_map", fwd.path, for_write, now, _hops + 1)
        except VinoForward as fwd:
            view = yield from self._peer(
                fwd.shard, "open_vino", fwd.vino, for_write, now)
        return view

    def readdir(self, path, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()

        def body(txn):
            # Like a parent walk: a symlink on the way must route by the
            # target directory itself (whose entries live on its owner).
            prev = self._parent_walk
            self._parent_walk = True
            try:
                row = self._txn_resolve(txn, path)
            finally:
                self._parent_walk = prev
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(path)
            names = [d["name"] for d in
                     txn.index_read("dentries", "parent", row["vino"])]
            return sorted(names)

        try:
            names = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            names = yield from self._redispatch(
                fwd, "readdir", fwd.path, _hops + 1)
        return names

    def readlink(self, path, _hops=0):
        self._check_hops(_hops, path)
        try:
            target = yield from super().readlink(path)
        except ResolveForward as fwd:
            target = yield from self._redispatch(
                fwd, "readlink", fwd.path, _hops + 1)
        except VinoForward:
            # A cross-shard hard-link stub: its inode is never a symlink
            # (hard links to symlinks are rejected on sharded stacks), so
            # answer directly instead of leaking the control-flow exception.
            raise FsError.einval(f"not a symlink: {path}")
        return target

    # -- namespace mutation with replication -------------------------------

    def create_node(self, path, kind, mode, uid, gid, node, pid, now,
                    target=None, _hops=0):
        self._check_hops(_hops, path)
        try:
            view = yield from super().create_node(
                path, kind, mode, uid, gid, node, pid, now, target)
        except ResolveForward as fwd:
            view = yield from self._redispatch(
                fwd, "create_node", fwd.path, kind, mode, uid, gid, node,
                pid, now, target, _hops + 1)
            return view
        if kind != FILE:
            yield from self._broadcast("mirror_create", path, view, now)
        return view

    def unlink(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        try:
            outcome = yield from self.dbsvc.execute(
                self._unlink_body(path, now))
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "unlink", fwd.path, now, _hops + 1)
            return result
        if outcome[0] == "#stub":  # inode adjusted at its home shard
            _marker, vino, home = outcome
            result = yield from self._peer(home, "unlink_vino", vino, now)
            return result
        kind, (upath, last) = outcome
        if kind == SYMLINK and last:
            yield from self._broadcast("mirror_unlink", path, now)
        return (upath, last)

    def rmdir(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        owner = self._dir_owner(path)
        if owner != self.shard_id:
            # The directory's file population lives on its owner shard.
            entries = yield from self._peer(owner, "count_children_of", path)
            if entries:
                raise FsError.enotempty(path)
        try:
            result = yield from super().rmdir(path, now)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rmdir", fwd.path, now, _hops + 1)
            return result
        yield from self._broadcast("mirror_rmdir", path, now)
        return result

    # -- rename: local, replicated, and cross-shard ------------------------

    def rename(self, old, new, now, _hops=0):
        self._check_hops(_hops, old)
        yield from self._dispatch()

        def peek(txn):
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(old)
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return (None, dentry["vino"], home)
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                raise FsError.enoent(old)
            return (row["kind"], row["vino"], None)

        try:
            kind, vino, home = yield from self.dbsvc.execute(peek)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename", fwd.path, new, now, _hops + 1)
            return result

        dst = self._owner_of(new)
        if kind in (DIRECTORY, SYMLINK):
            return (yield from self._rename_replicated(
                kind, vino, old, new, dst, now, _hops))
        if dst == self.shard_id and home is None:
            # Entirely this shard's business: the base transaction.
            pending, replaced = [], []
            try:
                result = yield from self._rename_local(
                    old, new, now, pending, replaced)
            except ResolveForward as fwd:
                result = yield from self.rename(old, fwd.path, now, _hops + 1)
                return result
            drained = yield from self._drain_pending(pending, now)
            result = self._merge_replaced(result, drained)
            if SYMLINK in replaced:
                # The rename destroyed a replicated symlink at ``new``;
                # its replicas on every other shard must die with it (as
                # unlink does), or stale replicas keep resolving the link.
                yield from self._broadcast("mirror_unlink", new, now)
            return result
        return (yield from self._rename_cross_shard(
            old, new, vino, home, dst, now, _hops))

    def _rename_replicated(self, kind, vino, old, new, dst, now, _hops):
        """Coroutine: rename of a directory/symlink — replay on all shards."""
        if dst != self.shard_id:
            entry = yield from self._peer(dst, "peek_entry", new)
            if entry is not None and entry["kind"] not in (DIRECTORY, SYMLINK):
                if kind == DIRECTORY:
                    # A file (or stub) occupies the target name on its owner.
                    raise FsError.enotdir(new)
        if kind == DIRECTORY:
            # Replacing a directory: its file population lives on its owner.
            content_owner = self._dir_owner(new)
            if content_owner != self.shard_id:
                entries = yield from self._peer(
                    content_owner, "count_children_of", new)
                if entries:
                    raise FsError.enotempty(new)
        pending = []
        try:
            result = yield from self._rename_local(old, new, now, pending)
        except ResolveForward as fwd:
            result = yield from self.rename(old, fwd.path, now, _hops + 1)
            return result
        drained = yield from self._drain_pending(pending, now)
        result = self._merge_replaced(result, drained)
        mirrored = yield from self._broadcast("mirror_rename", old, new, now)
        result = self._merge_replaced(result, mirrored)
        if kind == DIRECTORY:
            yield from self._migrate_renamed_subtree(vino, old, new, now)
        return result

    def _migrate_renamed_subtree(self, vino, old, new, now):
        """Coroutine: re-home file children after a directory rename.

        Partitioning is by *path*, so renaming a directory may change the
        owner of its (and every descendant directory's) file entries — the
        well-known cost of path-based partitioning that HopsFS sidesteps by
        hashing immutable inode ids.  The replicated skeleton makes the
        fix cheap to coordinate: this shard enumerates the subtree locally,
        then moves each re-homed directory's file entries with one
        export/import RPC pair.
        """

        def collect(txn):
            found = [(old, new, vino)]
            frontier = [(vino, old, new)]
            while frontier:
                dvino, old_path, new_path = frontier.pop()
                for dentry in txn.index_read("dentries", "parent", dvino):
                    if dentry.get("home") is not None:
                        continue
                    row = txn.read("inodes", dentry["vino"])
                    if row is not None and row["kind"] == DIRECTORY:
                        entry = (f"{old_path}/{dentry['name']}",
                                 f"{new_path}/{dentry['name']}",
                                 dentry["vino"])
                        found.append(entry)
                        frontier.append((dentry["vino"], entry[0], entry[1]))
            return found

        dirs = yield from self.dbsvc.execute(collect)
        for old_path, new_path, dvino in dirs:
            src = self._dir_owner(old_path)
            dst = self._dir_owner(new_path)
            if src == dst:
                continue
            dentries, inodes = yield from self._call_shard(
                src, "export_dir_children", dvino)
            if dentries:
                yield from self._call_shard(
                    dst, "import_dir_children", dvino, dentries, inodes)

    def export_dir_children(self, vino):
        """RPC (shard-to-shard): detach a directory's file entries here."""
        yield from self._dispatch()

        def body(txn):
            dentries, inodes = [], []
            for dentry in txn.index_read("dentries", "parent", vino):
                dentry = dict(dentry)
                if dentry.get("home") is None:
                    row = txn.read("inodes", dentry["vino"])
                    if row is None or row["kind"] != FILE:
                        continue  # replicated skeleton stays put
                    if row["nlink"] > 1:
                        # Hard-linked under other names: the inode stays
                        # home (see _rename_cross_shard's detach); only
                        # the name moves, shipped as a stub back here.
                        dentry["home"] = self.shard_id
                    else:
                        inodes.append(dict(row))
                        txn.delete("inodes", row["vino"])
                dentries.append(dentry)
                txn.delete("dentries", dentry["key"])
            if dentries:
                self._invalidate_resolve(vino)
            return (dentries, inodes)

        result = yield from self.dbsvc.execute(body)
        return result

    def import_dir_children(self, vino, dentries, inodes):
        """RPC (shard-to-shard): adopt re-homed file entries."""
        yield from self._dispatch()

        def body(txn):
            for row in inodes:
                txn.insert("inodes", dict(row))
            for dentry in dentries:
                dentry = dict(dentry)
                if dentry.get("home") == self.shard_id:
                    del dentry["home"]  # the stub came home
                txn.insert("dentries", dentry)
            self._invalidate_resolve(vino)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def _call_shard(self, shard, method, *args):
        """Coroutine: invoke an internal op on a shard (maybe this one)."""
        if shard == self.shard_id:
            return getattr(self, method)(*args)
        return self._peer(shard, method, *args)

    def _rename_cross_shard(self, old, new, vino, home, dst, now, _hops):
        """Coroutine: move a file's name (and inode) to another shard.

        This shard (owner of the source name) coordinates: detach locally,
        install at the destination, re-attach as compensation if the
        install is refused.
        """
        def detach(txn):
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(old)
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            if dentry.get("home") is not None:
                return (None, dentry["home"])
            row = txn.read_for_update("inodes", dentry["vino"])
            if row is None:
                raise FsError.enoent(old)
            if row["nlink"] > 1:
                # Other names — local hard links or remote stubs — still
                # reference this inode; moving the row would dangle every
                # one of them.  It stays home and the renamed name
                # becomes a stub pointing here.
                row["ctime"] = now
                txn.write("inodes", row)
                return (None, self.shard_id)
            txn.delete("inodes", row["vino"])
            row["ctime"] = now
            return (row, None)

        # The peek above already pinned ``old``'s canonical resolution to
        # this shard; the detach — and any compensation — walks the local
        # replica of the skeleton (_local_body), so a cross-shard symlink
        # installed concurrently on the path can neither leak a forward
        # exception to the client nor strand the detached inode.
        row, stub_home = yield from self.dbsvc.execute(
            self._local_body(detach))
        if row is None:
            payload, stub = None, {"vino": vino, "home": stub_home}
        else:
            payload, stub = row, None
        try:
            result = yield from self._call_shard(
                dst, "rename_install", new, payload, stub, now)
        except FsError:
            yield from self.dbsvc.execute(self._local_body(
                lambda txn: self._txn_reattach(txn, old, payload, stub, now)))
            raise
        if result == "#same":
            # Old and new name already point at the same inode: POSIX says
            # do nothing, so undo the detach.
            yield from self.dbsvc.execute(self._local_body(
                lambda txn: self._txn_reattach(txn, old, payload, stub, now)))
            return (None, False)
        return tuple(result)

    def _txn_reattach(self, txn, path, row, stub, now):
        """Compensation: put a detached name (and inode) back."""
        parent, name = self._txn_resolve_parent(txn, path)
        vino = row["vino"] if row is not None else stub["vino"]
        dentry = {
            "key": (parent["vino"], name), "parent": parent["vino"],
            "name": name, "vino": vino,
        }
        if stub is not None and stub["home"] != self.shard_id:
            dentry["home"] = stub["home"]
        self._invalidate_resolve(parent["vino"])
        txn.insert("dentries", dentry)
        if row is not None:
            txn.insert("inodes", dict(row))
        up = dict(parent)
        up["mtime"] = up["ctime"] = now
        txn.write("inodes", up)
        return True

    def rename_install(self, new, row, stub, now, _hops=0):
        """RPC (shard-to-shard): attach a renamed file at its new shard."""
        self._check_hops(_hops, new)
        yield from self._dispatch()
        moving_vino = row["vino"] if row is not None else stub["vino"]
        pending, replaced = [], []

        def body(txn):
            new_parent, new_name = self._txn_resolve_parent(txn, new)
            existing = txn.read("dentries", (new_parent["vino"], new_name))
            replaced_upath, replaced_last = None, False
            if existing is not None:
                if existing["vino"] == moving_vino:
                    return "#same"
                ehome = existing.get("home")
                if ehome is not None and ehome != self.shard_id:
                    pending.append((ehome, existing["vino"]))
                else:
                    target = txn.read_for_update("inodes", existing["vino"])
                    if target is not None:
                        if target["kind"] == DIRECTORY:
                            raise FsError.eisdir(new)
                        target["nlink"] -= 1
                        if target["nlink"] <= 0:
                            txn.delete("inodes", target["vino"])
                            replaced_upath = target["upath"]
                            replaced_last = True
                            replaced.append(target["kind"])
                        else:
                            txn.write("inodes", target)
                txn.delete("dentries", (new_parent["vino"], new_name))
            self._invalidate_resolve(new_parent["vino"])
            dentry = {
                "key": (new_parent["vino"], new_name),
                "parent": new_parent["vino"], "name": new_name,
                "vino": moving_vino,
            }
            if stub is not None and stub["home"] != self.shard_id:
                dentry["home"] = stub["home"]
            txn.insert("dentries", dentry)
            if row is not None:
                txn.insert("inodes", dict(row))
            np = dict(new_parent)
            np["mtime"] = np["ctime"] = now
            txn.write("inodes", np)
            return (replaced_upath, replaced_last)

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename_install", fwd.path, row, stub, now, _hops + 1)
            return result
        outcomes = yield from self._drain_pending(pending, now)
        if result == "#same":
            return result
        if SYMLINK in replaced:
            # The install destroyed a replicated symlink at ``new``; kill
            # its replicas everywhere else (including the coordinator) so
            # no stale replica keeps resolving the dead link.
            yield from self._broadcast("mirror_unlink", new, now)
        return self._merge_replaced(result, outcomes)

    def mirror_rename(self, old, new, now):
        """RPC (shard-to-shard): replay a replicated-object rename."""
        yield from self._dispatch()
        pending = []
        try:
            result = yield from self.dbsvc.execute(
                self._local_body(self._rename_body(old, new, now, pending)))
        except FsError:
            return (None, False)
        drained = yield from self._drain_pending(pending, now)
        return self._merge_replaced(result, drained)

    # -- link: possibly cross-shard ---------------------------------------

    def link(self, src, dst, now, _hops=0):
        self._check_hops(_hops, src)
        yield from self._dispatch()
        src_owner = self._owner_of(src)
        if src_owner == self.shard_id:
            try:
                view, home = yield from self._link_fetch_local(src, now)
            except ResolveForward as fwd:
                result = yield from self._redispatch(
                    fwd, "link", fwd.path, dst, now, _hops + 1)
                return result
        else:
            view, home = yield from self._peer(
                src_owner, "link_fetch", src, now)

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, dst)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                raise FsError.eexist(dst)
            self._invalidate_resolve(parent["vino"])
            dentry = {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            }
            if home != self.shard_id:
                dentry["home"] = home
            txn.insert("dentries", dentry)
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        try:
            yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            # Destination parent crossed shards: undo the bump, move the
            # whole operation to the right coordinator.
            yield from self._unbump(view["vino"], home, now)
            result = yield from self._redispatch(
                fwd, "link", src, fwd.path, now, _hops + 1)
            return result
        except FsError:
            yield from self._unbump(view["vino"], home, now)
            raise
        return view

    def _link_fetch_local(self, src, now):
        """Coroutine: bump the link count of ``src``'s inode on this shard."""

        def body(txn):
            row = self._txn_resolve(txn, src, follow=False)
            if row["kind"] == DIRECTORY:
                raise FsError.eisdir(src)
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: {src}")
            row = dict(row)
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except VinoForward as fwd:
            view = yield from self._peer(fwd.shard, "link_vino", fwd.vino, now)
            return (view, fwd.shard)
        return (self._attr_view(row), self.shard_id)

    def link_fetch(self, src, now, _hops=0):
        """RPC (shard-to-shard): resolve + bump a link source for a peer."""
        self._check_hops(_hops, src)
        yield from self._dispatch()
        try:
            result = yield from self._link_fetch_local(src, now)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "link_fetch", fwd.path, now, _hops + 1)
        return result

    def _unbump(self, vino, home, now):
        """Coroutine: compensate an optimistic link-count bump."""
        if home != self.shard_id:
            yield from self._peer(home, "unlink_vino", vino, now)
            return

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is not None:
                row["nlink"] -= 1
                txn.write("inodes", row)
            return True

        yield from self.dbsvc.execute(body)

    def close_sync(self, vino, size, mtime, now):
        """Delegated write-back; chases an inode a rename migrated away.

        The router targets the learned home shard, but a concurrent
        cross-shard rename can move the inode after a client learned its
        home.  A miss here fans out to the peers before giving up, so the
        delegated size/mtime are never silently dropped.
        """
        result = yield from super().close_sync(vino, size, mtime, now)
        if result:
            return True
        for shard in range(self.n_shards):
            if shard == self.shard_id:
                continue
            found = yield from self._peer(
                shard, "close_sync_local", vino, size, mtime, now)
            if found:
                return True
        return False

    def close_sync_local(self, vino, size, mtime, now):
        """RPC (shard-to-shard): close_sync without the fan-out retry."""
        result = yield from super().close_sync(vino, size, mtime, now)
        return result

    # -- vino-addressed inode ops (forward targets) ------------------------

    def getattr_vino(self, vino):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def setattr_vino(self, vino, changes, now):
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def open_vino(self, vino, for_write, now):
        yield from self._dispatch()

        def body(txn):
            row = txn.read("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if for_write:
                if row["kind"] == DIRECTORY:
                    raise FsError.eisdir(f"vino {vino}")
                row = dict(row)
                row["delegated"] = True
                txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def link_vino(self, vino, now):
        yield from self._dispatch()

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: "
                    f"vino {vino}")
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def unlink_vino(self, vino, now):
        yield from self._dispatch()

        def body(txn):
            row = txn.read_for_update("inodes", vino)
            if row is None:
                return (None, False)
            return self._drop_link(txn, row, now)

        result = yield from self.dbsvc.execute(body)
        return result

    # -- peer queries ------------------------------------------------------

    def count_children_of(self, path):
        """RPC (shard-to-shard): how many entries this shard holds under
        ``path`` (0 when the path does not resolve here)."""
        yield from self._dispatch()

        def body(txn):
            try:
                row = self._txn_resolve(txn, path)
            except (FsError, ResolveForward):
                return 0
            if row["kind"] != DIRECTORY:
                return 0
            return len(txn.index_read("dentries", "parent", row["vino"]))

        count = yield from self.dbsvc.execute(body)
        return count

    def peek_entry(self, path):
        """RPC (shard-to-shard): this shard's dentry at ``path``, if any.

        ``kind`` is None for a stub whose inode lives elsewhere.
        """
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except (FsError, ResolveForward):
                return None
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return None
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return {"vino": dentry["vino"], "kind": None, "home": home}
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                return None
            return {"vino": row["vino"], "kind": row["kind"],
                    "home": self.shard_id}

        entry = yield from self.dbsvc.execute(body)
        return entry

    # -- mirror (replication) ops ------------------------------------------

    def mirror_create(self, path, view, now):
        """RPC (shard-to-shard): replicate a directory/symlink create."""
        yield from self._dispatch()

        def body(txn):
            parent, name = self._txn_resolve_parent(txn, path)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                return False
            row = {
                "vino": view["vino"], "kind": view["kind"],
                "mode": view["mode"], "uid": view["uid"], "gid": view["gid"],
                "nlink": view["nlink"], "size": view["size"],
                "atime": view["atime"], "mtime": view["mtime"],
                "ctime": view["ctime"], "target": view["target"],
                "upath": view["upath"], "delegated": False,
            }
            txn.insert("inodes", row)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            })
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            if view["kind"] == DIRECTORY:
                up["nlink"] += 1
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_unlink(self, path, now):
        """RPC (shard-to-shard): replicate a symlink removal."""
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            row = txn.read("inodes", dentry["vino"])
            if row is not None:
                txn.delete("inodes", row["vino"])
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_rmdir(self, path, now):
        """RPC (shard-to-shard): replicate a directory removal.

        Guard against the coordinator's check-then-act window: if entries
        appeared here since the emptiness checks, refuse to delete so no
        file becomes unreachable (the skeleton diverges until the retried
        rmdir; full cross-shard atomicity is a ROADMAP open item).
        """
        yield from self._dispatch()

        def body(txn):
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            if txn.index_read("dentries", "parent", dentry["vino"]):
                return False
            self._invalidate_resolve(parent["vino"])
            self._invalidate_resolve(dentry["vino"])
            txn.delete("dentries", (parent["vino"], name))
            txn.delete("inodes", dentry["vino"])
            up = dict(parent)
            up["nlink"] -= 1
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    # -- recovery ----------------------------------------------------------

    def recover(self):
        """Coroutine: crash/recover this shard, keeping its vino stride.

        Cross-shard renames migrate inodes (with their vinos) to other
        shards, so the local tables alone under-estimate how far this
        shard's allocation class has advanced: the peers are asked for
        their highest vino in this class before the allocator reseats.
        """
        lost = yield from super().recover()
        base, step = self.shard_id + 1, self.n_shards
        vinos = [row["vino"] for row in self.db.table("inodes").all()]
        top = max(vinos) if vinos else 0
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                peak = yield from self._peer(
                    shard, "max_vino_in_class", base, step)
                top = max(top, peak)
        if top >= base:
            base += ((top - base) // step + 1) * step
        self._vino = itertools.count(base, step)
        return lost

    def max_vino_in_class(self, base, step):
        """RPC (shard-to-shard): highest local vino ≡ base (mod step)."""
        yield from self._dispatch()

        def body(txn):
            peak = 0
            for row in txn.match("inodes"):
                vino = row["vino"]
                if vino >= base and (vino - base) % step == 0:
                    peak = max(peak, vino)
            return peak

        peak = yield from self.dbsvc.execute(body)
        return peak
