"""The COFS filesystem: virtual namespace over a reorganized layout.

Implements the shared VFS interface by routing metadata operations to the
metadata service and data operations to the underlying parallel-FS client,
through the paths the placement driver assigned at creation time.  Mounted
under :class:`~repro.fuse.FuseMount` it is the complete system of the
paper's Fig. 3.

Notable consequences of the design, visible in this class:

- ``rename`` and ``link`` never touch the underlying file system (the
  underlying path of a file never changes; hard links are two virtual names
  for one underlying object);
- ``stat`` of a file nobody is writing never touches the underlying file
  system either — it is one round trip to the metadata service;
- underlying *bucket* directories are created lazily, once per bucket per
  node, and their cost amortizes over the (up to) 512 files placed there.
"""

import itertools

from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, FileAttr, OpenFlags
from repro.pfs.vfs import FileSystemApi


class _CofsHandle:
    __slots__ = ("fh", "vino", "upath", "ufh", "flags", "wrote", "max_end",
                 "meta_only")

    def __init__(self, fh, vino, upath, ufh, flags, meta_only=False):
        self.fh = fh
        self.vino = vino
        self.upath = upath
        self.ufh = ufh
        self.flags = flags
        self.wrote = False
        self.max_end = 0
        self.meta_only = meta_only


class CofsFileSystem(FileSystemApi):
    """One node's COFS view (the userspace daemon's core logic)."""

    def __init__(self, machine, underlying, driver, config, pid=0):
        self.machine = machine
        self.sim = machine.sim
        self.underlying = underlying
        self.driver = driver
        self.config = config
        self.pid = pid
        self.uid = getattr(underlying, "uid", 0)
        self.gid = getattr(underlying, "gid", 0)
        self._handles = {}
        self._fh_counter = itertools.count(1)
        self._known_dirs = set()

    @property
    def node(self):
        return self.machine.name

    def _now(self):
        return self.sim.now

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _attr_from_view(self, view, size=None, mtime=None, atime=None):
        return FileAttr(
            ino=view["vino"], kind=view["kind"], mode=view["mode"],
            uid=view["uid"], gid=view["gid"],
            size=view["size"] if size is None else size,
            nlink=view["nlink"],
            atime=view["atime"] if atime is None else atime,
            mtime=view["mtime"] if mtime is None else mtime,
            ctime=view["ctime"],
        )

    def _ensure_bucket_dirs(self, upath):
        """Coroutine: make sure the bucket path for ``upath`` exists below."""
        bucket, _slash, _leaf = upath.rpartition("/")
        if bucket in self._known_dirs:
            return
        parts = bucket.strip("/").split("/")
        prefix = ""
        for part in parts:
            prefix = f"{prefix}/{part}"
            if prefix in self._known_dirs:
                continue
            try:
                yield from self.underlying.mkdir(prefix)
            except FsError as exc:
                if exc.code != "EEXIST":
                    raise
            self._known_dirs.add(prefix)

    def _new_handle(self, vino, upath, ufh, flags, meta_only=False):
        fh = next(self._fh_counter)
        self._handles[fh] = _CofsHandle(
            fh, vino, upath, ufh, flags, meta_only)
        return fh

    def _handle(self, fh):
        handle = self._handles.get(fh)
        if handle is None:
            raise FsError.ebadf(fh)
        return handle

    # ------------------------------------------------------------------
    # namespace operations (metadata service only)
    # ------------------------------------------------------------------

    def mkdir(self, path, mode=0o755):
        yield from self.driver.call(
            "create_node", path, DIRECTORY, mode, self.uid, self.gid,
            self.node, self.pid, self._now(),
        )

    def rmdir(self, path):
        yield from self.driver.call("rmdir", path, self._now())

    def symlink(self, target, path):
        yield from self.driver.call(
            "create_node", path, SYMLINK, 0o777, self.uid, self.gid,
            self.node, self.pid, self._now(), target,
        )

    def readlink(self, path):
        target = yield from self.driver.call("readlink", path)
        return target

    def readdir(self, path):
        names = yield from self.driver.call("readdir", path)
        return names

    def rename(self, old, new):
        replaced_upath, last = yield from self.driver.call(
            "rename", old, new, self._now()
        )
        if last and replaced_upath is not None:
            yield from self.underlying.unlink(replaced_upath)

    def link(self, src, dst):
        yield from self.driver.call("link", src, dst, self._now())

    def stat(self, path):
        view = yield from self.driver.call("getattr", path)
        if view["delegated"] and view["upath"] is not None:
            uattr = yield from self.underlying.stat(view["upath"])
            return self._attr_from_view(
                view, size=uattr.size, mtime=uattr.mtime, atime=uattr.atime
            )
        return self._attr_from_view(view)

    def utime(self, path, atime=None, mtime=None):
        now = self._now()
        yield from self.driver.call(
            "setattr", path,
            {"atime": now if atime is None else atime,
             "mtime": now if mtime is None else mtime},
            now,
        )

    def chmod(self, path, mode):
        yield from self.driver.call(
            "setattr", path, {"mode": mode}, self._now()
        )

    def chown(self, path, uid, gid):
        yield from self.driver.call(
            "setattr", path, {"uid": uid, "gid": gid}, self._now()
        )

    def statfs(self):
        """Namespace stats from the MDS merged with underlying capacity."""
        mds_stats = yield from self.driver.call("statfs")
        under = yield from self.underlying.statfs()
        merged = dict(under)
        merged["files"] = mds_stats["files"]
        merged["virtual_directories"] = mds_stats["directories"]
        return merged

    # ------------------------------------------------------------------
    # files: create/open/close and the data passthrough
    # ------------------------------------------------------------------

    def create(self, path, mode=0o644):
        view = yield from self.driver.call(
            "create_node", path, FILE, mode, self.uid, self.gid,
            self.node, self.pid, self._now(),
        )
        upath = view["upath"]
        yield from self._ensure_bucket_dirs(upath)
        ufh = yield from self.underlying.create(upath, mode)
        return self._new_handle(
            view["vino"], upath, ufh, OpenFlags.WRONLY | OpenFlags.CREAT
        )

    def mknod(self, path, mode=0o644):
        """Coroutine: metadata-only create — no underlying object.

        One MDS transaction, nothing beneath: the file exists purely in
        the virtual namespace (``upath`` is None, no placement slot is
        charged, unlink skips the underlying unlink).  This is the probe
        that exposes the metadata tier's own create ceiling, which the
        full ``create`` hides behind the underlying file system's — and
        the natural primitive for namespace-only workloads (lock files,
        markers) once an application can opt out of data objects.
        Opening such a file works (open/close pairs with no I/O are the
        ubiquitous metadata-workload pattern), but actual data I/O
        through the handle fails with EINVAL — there is no object to
        read or write; stat/rename/link behave normally.
        """
        view = yield from self.driver.call(
            "create_node", path, FILE, mode, self.uid, self.gid,
            None, self.pid, self._now(),
        )
        return self._attr_from_view(view)

    def open(self, path, flags=0):
        for_write = OpenFlags.wants_write(flags)
        try:
            view = yield from self.driver.call(
                "open_map", path, for_write, self._now()
            )
        except FsError as exc:
            if exc.code == "ENOENT" and flags & OpenFlags.CREAT:
                fh = yield from self.create(path)
                handle = self._handle(fh)
                handle.flags = flags
                return fh
            raise
        if flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            raise FsError.eexist(path)
        if view["kind"] == DIRECTORY:
            if for_write:
                raise FsError.eisdir(path)
            return self._new_handle(view["vino"], None, None, flags)
        upath = view["upath"]
        if flags & OpenFlags.TRUNC and view["kind"] == FILE:
            if upath is not None:
                # Metadata-only (mknod) files have nothing underneath to
                # truncate; their virtual size is still reset below.
                yield from self.underlying.truncate(upath, 0)
            yield from self.driver.call(
                "setattr", path, {"size": 0}, self._now()
            )
        # The underlying file is opened lazily, on the first data access:
        # an open/close pair with no I/O (ubiquitous in metadata-heavy
        # workloads) never touches the underlying file system, which is why
        # the paper's COFS open/close times track its stat times.
        return self._new_handle(
            view["vino"], upath, None, flags,
            meta_only=(view["kind"] == FILE and upath is None))

    def _ensure_ufh(self, handle):
        """Coroutine: open the underlying file for ``handle`` if needed."""
        if handle.ufh is None:
            if handle.upath is None:
                if handle.meta_only:
                    # A mknod'd file: a regular file with no data object.
                    raise FsError.einval(
                        f"metadata-only file has no data object: "
                        f"fh {handle.fh}")
                raise FsError.eisdir(f"fh {handle.fh}")
            under_flags = handle.flags & ~(OpenFlags.CREAT | OpenFlags.EXCL)
            handle.ufh = yield from self.underlying.open(
                handle.upath, under_flags
            )
        return handle.ufh

    def close(self, fh):
        handle = self._handle(fh)
        if handle.ufh is not None:
            yield from self.underlying.close(handle.ufh)
        if handle.wrote:
            yield from self.driver.call(
                "close_sync", handle.vino, handle.max_end, self._now(),
                self._now(),
            )
        del self._handles[fh]

    def read(self, fh, offset, size, want_data=False):
        handle = self._handle(fh)
        ufh = yield from self._ensure_ufh(handle)
        result = yield from self.underlying.read(
            ufh, offset, size, want_data=want_data
        )
        return result

    def write(self, fh, offset, size=None, data=None):
        handle = self._handle(fh)
        ufh = yield from self._ensure_ufh(handle)
        written = yield from self.underlying.write(
            ufh, offset, size=size, data=data
        )
        handle.wrote = True
        handle.max_end = max(handle.max_end, offset + written)
        return written

    def fsync(self, fh):
        handle = self._handle(fh)
        if handle.ufh is not None:
            yield from self.underlying.fsync(handle.ufh)

    def unlink(self, path):
        upath, last = yield from self.driver.call("unlink", path, self._now())
        if last and upath is not None:
            yield from self.underlying.unlink(upath)

    def truncate(self, path, size):
        view = yield from self.driver.call("getattr", path)
        if view["kind"] == DIRECTORY:
            raise FsError.eisdir(path)
        if view["upath"] is not None:
            yield from self.underlying.truncate(view["upath"], size)
        yield from self.driver.call("setattr", path, {"size": size}, self._now())
