"""Fault injection and tier-wide invariants for the sharded metadata tier.

Crash-consistency is proven, not argued: every cross-shard mutation is a
sequence of durable journal commits and shard-to-shard RPCs, and a crash
can land in any gap between them.  :class:`CrashSchedule` makes those gaps
enumerable — each durable commit and each RPC send/receive is a *boundary*;
a counting pass records how many boundaries an operation crosses, and a
replay pass re-runs the operation with the schedule armed at each boundary
in turn, killing the in-flight operation right there (the strongest model:
coordinator and participants all die, so recovery must restore consistency
from durable state alone, with no live compensation).

:func:`check_tier_invariants` is the single oracle every crash drill runs
after tier-wide recovery: no dangling dentries, no stranded inodes,
consistent link counts, identical skeleton replicas, reconciled placement
counters, no leftover coordination records — and the observable namespace
equal to either the pre-operation or the post-operation image.
"""

from repro.pfs.types import DIRECTORY, FILE, SYMLINK, split


class CrashInjected(Exception):
    """Control flow: the armed crash boundary fired; the op dies here."""

    def __init__(self, index, label):
        super().__init__(index, label)
        self.index = index
        self.label = label


class CrashSchedule:
    """Counts RPC/journal boundaries; optionally crashes at one of them.

    With ``armed is None`` the schedule only counts (and records a trace of
    labels); arming it at index *k* raises :class:`CrashInjected` the *k*-th
    time a boundary is crossed.  With an ``action``, the armed boundary
    calls ``action(label)`` instead of raising — the in-flight operation
    *keeps running* while the action (typically: spawn a concurrent
    single-shard recovery) unfolds beside it.  That is the concurrent
    drill mode: crash-the-op is the strongest model for whole-tier power
    loss, recover-beside-the-op is the model for one shard restarting
    inside a live tier.
    """

    def __init__(self, armed=None, action=None):
        self.armed = armed
        self.action = action
        self.count = 0
        self.trace = []

    def boundary(self, label):
        index = self.count
        self.count += 1
        self.trace.append(label)
        if self.armed is not None and index == self.armed:
            if self.action is not None:
                self.action(label)
            else:
                raise CrashInjected(index, label)


def arm_shards(shards, schedule):
    """Attach ``schedule`` to every shard: peer RPCs and durable commits
    become crash boundaries (see :meth:`ShardMetadataService._peer` and
    :meth:`repro.db.service.DbService.execute`)."""
    for shard in shards:
        shard.faults = schedule
        shard.dbsvc.fault_hook = (
            lambda sid=shard.shard_id: schedule.boundary(("commit", sid))
        )


def disarm_shards(shards):
    for shard in shards:
        shard.faults = None
        shard.dbsvc.fault_hook = None


def arm_force_boundaries(shards, schedule):
    """Attach ``schedule`` to every shard's *force* boundaries.

    Only meaningful with asynchronous group commit: the batcher calls
    the hook right after each force (and, on replicated tiers, its
    quorum ship) completes, labelled ``("force", sid)``.  Crashing there
    exercises the bounded-loss model — everything below that force's
    head is durable, every later record is the journal tail a crash
    loses.  Force boundaries are strictly coarser than the per-commit
    boundaries :func:`arm_shards` enumerates; the two can be armed
    together (distinct hooks, one shared schedule counter).
    """
    for shard in shards:
        shard.dbsvc.force_hook = (
            lambda sid=shard.shard_id: schedule.boundary(("force", sid))
        )


def disarm_force_boundaries(shards):
    for shard in shards:
        shard.dbsvc.force_hook = None


def arm_groups(groups, schedule):
    """Attach ``schedule`` to every member of every group.

    Backups get boundaries too: their ``repl_apply`` commits are labelled
    ``("commit", sid)`` like any durable commit, and the primary's ship
    RPCs trace as ``("send"/"recv", sid, "m<i>", "repl_apply")`` — so
    the crash-point harness enumerates "primary dies before/after the
    ship" and "backup dies mid-catch-up" for free.
    """
    arm_shards([m for g in groups for m in g.members], schedule)


def disarm_groups(groups):
    disarm_shards([m for g in groups for m in g.members])


# ---------------------------------------------------------------------------
# Member kill / revive hooks (primary/backup groups)
# ---------------------------------------------------------------------------

def kill_member(member):
    """Fail-stop a group member: every *new* dispatch is refused with
    :class:`~repro.core.shard.routing.MemberDown`.

    Deliberately does not cancel in-flight handlers — they keep running
    to completion, which is exactly the zombie window epoch fencing
    exists for.  (A kill is therefore slightly *optimistic* about how
    much work a dying node finishes; the crash-point drills cover the
    pessimistic die-mid-operation model with :class:`CrashInjected`.)
    A network partition is modelled identically from the tier's point of
    view: an unreachable member and a dead member refuse the same RPCs,
    and a partition that heals is ``revive_member`` + group
    :meth:`~repro.core.shard.replication.ReplicatedShard.rejoin`.
    """
    member.down = True


def kill_primary(group):
    """Kill the group's current primary; returns it (for later revival)."""
    primary = group.primary
    kill_member(primary)
    return primary


def kill_backup(group, index=None):
    """Kill a live backup (the first one, or the member at ``index``)."""
    if index is not None:
        backup = group.members[index]
    else:
        live = group.live_backups()
        assert live, f"group s{group.shard_id} has no live backup to kill"
        backup = live[0]
    kill_member(backup)
    return backup


def revive_member(member):
    """Bring a killed member back up — as a *zombie*: its state is
    whatever it held at the kill (possibly a divergent, never-acked
    journal suffix).  It serves nothing useful until the group
    :meth:`~repro.core.shard.replication.ReplicatedShard.rejoin`\\ s it;
    until then every stamped action it attempts is epoch-fenced.  Split
    from ``rejoin`` so tests can probe the zombie window explicitly.
    """
    member.down = False


def check_group_invariants(groups):
    """Assert every in-sync member of every group holds identical data.

    Compares the replicated data tables (inodes, dentries, buckets,
    intents, overrides) between each group's primary and its in-sync
    backups.  ``epochs`` is excluded — fence installs reach members both
    directly (promotion fences its fellow members) and via shipping, so
    row-for-row equality is not an invariant there (the stamp checks
    only need every member's fence to be *at least* the shipped one) —
    as is the member-local ``repl`` pointer.
    """
    for group in groups:
        primary = group.primary
        reference = {
            name: {row[primary.db.table(name).key]: dict(row)
                   for row in primary.db.table(name).all()}
            for name in ("inodes", "dentries", "buckets",
                         "intents", "overrides", "partitions")
        }
        head = group.lsn
        for backup in group.live_backups():
            assert group.acked[backup] == head, (
                f"group s{group.shard_id}: backup m{backup.member_index} "
                f"acked {group.acked[backup]} but group head is {head}"
            )
            for name, want in reference.items():
                have = {row[backup.db.table(name).key]: dict(row)
                        for row in backup.db.table(name).all()}
                assert have == want, (
                    f"group s{group.shard_id}: table {name!r} diverges on "
                    f"backup m{backup.member_index}: "
                    f"{_dict_diff(want, have)}"
                )


# ---------------------------------------------------------------------------
# Table-level views (no simulation cost: these are test/recovery oracles)
# ---------------------------------------------------------------------------

def _dentries_by_parent(shard):
    by_parent = {}
    for dentry in shard.db.table("dentries").all():
        by_parent.setdefault(dentry["parent"], []).append(dentry)
    return by_parent


def skeleton_view(shard):
    """``{path: (vino, kind, mode, uid, gid, target)}`` of this shard's
    replica of the directory/symlink skeleton, walked from the root.

    Times and sizes are deliberately excluded: a directory's times are
    authoritative only on its contents-owner shard (a documented
    simplification), so replicas legitimately differ there.
    """
    inodes = {row["vino"]: row for row in shard.db.table("inodes").all()}
    by_parent = _dentries_by_parent(shard)
    view = {}
    frontier = [("", shard.root_vino)]
    while frontier:
        dir_path, dvino = frontier.pop()
        for dentry in by_parent.get(dvino, ()):
            if dentry.get("home") is not None:
                continue  # cross-shard hard-link stub: never skeleton
            if dentry.get("staged") is not None:
                continue  # mid-flip rename alias: transient by design
            row = inodes.get(dentry["vino"])
            if row is None or row["kind"] == FILE:
                continue
            path = f"{dir_path}/{dentry['name']}"
            view[path] = (row["vino"], row["kind"], row["mode"],
                          row["uid"], row["gid"], row["target"])
            if row["kind"] == DIRECTORY:
                frontier.append((path, row["vino"]))
    return view


def _authoritative_entries(by_parent, sharding, n, dir_path, dvino):
    """Yield ``(owner, dentry)`` for the directory's authoritative entries.

    Resolves exactly the way the router routes: each entry is read on the
    shard :meth:`ShardingPolicy.shard_of_entry` names for it.  A split
    directory's entries therefore come from several shards, and an entry
    mid-migration (present on both its old and its new shard) is listed
    exactly once — a copy residing on a shard that routing no longer (or
    does not yet) name for that entry is invisible, which is the
    exactly-once guarantee readdir's fan-out merge relies on.
    """
    for owner in sharding.entry_shards(dir_path or "/", n):
        for dentry in by_parent[owner].get(dvino, ()):
            if sharding.shard_of_entry(
                    dir_path or "/", dentry["name"], n) != owner:
                continue
            yield owner, dentry


def namespace_image(shards, sharding):
    """The observable namespace, resolved the way the router routes it.

    A directory's entries are read on the shard(s) owning them — the
    directory's own shard, or the per-entry partition shard for a split
    directory; a stub dentry's inode is read at its recorded home shard.
    The result maps each path to a structural record — exactly what a
    client walking the tree could observe (times excluded; delegation can
    change them without the metadata tier seeing it).
    """
    n = len(shards)
    inodes = [
        {row["vino"]: row for row in shard.db.table("inodes").all()}
        for shard in shards
    ]
    by_parent = [_dentries_by_parent(shard) for shard in shards]
    image = {}
    frontier = [("", shards[0].root_vino)]
    while frontier:
        dir_path, dvino = frontier.pop()
        for owner, dentry in _authoritative_entries(
                by_parent, sharding, n, dir_path, dvino):
            path = f"{dir_path}/{dentry['name']}"
            home = dentry.get("home")
            row = inodes[owner if home is None else home].get(dentry["vino"])
            if row is None:
                image[path] = ("#dangling", dentry["vino"])
                continue
            image[path] = (row["kind"], row["vino"], row["mode"],
                           row["nlink"], row["size"], row["target"],
                           row["upath"])
            if row["kind"] == DIRECTORY:
                frontier.append((path, row["vino"]))
    return image


def _reachable_file_refs(shards, sharding):
    """Tier-wide reference count per FILE vino, walking as the router does."""
    n = len(shards)
    refs = {}
    by_parent = [_dentries_by_parent(shard) for shard in shards]
    inodes = [
        {row["vino"]: row for row in shard.db.table("inodes").all()}
        for shard in shards
    ]
    frontier = [("", shards[0].root_vino)]
    while frontier:
        dir_path, dvino = frontier.pop()
        for owner, dentry in _authoritative_entries(
                by_parent, sharding, n, dir_path, dvino):
            home = dentry.get("home")
            row = inodes[owner if home is None else home].get(dentry["vino"])
            if row is None:
                continue
            if row["kind"] == FILE:
                refs[row["vino"]] = refs.get(row["vino"], 0) + 1
            elif row["kind"] == DIRECTORY:
                frontier.append((f"{dir_path}/{dentry['name']}", row["vino"]))
    return refs


def check_tier_invariants(shards, sharding, images=()):
    """Assert every namespace invariant across the whole tier.

    ``images`` is the set of acceptable observable namespaces (typically
    the pre-op and post-op images); pass ``()`` to skip the atomicity
    check and verify only structural consistency.  Returns the observed
    image so callers can chain further checks.
    """
    n = len(shards)

    # 1. Identical skeleton replicas on every shard.
    skeletons = [skeleton_view(shard) for shard in shards]
    for shard_id in range(1, n):
        assert skeletons[shard_id] == skeletons[0], (
            f"skeleton replica diverges on shard {shard_id}: "
            f"{_dict_diff(skeletons[0], skeletons[shard_id])}"
        )

    # 2. Recovery epochs and fences.  Each shard's own durable epoch row
    #    matches its live epoch; every fence row is honest (never above
    #    the fenced coordinator's actual epoch — a fence must only ever
    #    seal off epochs that coordinator has abandoned); the in-memory
    #    fence maps mirror the durable rows; and no surviving record is
    #    stamped with an epoch below its coordinator's fence (a fenced
    #    coordinator must leave no partial state behind).  The
    #    stale-record scan runs *before* the blanket no-leftover check
    #    below so a fencing failure reports itself precisely.
    current = {shard.shard_id: shard.epoch for shard in shards}
    for shard in shards:
        rows = {row["shard"]: row["epoch"]
                for row in shard.db.table("epochs").all()}
        own = rows.get(shard.shard_id)
        assert own == shard.epoch, (
            f"shard {shard.shard_id}: durable epoch {own} != "
            f"live epoch {shard.epoch}"
        )
        for coord, fence in rows.items():
            assert fence <= current[coord], (
                f"shard {shard.shard_id} fences s{coord} at {fence}, above "
                f"its actual epoch {current[coord]}"
            )
            assert shard.fences.get(coord, 0) == fence, (
                f"shard {shard.shard_id}: in-memory fence for s{coord} is "
                f"{shard.fences.get(coord, 0)}, durable row says {fence}"
            )
        for coord, fence in shard.fences.items():
            assert fence == rows.get(coord, 0), (
                f"shard {shard.shard_id}: fence map entry s{coord}={fence} "
                f"has no matching durable row"
            )
        for rec in shard.db.table("intents").all():
            coord = int(rec["id"][1:].split(".", 1)[0])
            fence = rows.get(coord, 0)
            assert rec.get("epoch", 0) >= fence, (
                f"stale-epoch record survived on shard {shard.shard_id}: "
                f"{dict(rec)} (fence for s{coord} is {fence})"
            )

    # 2a. No leftover coordination records (intents/prepares/dedups).
    for shard in shards:
        leftover = shard.db.table("intents").all()
        assert not leftover, (
            f"shard {shard.shard_id} holds unresolved intents: {leftover}"
        )

    # 2b. Re-partitioning overrides: identical durable tables on every
    #     shard, and the shared in-memory map (what routing consults)
    #     reflects exactly the durable rows.
    override_tables = [
        {row["path"]: (row["shard"], row["seq"])
         for row in shard.db.table("overrides").all()}
        for shard in shards
    ]
    for shard_id in range(1, n):
        assert override_tables[shard_id] == override_tables[0], (
            f"override table diverges on shard {shard_id}: "
            f"{_dict_diff(override_tables[0], override_tables[shard_id])}"
        )
    in_memory = dict(getattr(sharding, "overrides", {}))
    durable = {path: rec[0] for path, rec in override_tables[0].items()}
    assert in_memory == durable, (
        f"in-memory override map diverges from durable rows: "
        f"{_dict_diff(durable, in_memory)}"
    )

    # 2c. Intra-directory partitions: identical durable tables on every
    #     shard, and the shared in-memory fan-out map (what per-entry
    #     routing consults) reflects exactly the durable rows.
    partition_tables = [
        {row["path"]: (tuple(row["shards"]), row["seq"])
         for row in shard.db.table("partitions").all()}
        for shard in shards
    ]
    for shard_id in range(1, n):
        assert partition_tables[shard_id] == partition_tables[0], (
            f"partitions table diverges on shard {shard_id}: "
            f"{_dict_diff(partition_tables[0], partition_tables[shard_id])}"
        )
    mem_parts = dict(getattr(sharding, "partitions", {}))
    durable_parts = {
        path: rec[0] for path, rec in partition_tables[0].items()}
    assert mem_parts == durable_parts, (
        f"in-memory partition map diverges from durable rows: "
        f"{_dict_diff(durable_parts, mem_parts)}"
    )

    # 3. Dentry/inode structural consistency per shard + stub homes.
    inodes = [
        {row["vino"]: row for row in shard.db.table("inodes").all()}
        for shard in shards
    ]
    for shard_id, shard in enumerate(shards):
        for dentry in shard.db.table("dentries").all():
            # Rename transients never outlive their operation: a staged
            # alias dies with the flip's retire (or abort), a
            # retiring-marked ghost with the cross-shard rename's
            # post-install retire — recovery resolves either way, so a
            # quiesced tier holds none.
            assert dentry.get("staged") is None, (
                f"leaked staged rename alias on shard {shard_id}: "
                f"{dict(dentry)}"
            )
            assert dentry.get("retiring") is None, (
                f"leaked retiring rename ghost on shard {shard_id}: "
                f"{dict(dentry)}"
            )
            home = dentry.get("home")
            if home is None:
                assert dentry["vino"] in inodes[shard_id], (
                    f"dangling dentry on shard {shard_id}: {dict(dentry)}"
                )
            else:
                row = inodes[home].get(dentry["vino"])
                assert row is not None and row["kind"] == FILE, (
                    f"stub on shard {shard_id} points at missing/non-file "
                    f"inode {dentry['vino']} on shard {home}"
                )

    # 4. Every FILE inode is reachable, and nlink matches the tier-wide
    #    reference count; directory nlink is 2 + its subdirectory count
    #    (checked on every replica); symlinks always have nlink 1.
    refs = _reachable_file_refs(shards, sharding)
    for shard_id, shard in enumerate(shards):
        by_parent = _dentries_by_parent(shard)
        for row in inodes[shard_id].values():
            if row["kind"] == FILE:
                assert refs.get(row["vino"], 0) >= 1, (
                    f"stranded file inode {row['vino']} on shard {shard_id}"
                )
                assert row["nlink"] == refs[row["vino"]], (
                    f"file {row['vino']} nlink={row['nlink']} but "
                    f"{refs[row['vino']]} reachable names"
                )
            elif row["kind"] == DIRECTORY:
                subdirs = 0
                for dentry in by_parent.get(row["vino"], ()):
                    if dentry.get("home") is not None:
                        continue
                    if dentry.get("staged") is not None:
                        continue  # an alias is not a second child
                    child = inodes[shard_id].get(dentry["vino"])
                    if child is not None and child["kind"] == DIRECTORY:
                        subdirs += 1
                assert row["nlink"] == 2 + subdirs, (
                    f"dir {row['vino']} on shard {shard_id}: "
                    f"nlink={row['nlink']}, expected {2 + subdirs}"
                )
            elif row["kind"] == SYMLINK:
                assert row["nlink"] == 1, (
                    f"symlink {row['vino']} on shard {shard_id} has "
                    f"nlink={row['nlink']}"
                )

    # 5. Placement counters equal a recount of the files placed here.
    for shard_id, shard in enumerate(shards):
        want = {}
        for row in inodes[shard_id].values():
            if row["kind"] == FILE and row["upath"]:
                bucket, _slash, _leaf = row["upath"].rpartition("/")
                want[bucket] = want.get(bucket, 0) + 1
        have = {
            row["path"]: row["count"]
            for row in shard.db.table("buckets").all()
            if row["count"]
        }
        assert have == want, (
            f"bucket counters diverge on shard {shard_id}: "
            f"have {have}, recount {want}"
        )

    # 6. Atomicity: the observable namespace is one of the given images.
    observed = namespace_image(shards, sharding)
    assert not any(
        record[0] == "#dangling" for record in observed.values()
    ), f"dangling names in observable namespace: {observed}"
    if images:
        assert any(observed == image for image in images), (
            "observable namespace is neither the pre-op nor the post-op "
            f"image: {_image_diffs(observed, images)}"
        )
    return observed


def _dict_diff(a, b):
    keys = set(a) | set(b)
    return {k: (a.get(k), b.get(k)) for k in keys if a.get(k) != b.get(k)}


def _image_diffs(observed, images):
    return [_dict_diff(observed, image) for image in images]
