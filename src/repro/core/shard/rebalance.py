"""Online load-aware re-partitioning of the sharded namespace.

Both partition functions are static — hash-by-parent spreads directories
uniformly but cannot react when several hot directories collide on one
shard, and static subtrees concentrate whole projects by design.  This
module closes the ROADMAP "dynamic re-partitioning" item, HopsFS-style:
hot directories are *re-homed* under load, with ownership recorded in an
override map the partition function consults before its static rule
(:meth:`repro.core.shard.routing.ShardingPolicy.shard_of_dir`).

**Protocol** (:meth:`ShardRebalancePart.rebalance_dir`, run on the
directory's current owner): one transaction journals a ``rebalance``
intent *atomically with* the durable override row — the first local
change, exactly like every other coordinated mutation — then the override
is broadcast to every peer (``mirror_override``), and the directory's
file population moves with the same crash-safe copy → import → purge RPC
triple that subtree migration after a directory rename uses
(:mod:`repro.core.shard.coordination`).  Every step is idempotent, so
recovery rolls a half-done migration *forward* by redoing the intent
(:meth:`redo_rebalance`); a crash before the intent committed leaves no
durable trace and routing falls back to the static rule.

**Durability**: every shard persists the override map in its
``overrides`` table; the shared in-memory map on the
:class:`~repro.core.shard.routing.ShardingPolicy` (what routers and
resolution hooks actually consult, at zero simulated cost — the partition
function has always been free to evaluate) is rebuilt from the durable
rows on recovery (:meth:`restore_overrides`, newest ``seq`` wins), so a
shard restored from an older journal prefix converges with its peers.

**Known simplifications** (mirroring the subtree-migration notes in
:mod:`repro.core.shard.coordination`): the override flips routing before
the population lands at the new owner, so a concurrently-looked-up file is
transiently ENOENT for other clients (crash-safe, not reader-atomic); and
an override outlives its directory — path-keyed, it applies to any later
directory recreated at the same path, which keeps routing consistent but
may surprise an administrator expecting it to die with the directory.

**Policy** (:class:`Rebalancer`): the client-side routers already compute
the (directory → shard) decision for every op and keep per-directory load
counters (:class:`~repro.core.shard.routing.ShardRouter`); the rebalancer
aggregates them, finds shards above ``threshold ×`` the mean load, and
greedily re-homes their hottest directories to the least-loaded shard.
"""

from repro import obs
from repro.core.shard.routing import EpochFenced
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, normalize


class ShardRebalancePart:
    """Mixin: the re-homing protocol and override durability RPCs."""

    def rebalance_dir(self, dir_path, dst, now):
        """Coroutine/RPC: re-home ``dir_path``'s file population to ``dst``.

        Must run on the directory's *current* owner (the shard that holds
        its file entries).  Journals the intent atomically with the
        durable override row, broadcasts the override, migrates the
        population, then retires the intent.
        """
        yield from self._dispatch()
        epoch = self.epoch
        dir_path = normalize(dir_path)
        if not 0 <= dst < self.n_shards:
            raise FsError.einval(f"no such shard: {dst}")
        if self._dir_owner(dir_path) != self.shard_id:
            raise FsError.einval(
                f"shard {self.shard_id} does not own {dir_path}")
        if dst == self.shard_id:
            return False
        tids = []

        def body(txn):
            row = self._txn_resolve(txn, dir_path)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(dir_path)
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord", "op": "rebalance",
                "dir": dir_path, "vino": row["vino"], "dst": dst,
                "now": now,
            }))
            txn.write("overrides",
                      {"path": dir_path, "shard": dst, "seq": now})
            return row["vino"]

        # The walk stays on the local skeleton replica: the owner holds
        # everything it needs, and a forward here would misroute the
        # intent.  The in-memory map flips only after the intent+override
        # transaction is durable — a crash before that leaves no trace.
        try:
            vino = yield from self.dbsvc.execute(self._local_body(body))
        except BaseException:
            self._done_tids(tids)
            raise
        self.sharding.overrides[dir_path] = dst
        stamp = self._stamp(epoch)
        try:
            yield from self._broadcast(
                "mirror_override", dir_path, dst, now, stamp=stamp)
            yield from self._migrate_dir_population(vino, dst, stamp)
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # intent + override are durable; recovery redoes the rest
        finally:
            self._done_tids(tids)
        return True

    def _migrate_dir_population(self, vino, dst, stamp=None):
        """Coroutine: move this shard's file entries of ``vino`` to ``dst``.

        The same idempotent copy → import → purge triple as post-rename
        subtree migration: entries transiently exist on both shards, a
        redo converges, and hard-linked inodes stay home behind a stub.
        """
        dentries, inodes = yield from self._call_shard(
            self.shard_id, "copy_dir_children", vino, stamp)
        if dentries:
            yield from self._call_shard(
                dst, "import_dir_children", vino, dentries, inodes, stamp)
            yield from self._call_shard(
                self.shard_id, "purge_dir_children", vino,
                [d["key"] for d in dentries],
                [r["vino"] for r in inodes], stamp)
        return True

    def redo_rebalance(self, rec):
        """Coroutine: roll a surviving ``rebalance`` intent forward.

        The local override row committed with the intent; re-assert the
        in-memory map, re-broadcast the override, re-run the migration
        (all idempotent, under the recovering coordinator's fresh epoch),
        then retire the intent.
        """
        self.sharding.overrides[rec["dir"]] = rec["dst"]
        yield from self._broadcast(
            "mirror_override", rec["dir"], rec["dst"], rec["now"])
        yield from self._migrate_dir_population(
            rec["vino"], rec["dst"], self._stamp())
        yield from self.intent_forget(rec["id"])
        return True

    def mirror_override(self, dir_path, shard, seq, stamp=None):
        """RPC (shard-to-shard): persist a re-homing override here.

        A row with a newer ``seq`` wins (two successive re-homings of one
        directory replay in either order during recovery).
        """
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            row = txn.read("overrides", dir_path)
            if row is not None and row["seq"] > seq:
                return False
            txn.write("overrides",
                      {"path": dir_path, "shard": shard, "seq": seq})
            return True

        result = yield from self.dbsvc.execute(body)
        if result:
            self.sharding.overrides[dir_path] = shard
        return result

    # -- forgetting an override (admin entry point) -------------------------

    def forget_override(self, dir_path, now, _hops=0):
        """Coroutine/RPC: durably drop ``dir_path``'s re-homing override.

        The administrative complement of :meth:`rebalance_dir`, closing
        the "override outlives its directory" stickiness for directories
        that still exist: under a durable ``forget_override`` intent,
        routing flips back to the static rule (rows dropped tier-wide)
        and the population then migrates home with the same crash-safe
        triple (see :meth:`_finish_forget_override` for why that order).
        Runs on the directory's current owner (self-forwarding).  rmdir
        needs none of this — its broadcast drops the row on every shard
        (see :meth:`~repro.core.shard.replication.ShardReplicationPart.
        mirror_rmdir`) and an empty directory has no population to move.
        """
        self._check_hops(_hops, dir_path)
        yield from self._dispatch()
        epoch = self.epoch
        norm = normalize(dir_path)
        if norm not in self.sharding.overrides:
            return False
        owner = self._dir_owner(norm)
        if owner != self.shard_id:
            result = yield from self._peer(
                owner, "forget_override", norm, now, _hops + 1)
            return result
        static = self.sharding.static_shard_of_dir(norm, self.n_shards)
        tids = []

        def body(txn):
            row = self._txn_resolve(txn, norm)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(norm)
            # The intent commits before any state moves: every later step
            # (migration, row drops, broadcast) is idempotent, so a crash
            # anywhere is rolled *forward* by redo_forget_override.
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord",
                "op": "forget_override", "dir": norm,
                "vino": row["vino"], "static": static, "seq": now,
            }))
            return row["vino"]

        try:
            vino = yield from self.dbsvc.execute(self._local_body(body))
        except BaseException:
            self._done_tids(tids)
            raise
        try:
            yield from self._finish_forget_override(
                norm, vino, static, now, self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # the forget intent is durable; recovery rolls it forward
        finally:
            self._done_tids(tids)
        return True

    def _finish_forget_override(self, norm, vino, static, seq, stamp):
        """Coroutine: the idempotent tail of a forget (shared with redo).

        Routing flips back *first* (drop the rows, then migrate) —
        exactly :meth:`rebalance_dir`'s order.  Flipping first means a
        concurrent create can only land at the static owner (correct)
        or at this shard pre-flip, where the subsequent migration's copy
        picks it up; migrating first would leave any create routed by
        the still-installed override *after* the copy snapshot stranded
        here forever once the override drops.  The residual window is
        rebalance_dir's own (see the ROADMAP migration-visibility item):
        transiently ENOENT for concurrent readers, never a lost entry
        beyond an in-flight commit racing the copy.  The drops carry the
        forget's ``seq`` and obey the same newest-wins discipline as
        ``mirror_override``: a redo replaying this forget late must not
        destroy an override a *later* re-homing installed (whose
        population has already moved — dropping its row would strand
        every one of those inodes behind static-rule routing).
        """
        dropped = yield from self.dbsvc.execute(
            self._drop_override_body(norm, seq))
        if dropped:
            self.sharding.overrides.pop(norm, None)
        yield from self._broadcast(
            "mirror_forget_override", norm, seq, stamp=stamp)
        if static != self.shard_id:
            yield from self._migrate_dir_population(vino, static, stamp)
        return True

    def _drop_override_body(self, norm, seq):
        """Txn body: delete the override row unless a newer one won."""

        def body(txn):
            row = txn.read("overrides", norm)
            if row is None or row["seq"] > seq:
                return False
            txn.delete("overrides", norm)
            return True

        return body

    def redo_forget_override(self, rec):
        """Coroutine: roll a surviving ``forget_override`` intent forward."""
        yield from self._finish_forget_override(
            rec["dir"], rec["vino"], rec["static"], rec["seq"],
            self._stamp())
        yield from self.intent_forget(rec["id"])
        return True

    def mirror_forget_override(self, dir_path, seq, stamp=None):
        """RPC (shard-to-shard): drop a re-homing override row here
        (newest-seq-wins, like :meth:`mirror_override`)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            return self._drop_override_body(dir_path, seq)(txn)

        result = yield from self.dbsvc.execute(body)
        if result:
            self.sharding.overrides.pop(dir_path, None)
        return result

    # -- recovery ----------------------------------------------------------

    def override_rows(self):
        """RPC (shard-to-shard): this shard's durable override rows."""
        yield from self._dispatch()

        def body(txn):
            return [dict(row) for row in txn.match("overrides")]

        rows = yield from self.dbsvc.execute(body)
        return rows

    def sync_overrides(self, rows):
        """RPC (shard-to-shard): make this table exactly the given rows."""
        yield from self._dispatch()

        def body(txn):
            want = {row["path"]: row for row in rows}
            for row in txn.match("overrides"):
                if row["path"] not in want:
                    txn.delete("overrides", row["path"])
            for path, row in want.items():
                cur = txn.read("overrides", path)
                if cur is None or dict(cur) != row:
                    txn.write("overrides", dict(row))
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def restore_overrides(self):
        """Coroutine: rebuild the tier's override map from durable rows.

        Union over every shard's table, newest ``seq`` (shard id breaks
        ties) winning per path; the merged set is pushed back to every
        shard and becomes the shared in-memory map.  Runs after intent
        completion — a surviving rebalance intent has just re-installed
        its override everywhere — and before the skeleton resync, whose
        authority function routes through the overrides.  Under the
        default synchronous journal an override row is durable before the
        in-memory flip, so the union is exact; with ``sync_updates=False``
        an override every shard lost reverts to the static rule (like any
        other lost update under the async policy).
        """
        best = {}
        for shard in range(self.n_shards):
            rows = yield from self._call_shard(shard, "override_rows")
            for row in rows:
                cur = best.get(row["path"])
                if cur is None or \
                        (row["seq"], row["shard"]) > (cur["seq"], cur["shard"]):
                    best[row["path"]] = dict(row)
        for shard in range(self.n_shards):
            yield from self._call_shard(
                shard, "sync_overrides", list(best.values()))
        self.sharding.overrides.clear()
        self.sharding.overrides.update(
            {path: row["shard"] for path, row in best.items()})
        return len(best)


# ---------------------------------------------------------------------------
# The load-aware re-balancer
# ---------------------------------------------------------------------------

class Rebalancer:
    """Samples router load counters and re-homes hot directories.

    ``routers`` are the stack's :class:`ShardRouter` instances (one per
    client node); ``shards`` the tier's services.  ``threshold`` is the
    overload factor: a shard is rebalanced only while its dir-attributed
    load exceeds ``threshold ×`` the tier mean.  The planner is greedy and
    deterministic: hottest directory first, moved to the least-loaded
    shard, never moving more load onto the destination than would just
    swap the hotspot.
    """

    def __init__(self, routers, shards, threshold=1.25, max_moves=None):
        self.routers = list(routers)
        self.shards = list(shards)
        self.threshold = threshold
        self.max_moves = max_moves

    def sampled_loads(self):
        """Aggregate per-directory op counts across every router."""
        dir_load = {}
        for router in self.routers:
            for path, count in router.dir_loads.items():
                dir_load[path] = dir_load.get(path, 0) + count
        return dir_load

    def plan(self):
        """``[(dir_path, src, dst)]`` migrations that would level the load."""
        n = len(self.shards)
        if n <= 1:
            return []
        dir_load = self.sampled_loads()
        if not dir_load:
            return []
        sharding = self.shards[0].sharding
        owner = {path: sharding.shard_of_dir(path, n) for path in dir_load}
        shard_load = [0] * n
        for path, count in dir_load.items():
            shard_load[owner[path]] += count
        mean = sum(shard_load) / n
        limit = self.max_moves if self.max_moves is not None \
            else len(dir_load)
        moves = []
        for path in sorted(dir_load, key=lambda p: (-dir_load[p], p)):
            if len(moves) >= limit:
                break
            src = owner[path]
            if shard_load[src] <= self.threshold * mean:
                continue
            dst = min(range(n), key=lambda s: (shard_load[s], s))
            if dst == src:
                continue
            if shard_load[dst] + dir_load[path] >= shard_load[src]:
                continue  # moving this one would just relocate the hotspot
            moves.append((path, src, dst))
            shard_load[src] -= dir_load[path]
            shard_load[dst] += dir_load[path]
            owner[path] = dst
        return moves

    def rebalance(self):
        """Coroutine: plan and execute the migrations; returns what ran.

        Each move runs the owner shard's crash-safe
        :meth:`ShardRebalancePart.rebalance_dir`.  The sampled counters
        are only advisory — a planned directory may have been removed
        (or re-homed) since the load was observed, even by an op that
        *failed* against it (the router counts the attempt); such moves
        are skipped.  Counters *decay* afterwards (exponential halving,
        not a reset): the next round still reacts mostly to
        post-migration load, but a hotspot whose burst straddles a round
        boundary keeps enough weight to be seen — a full reset made the
        planner blind to any load pattern shorter than one whole round.
        """
        moves = self.plan()
        if obs.METRICS is not None:
            self._observe_loads()
        tracer = obs.TRACER
        executed = []
        for path, src, dst in moves:
            span = None
            if tracer is not None:
                span = tracer.start(
                    "rebalance_move", path, self.shards[src].sim.now,
                    shard=src, target=dst)
            try:
                yield from self.shards[src].rebalance_dir(
                    path, dst, self.shards[src].sim.now)
            except FsError as exc:
                if span is not None:
                    tracer.finish(span, self.shards[src].sim.now,
                                  outcome=exc.code)
                continue  # vanished or re-homed since sampling
            except BaseException as exc:
                if span is not None:
                    tracer.finish(span, self.shards[src].sim.now,
                                  outcome=type(exc).__name__)
                raise
            if span is not None:
                tracer.finish(span, self.shards[src].sim.now)
            if obs.METRICS is not None:
                obs.METRICS.incr("rebalance_moves", src)
            executed.append((path, src, dst))
        for router in self.routers:
            router.decay_loads()
        return executed

    def _observe_loads(self):
        """Record each shard's dir-attributed load at planning time."""
        n = len(self.shards)
        dir_load = self.sampled_loads()
        sharding = self.shards[0].sharding
        shard_load = [0] * n
        for path, count in dir_load.items():
            shard_load[sharding.shard_of_dir(path, n)] += count
        for shard, load in enumerate(shard_load):
            obs.METRICS.observe("rebalancer_load", shard, load)
