"""Online load-aware re-partitioning of the sharded namespace.

Both partition functions are static — hash-by-parent spreads directories
uniformly but cannot react when several hot directories collide on one
shard, and static subtrees concentrate whole projects by design.  This
module closes the ROADMAP "dynamic re-partitioning" item, HopsFS-style:
hot directories are *re-homed* under load, with ownership recorded in an
override map the partition function consults before its static rule
(:meth:`repro.core.shard.routing.ShardingPolicy.shard_of_dir`) — and,
GIGA+-style, a directory too hot for *any* single shard is *split*: its
entries are hash-partitioned across shards by name (a ``partitions`` row
riding the same durability machinery), so one giant directory's
create/stat load scales with the tier instead of pinning one shard at
its ceiling.

**Protocol** (:meth:`ShardRebalancePart.rebalance_dir` /
:meth:`split_dir`, run on the directory's owner): one transaction
journals the coordinator intent; the population then moves with the
crash-safe copy → import → purge triple that subtree migration uses
(:mod:`repro.core.shard.coordination`) — but the routing flip is *last*,
not first, and it is **verified**: the flip transaction re-scans the
local directory and commits the durable routing row (plus the shared
in-memory map, inside the same atomic body) only when every entry
assigned away has already been imported at its destination; otherwise it
returns the stragglers for another copy→import round
(:meth:`_verified_flip`).  Paired with the ownership re-check every
mutating parent walk performs inside its own transaction
(:meth:`repro.core.shard.routing.ShardRoutingPart._txn_resolve_parent`),
this closes the migration visibility window: a reader routed by the old
map finds the entry still on the source (purge runs only after the
flip), a reader routed by the new map finds it imported, and a write
that races the flip is forwarded to the new owner instead of stranding a
row routing no longer reaches.  Every step is idempotent, so recovery
rolls a half-done migration *forward* by redoing the intent
(:meth:`redo_rebalance` / :meth:`redo_split`); a crash before the intent
committed leaves no durable trace and routing is unchanged.

**Durability**: every shard persists the override map in its
``overrides`` table and the partition map in ``partitions``; the shared
in-memory maps on the
:class:`~repro.core.shard.routing.ShardingPolicy` (what routers and
resolution hooks actually consult, at zero simulated cost — the
partition function has always been free to evaluate) are rebuilt from
the durable rows on recovery (:meth:`restore_overrides` /
:meth:`restore_partitions`, newest ``seq`` wins), so a shard restored
from an older journal prefix converges with its peers.  A *merge* keeps
a one-element ``partitions`` row rather than deleting it: a dropped row
could resurrect from a stale recovering peer through the restore union,
while a newer one-element row wins everywhere.

**Known simplifications**: re-splitting an already-split directory (and
merging one) stages from *multiple* source shards, and only the
coordinator's own partition is covered by the flip transaction's
verification — an entry created on another source during staging is
invisible between the flip and the post-flip catch-up round (bounded:
one copy→import round later it is servable; never lost).  A ``setattr``
that lands on the source between copy and purge is lost with the purged
copy (leaf attribute walks carry no ownership re-check).  Both windows
exist only for entries mutated *during* a migration; anything that
existed when the migration began is continuously visible.  The former
"override outlives its directory" stickiness is closed: ``rmdir``
drops override and partition rows tier-wide with the directory (see
:meth:`~repro.core.shard.replication.ShardReplicationPart.mirror_rmdir`)
and :meth:`forget_override` retires an override for a live directory.

**Policy** (:class:`Rebalancer`): the client-side routers already
compute the (directory → shard) decision for every op and keep
per-directory load counters
(:class:`~repro.core.shard.routing.ShardRouter`); the rebalancer
aggregates them, finds shards above ``threshold ×`` the mean load, and
greedily re-homes their hottest directories to the least-loaded shard.
A directory whose own load exceeds ``split_threshold ×`` the per-shard
mean is split across the tier; a split directory cooling below
``merge_threshold ×`` is merged back (the gap between the two
thresholds is the hysteresis band that prevents flapping).
:meth:`Rebalancer.run_periodic` drives rounds from a simulated timer, so
the tier re-partitions continuously without an administrative call.
"""

from repro import obs
from repro.core.shard.routing import EpochFenced, entry_slot
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, normalize


class ShardRebalancePart:
    """Mixin: re-homing/split protocols and routing-map durability RPCs."""

    def rebalance_dir(self, dir_path, dst, now):
        """Coroutine/RPC: re-home ``dir_path``'s file population to ``dst``.

        Must run on the directory's *current* owner (the shard that holds
        its file entries).  Journals the intent, stages the population at
        ``dst``, then commits the override row in the verified flip
        transaction and purges the source copies.
        """
        yield from self._dispatch()
        epoch = self.epoch
        dir_path = normalize(dir_path)
        if not 0 <= dst < self.n_shards:
            raise FsError.einval(f"no such shard: {dst}")
        if dir_path in self.sharding.partitions:
            raise FsError.einval(
                f"{dir_path} is split: re-split or merge it instead")
        if self._dir_owner(dir_path) != self.shard_id:
            raise FsError.einval(
                f"shard {self.shard_id} does not own {dir_path}")
        if dst == self.shard_id:
            return False
        tids = []

        def body(txn):
            row = self._txn_resolve(txn, dir_path)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(dir_path)
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord", "op": "rebalance",
                "dir": dir_path, "vino": row["vino"], "dst": dst,
                "now": now,
            }))
            return row["vino"]

        # The walk stays on the local skeleton replica: the owner holds
        # everything it needs, and a forward here would misroute the
        # intent.  A crash before the intent commits leaves no trace —
        # no entry has moved and routing is unchanged.
        try:
            vino = yield from self.dbsvc.execute(self._local_body(body))
        except BaseException:
            self._done_tids(tids)
            raise
        try:
            yield from self._finish_rebalance(
                dir_path, vino, dst, now, self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # the intent is durable; recovery redoes the rest
        finally:
            self._done_tids(tids)
        return True

    def _finish_rebalance(self, dir_path, vino, dst, seq, stamp):
        """Coroutine: the idempotent tail of a re-homing (shared with redo).

        Stage → verified flip (override row + in-memory map, atomic with
        the proof that ``dst`` holds every entry) → broadcast → purge.
        The flip obeys the same newest-``seq``-wins discipline as
        :meth:`mirror_override`, so a redo replaying late cannot clobber
        a later re-homing.
        """

        def flip(txn):
            row = txn.read("overrides", dir_path)
            if row is not None and row["seq"] > seq:
                return
            txn.write("overrides",
                      {"path": dir_path, "shard": dst, "seq": seq})
            self.sharding.overrides[dir_path] = dst

        keys, vinos = yield from self._verified_flip(
            vino, lambda name: dst, flip, stamp)
        yield from self._broadcast(
            "mirror_override", dir_path, dst, seq, stamp=stamp)
        if keys:
            yield from self._call_shard(
                self.shard_id, "purge_dir_children", vino, keys, vinos,
                stamp)
        return True

    def _verified_flip(self, vino, dest_of, flip, stamp):
        """Coroutine: move assigned-away entries, then atomically flip.

        ``dest_of(name)`` is the post-flip owner of entry ``name``; the
        loop copies every local entry assigned away to its destination
        (idempotent imports), and the flip transaction re-scans: finding
        stragglers (entries created since the last round), it returns
        them for another import round; finding none, it runs ``flip(txn)``
        — the durable routing row *and* the shared in-memory map — inside
        the same atomic body.  Transaction bodies on one shard serialize,
        and every mutating parent walk re-checks ownership inside its own
        body, so when the flip commits the destinations provably hold
        everything and any later write here is forwarded: no entry is
        ever stranded, and no reader ever sees a transient ENOENT.
        Returns the ``(keys, vinos)`` this shard shipped, for the
        post-flip purge.
        """
        all_keys, all_vinos = [], []
        sent = set()

        def body(txn):
            groups = {}
            for dentry, inode in self._txn_collect_children(txn, vino):
                key = tuple(dentry["key"])
                dst = dest_of(dentry["name"])
                if dst == self.shard_id or key in sent:
                    continue
                dentries, inodes = groups.setdefault(dst, ([], []))
                dentries.append(dentry)
                if inode is not None:
                    inodes.append(inode)
            if groups:
                return groups
            flip(txn)
            return None

        while True:
            groups = yield from self.dbsvc.execute(self._local_body(body))
            if groups is None:
                return all_keys, all_vinos
            for dst in sorted(groups):
                dentries, inodes = groups[dst]
                yield from self._call_shard(
                    dst, "import_dir_children", vino, dentries, inodes,
                    stamp)
                for dentry in dentries:
                    sent.add(tuple(dentry["key"]))
                    all_keys.append(dentry["key"])
                all_vinos.extend(row["vino"] for row in inodes)

    def redo_rebalance(self, rec):
        """Coroutine: roll a surviving ``rebalance`` intent forward.

        Every step of the finish is idempotent (imports skip present
        keys, the flip is newest-wins, purge deletes only what is still
        here), so re-running it under the recovering coordinator's fresh
        epoch converges from any crash point.
        """
        yield from self._finish_rebalance(
            rec["dir"], rec["vino"], rec["dst"], rec["now"], self._stamp())
        yield from self.intent_forget(rec["id"])
        return True

    def mirror_override(self, dir_path, shard, seq, stamp=None):
        """RPC (shard-to-shard): persist a re-homing override here.

        A row with a newer ``seq`` wins (two successive re-homings of one
        directory replay in either order during recovery).
        """
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            row = txn.read("overrides", dir_path)
            if row is not None and row["seq"] > seq:
                return False
            txn.write("overrides",
                      {"path": dir_path, "shard": shard, "seq": seq})
            return True

        result = yield from self.dbsvc.execute(body)
        if result:
            self.sharding.overrides[dir_path] = shard
        return result

    # -- splitting a hot directory (GIGA+-style) ----------------------------

    def split_dir(self, dir_path, targets, now, _hops=0):
        """Coroutine/RPC: hash-partition ``dir_path``'s entries across
        ``targets``.

        Runs on the directory's owner (self-forwarding).  Each entry's
        post-split home is ``targets[entry_slot(name, len(targets))]``;
        a one-element target list *merges* a split directory back to a
        single shard (the row is kept, never dropped — see the module
        notes on resurrection).  The intent records the pre-flip
        ``sources`` (the shards that may hold entries now): a redo after
        the flip would otherwise consult the new map and miss them.
        """
        self._check_hops(_hops, dir_path)
        yield from self._dispatch()
        epoch = self.epoch
        norm = normalize(dir_path)
        targets = [int(t) for t in targets]
        if not targets or any(
                not 0 <= t < self.n_shards for t in targets):
            raise FsError.einval(f"bad partition targets: {targets}")
        owner = self._dir_owner(norm)
        if owner != self.shard_id:
            result = yield from self._peer(
                owner, "split_dir", norm, targets, now, _hops + 1)
            return result
        if tuple(targets) == self.sharding.partitions.get(norm):
            return False
        sources = self.sharding.entry_shards(norm, self.n_shards)
        tids = []

        def body(txn):
            row = self._txn_resolve(txn, norm)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(norm)
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord", "op": "split",
                "dir": norm, "vino": row["vino"], "shards": targets,
                "sources": list(sources), "seq": now,
            }))
            return row["vino"]

        try:
            vino = yield from self.dbsvc.execute(self._local_body(body))
        except BaseException:
            self._done_tids(tids)
            raise
        try:
            yield from self._finish_split(
                norm, vino, targets, list(sources), now,
                self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # the split intent is durable; recovery rolls it forward
        finally:
            self._done_tids(tids)
        return True

    def merge_dir(self, dir_path, now, _hops=0):
        """Coroutine/RPC: collapse a split directory back to its owner.

        A split to a single target: every entry re-routes to the
        directory's whole-directory owner, and the surviving one-element
        ``partitions`` row is routing-equivalent to no row at all.
        """
        norm = normalize(dir_path)
        if norm not in self.sharding.partitions:
            return False
        owner = self.sharding.shard_of_dir(norm, self.n_shards)
        result = yield from self.split_dir(norm, [owner], now, _hops)
        return result

    def _finish_split(self, norm, vino, targets, sources, seq, stamp):
        """Coroutine: the idempotent tail of a split (shared with redo).

        Stage every source's assigned-away entries → verified flip at
        the coordinator (partitions row + in-memory map, atomic with the
        proof that *this* shard's stragglers are shipped) → broadcast →
        catch-up-and-purge round per remote source → purge local copies.
        For the common single-source split the flip's verification is
        complete and the visibility window is exactly zero; with remote
        sources the post-flip catch-up bounds it to entries created
        there mid-staging (see the module notes).
        """
        fanout = tuple(targets)

        def dest_of(name):
            return fanout[entry_slot(name, len(fanout))] % self.n_shards

        for src in sources:
            if src != self.shard_id:
                yield from self._stage_partition(src, vino, dest_of, stamp)

        def flip(txn):
            row = txn.read("partitions", norm)
            if row is not None and row["seq"] > seq:
                return
            txn.write("partitions",
                      {"path": norm, "shards": list(targets), "seq": seq})
            self.sharding.partitions[norm] = fanout

        keys, vinos = yield from self._verified_flip(
            vino, dest_of, flip, stamp)
        yield from self._broadcast(
            "mirror_partitions", norm, list(targets), seq, stamp=stamp)
        for src in sources:
            if src != self.shard_id:
                yield from self._stage_partition(
                    src, vino, dest_of, stamp, purge=True)
        if keys:
            yield from self._call_shard(
                self.shard_id, "purge_dir_children", vino, keys, vinos,
                stamp)
        return True

    def _stage_partition(self, src, vino, dest_of, stamp, purge=False):
        """Coroutine: ship ``src``'s assigned-away entries of ``vino``.

        One copy→import round from a remote source, grouped by each
        entry's post-split destination; with ``purge`` the shipped
        originals are then dropped at ``src`` (the post-flip catch-up
        round — by then routing no longer reaches them there).
        """
        dentries, inodes = yield from self._call_shard(
            src, "copy_dir_children", vino, stamp)
        by_vino = {row["vino"]: row for row in inodes}
        groups = {}
        keys, moved_vinos = [], []
        for dentry in dentries:
            dst = dest_of(dentry["name"])
            if dst == src:
                continue
            group_dentries, group_inodes = groups.setdefault(dst, ([], []))
            group_dentries.append(dentry)
            row = by_vino.get(dentry["vino"])
            if row is not None:
                group_inodes.append(row)
                moved_vinos.append(row["vino"])
            keys.append(dentry["key"])
        for dst in sorted(groups):
            group_dentries, group_inodes = groups[dst]
            yield from self._call_shard(
                dst, "import_dir_children", vino, group_dentries,
                group_inodes, stamp)
        if purge and keys:
            yield from self._call_shard(
                src, "purge_dir_children", vino, keys, moved_vinos, stamp)
        return True

    def redo_split(self, rec):
        """Coroutine: roll a surviving ``split`` intent forward.

        Re-stages from the intent's recorded *pre-flip* sources (the
        live map may already show the new fanout), re-commits the
        newest-wins flip, and re-purges — all idempotent.
        """
        yield from self._finish_split(
            rec["dir"], rec["vino"], rec["shards"], rec["sources"],
            rec["seq"], self._stamp())
        yield from self.intent_forget(rec["id"])
        return True

    def mirror_partitions(self, dir_path, shards, seq, stamp=None):
        """RPC (shard-to-shard): persist a partition row here
        (newest-``seq``-wins, like :meth:`mirror_override`)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            row = txn.read("partitions", dir_path)
            if row is not None and row["seq"] > seq:
                return False
            txn.write("partitions",
                      {"path": dir_path, "shards": list(shards),
                       "seq": seq})
            return True

        result = yield from self.dbsvc.execute(body)
        if result:
            self.sharding.partitions[dir_path] = tuple(shards)
        return result

    def _drop_partitions_body(self, norm, seq):
        """Txn body: delete the partition row unless a newer one won."""

        def body(txn):
            row = txn.read("partitions", norm)
            if row is None or row["seq"] > seq:
                return False
            txn.delete("partitions", norm)
            return True

        return body

    def _txn_rekey_partitions(self, txn, old, new):
        """Txn fragment: move partition rows under ``old`` to ``new``.

        Entry placement hashes only names, so renaming a split directory
        (or an ancestor of one) re-keys its row and moves nothing; the
        caller applies the returned ``(old_path, new_path)`` pairs to the
        in-memory map in the same atomic body (and each replica's replay
        re-keys its own durable rows).
        """
        moved = []
        for row in list(txn.match("partitions")):
            path = row["path"]
            if path == old or path.startswith(old + "/"):
                dest = new + path[len(old):]
                txn.delete("partitions", path)
                row = dict(row)
                row["path"] = dest
                txn.write("partitions", row)
                moved.append((path, dest))
        return moved

    def _rekey_partitions_mem(self, moved):
        """Apply re-keyed partition paths to the shared in-memory map."""
        for old_path, new_path in moved:
            fanout = self.sharding.partitions.pop(old_path, None)
            if fanout is not None:
                self.sharding.partitions[new_path] = fanout

    # -- forgetting an override (admin entry point) -------------------------

    def forget_override(self, dir_path, now, _hops=0):
        """Coroutine/RPC: durably drop ``dir_path``'s re-homing override.

        The administrative complement of :meth:`rebalance_dir`, closing
        the "override outlives its directory" stickiness for directories
        that still exist: under a durable ``forget_override`` intent the
        population is staged at the static owner, the verified flip
        drops the local row (routing reverts atomically with the proof
        the static owner holds everything), and the drop is broadcast
        tier-wide.  Runs on the directory's current owner
        (self-forwarding).  rmdir needs none of this — its broadcast
        drops the row on every shard (see
        :meth:`~repro.core.shard.replication.ShardReplicationPart.
        mirror_rmdir`) and an empty directory has no population to move.
        """
        self._check_hops(_hops, dir_path)
        yield from self._dispatch()
        epoch = self.epoch
        norm = normalize(dir_path)
        if norm not in self.sharding.overrides:
            return False
        owner = self._dir_owner(norm)
        if owner != self.shard_id:
            result = yield from self._peer(
                owner, "forget_override", norm, now, _hops + 1)
            return result
        static = self.sharding.static_shard_of_dir(norm, self.n_shards)
        tids = []

        def body(txn):
            row = self._txn_resolve(txn, norm)
            if row["kind"] != DIRECTORY:
                raise FsError.enotdir(norm)
            # The intent commits before any state moves: every later step
            # (staging, the flip, row drops, broadcast) is idempotent, so
            # a crash anywhere is rolled *forward* by redo_forget_override.
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord",
                "op": "forget_override", "dir": norm,
                "vino": row["vino"], "static": static, "seq": now,
            }))
            return row["vino"]

        try:
            vino = yield from self.dbsvc.execute(self._local_body(body))
        except BaseException:
            self._done_tids(tids)
            raise
        try:
            yield from self._finish_forget_override(
                norm, vino, static, now, self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # the forget intent is durable; recovery rolls it forward
        finally:
            self._done_tids(tids)
        return True

    def _finish_forget_override(self, norm, vino, static, seq, stamp):
        """Coroutine: the idempotent tail of a forget (shared with redo).

        The same stage → verified-flip → broadcast → purge shape as
        :meth:`_finish_rebalance`, with the flip *dropping* the local
        override row: routing reverts to the static rule only in the
        transaction that proved the static owner holds every entry, so
        concurrent readers see the population on whichever shard their
        routing snapshot names, and a write racing the flip is forwarded
        by the ownership re-check.  The drop carries the forget's
        ``seq`` and obeys the same newest-wins discipline as
        ``mirror_override``: a redo replaying this forget late must not
        destroy an override a *later* re-homing installed (whose
        population has already moved — dropping its row would strand
        every one of those inodes behind static-rule routing).
        """

        def flip(txn):
            if self._drop_override_body(norm, seq)(txn):
                self.sharding.overrides.pop(norm, None)

        if static != self.shard_id:
            keys, vinos = yield from self._verified_flip(
                vino, lambda name: static, flip, stamp)
        else:
            keys = vinos = ()
            yield from self.dbsvc.execute(self._local_body(flip))
        yield from self._broadcast(
            "mirror_forget_override", norm, seq, stamp=stamp)
        if keys:
            yield from self._call_shard(
                self.shard_id, "purge_dir_children", vino, keys, vinos,
                stamp)
        return True

    def _drop_override_body(self, norm, seq):
        """Txn body: delete the override row unless a newer one won."""

        def body(txn):
            row = txn.read("overrides", norm)
            if row is None or row["seq"] > seq:
                return False
            txn.delete("overrides", norm)
            return True

        return body

    def redo_forget_override(self, rec):
        """Coroutine: roll a surviving ``forget_override`` intent forward."""
        yield from self._finish_forget_override(
            rec["dir"], rec["vino"], rec["static"], rec["seq"],
            self._stamp())
        yield from self.intent_forget(rec["id"])
        return True

    def mirror_forget_override(self, dir_path, seq, stamp=None):
        """RPC (shard-to-shard): drop a re-homing override row here
        (newest-seq-wins, like :meth:`mirror_override`)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            return self._drop_override_body(dir_path, seq)(txn)

        result = yield from self.dbsvc.execute(body)
        if result:
            self.sharding.overrides.pop(dir_path, None)
        return result

    # -- recovery ----------------------------------------------------------

    def override_rows(self):
        """RPC (shard-to-shard): this shard's durable override rows."""
        yield from self._dispatch()

        def body(txn):
            return [dict(row) for row in txn.match("overrides")]

        rows = yield from self.dbsvc.execute(body)
        return rows

    def sync_overrides(self, rows):
        """RPC (shard-to-shard): make this table exactly the given rows."""
        yield from self._dispatch()

        def body(txn):
            want = {row["path"]: row for row in rows}
            for row in txn.match("overrides"):
                if row["path"] not in want:
                    txn.delete("overrides", row["path"])
            for path, row in want.items():
                cur = txn.read("overrides", path)
                if cur is None or dict(cur) != row:
                    txn.write("overrides", dict(row))
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def restore_overrides(self):
        """Coroutine: rebuild the tier's override map from durable rows.

        Union over every shard's table, newest ``seq`` (shard id breaks
        ties) winning per path; the merged set is pushed back to every
        shard and becomes the shared in-memory map.  Runs after intent
        completion — a surviving rebalance intent has just re-installed
        its override everywhere — and before the skeleton resync, whose
        authority function routes through the overrides.  Under the
        default synchronous journal an override row is durable before the
        in-memory flip, so the union is exact; with ``sync_updates=False``
        an override every shard lost reverts to the static rule (like any
        other lost update under the async policy).
        """
        best = {}
        for shard in range(self.n_shards):
            rows = yield from self._call_shard(shard, "override_rows")
            for row in rows:
                cur = best.get(row["path"])
                if cur is None or \
                        (row["seq"], row["shard"]) > (cur["seq"], cur["shard"]):
                    best[row["path"]] = dict(row)
        for shard in range(self.n_shards):
            yield from self._call_shard(
                shard, "sync_overrides", list(best.values()))
        self.sharding.overrides.clear()
        self.sharding.overrides.update(
            {path: row["shard"] for path, row in best.items()})
        return len(best)

    def partition_rows(self):
        """RPC (shard-to-shard): this shard's durable partition rows."""
        yield from self._dispatch()

        def body(txn):
            return [dict(row) for row in txn.match("partitions")]

        rows = yield from self.dbsvc.execute(body)
        return rows

    def sync_partitions(self, rows):
        """RPC (shard-to-shard): make this table exactly the given rows."""
        yield from self._dispatch()

        def body(txn):
            want = {row["path"]: row for row in rows}
            for row in txn.match("partitions"):
                if row["path"] not in want:
                    txn.delete("partitions", row["path"])
            for path, row in want.items():
                cur = txn.read("partitions", path)
                if cur is None or dict(cur) != row:
                    txn.write("partitions", dict(row))
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def restore_partitions(self):
        """Coroutine: rebuild the tier's partition map from durable rows.

        The exact analogue of :meth:`restore_overrides` (union, newest
        ``(seq, shard)`` wins per path, pushed back tier-wide, in-memory
        map rebuilt); runs right after it in recovery, and for the same
        reason before the skeleton resync — the resync's authority
        function routes entry lookups through the partition map.  A
        merged directory's surviving one-element row restores as
        routing-equivalent to no split, which is why merges never delete
        the row (a deleted row could resurrect from a stale peer here).
        """
        best = {}
        for shard in range(self.n_shards):
            rows = yield from self._call_shard(shard, "partition_rows")
            for row in rows:
                cur = best.get(row["path"])
                if cur is None or \
                        (row["seq"], row["shards"]) > \
                        (cur["seq"], cur["shards"]):
                    best[row["path"]] = dict(row)
        for shard in range(self.n_shards):
            yield from self._call_shard(
                shard, "sync_partitions", list(best.values()))
        self.sharding.partitions.clear()
        self.sharding.partitions.update(
            {path: tuple(row["shards"]) for path, row in best.items()})
        return len(best)


# ---------------------------------------------------------------------------
# The load-aware re-balancer
# ---------------------------------------------------------------------------

class Rebalancer:
    """Samples router load counters; re-homes and splits hot directories.

    ``routers`` are the stack's :class:`ShardRouter` instances (one per
    client node); ``shards`` the tier's services.  ``threshold`` is the
    overload factor: a shard is rebalanced only while its dir-attributed
    load exceeds ``threshold ×`` the tier mean.  The planner is greedy and
    deterministic: hottest directory first, moved to the least-loaded
    shard, never moving more load onto the destination than would just
    swap the hotspot.

    ``split_threshold`` (off by default, keeping pre-split stacks
    byte-identical) arms directory splitting: a directory whose own
    sampled load exceeds ``split_threshold ×`` the per-shard mean is too
    hot for *any* single placement — re-homing merely moves the ceiling —
    so its entries are hash-partitioned across the whole tier.  A split
    directory cooling below ``merge_threshold ×`` the per-shard mean is
    merged back; keeping ``merge_threshold`` well under
    ``split_threshold`` leaves a hysteresis band so a directory
    oscillating around one threshold never flaps.
    """

    def __init__(self, routers, shards, threshold=1.25, max_moves=None,
                 split_threshold=None, merge_threshold=0.25):
        self.routers = list(routers)
        self.shards = list(shards)
        self.threshold = threshold
        self.max_moves = max_moves
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold

    def sampled_loads(self):
        """Aggregate per-directory op counts across every router."""
        dir_load = {}
        for router in self.routers:
            for path, count in router.dir_loads.items():
                dir_load[path] = dir_load.get(path, 0) + count
        return dir_load

    def plan(self):
        """``[(dir_path, src, dst)]`` migrations that would level the load."""
        n = len(self.shards)
        if n <= 1:
            return []
        dir_load = self.sampled_loads()
        if not dir_load:
            return []
        sharding = self.shards[0].sharding
        owner = {path: sharding.shard_of_dir(path, n) for path in dir_load}
        shard_load = [0] * n
        for path, count in dir_load.items():
            if path in sharding.partitions:
                # A split directory's load is already spread over its
                # partitions; attribute it evenly and never plan a move
                # for it (its entries have no single source to move).
                parts = sharding.entry_shards(path, n)
                for shard in parts:
                    shard_load[shard] += count // len(parts)
                continue
            shard_load[owner[path]] += count
        mean = sum(shard_load) / n
        limit = self.max_moves if self.max_moves is not None \
            else len(dir_load)
        moves = []
        for path in sorted(dir_load, key=lambda p: (-dir_load[p], p)):
            if len(moves) >= limit:
                break
            if path in sharding.partitions:
                continue
            src = owner[path]
            if shard_load[src] <= self.threshold * mean:
                continue
            dst = min(range(n), key=lambda s: (shard_load[s], s))
            if dst == src:
                continue
            if shard_load[dst] + dir_load[path] >= shard_load[src]:
                continue  # moving this one would just relocate the hotspot
            moves.append((path, src, dst))
            shard_load[src] -= dir_load[path]
            shard_load[dst] += dir_load[path]
            owner[path] = dst
        return moves

    def plan_splits(self):
        """``[(dir_path, targets)]`` splits and merges for one-dir hotspots.

        A single directory hotter than ``split_threshold ×`` the
        per-shard mean load is split across every shard; a split
        directory cooled below ``merge_threshold ×`` (including one whose
        counters decayed away entirely) merges back to its
        whole-directory owner.  Disabled while ``split_threshold`` is
        None.
        """
        n = len(self.shards)
        if n <= 1 or self.split_threshold is None:
            return []
        dir_load = self.sampled_loads()
        total = sum(dir_load.values())
        sharding = self.shards[0].sharding
        if not total:
            # Nothing is hot; any still-split directory has fully cooled
            # and merges back to its whole-directory owner.
            return [(path, [sharding.shard_of_dir(path, n)])
                    for path in sorted(sharding.partitions)
                    if len(set(sharding.partitions[path])) > 1]
        per_shard = total / n
        plans = []
        candidates = set(dir_load) | set(sharding.partitions)
        for path in sorted(candidates,
                           key=lambda p: (-dir_load.get(p, 0), p)):
            load = dir_load.get(path, 0)
            fanout = sharding.partitions.get(path)
            split = fanout is not None and len(set(fanout)) > 1
            if not split and load > self.split_threshold * per_shard:
                plans.append((path, list(range(n))))
            elif split and load < self.merge_threshold * per_shard:
                plans.append(
                    (path, [sharding.shard_of_dir(path, n)]))
        return plans

    def rebalance(self):
        """Coroutine: plan and execute splits + migrations; returns what ran.

        Splits run first (a directory hot enough to split would dominate
        any re-homing plan anyway), each on its owner shard's crash-safe
        :meth:`ShardRebalancePart.split_dir`; then each re-homing move
        runs the owner's :meth:`ShardRebalancePart.rebalance_dir`.  The
        sampled counters are only advisory — a planned directory may
        have been removed (or re-homed) since the load was observed,
        even by an op that *failed* against it (the router counts the
        attempt); such plans are skipped.  Counters *decay* afterwards
        (exponential halving, not a reset): the next round still reacts
        mostly to post-migration load, but a hotspot whose burst
        straddles a round boundary keeps enough weight to be seen — a
        full reset made the planner blind to any load pattern shorter
        than one whole round.
        """
        if obs.METRICS is not None:
            self._observe_loads()
        tracer = obs.TRACER
        executed = []
        for path, targets in self.plan_splits():
            sharding = self.shards[0].sharding
            owner = sharding.shard_of_dir(path, len(self.shards))
            shard = self.shards[owner]
            span = None
            if tracer is not None:
                span = tracer.start(
                    "split_dir", path, shard.sim.now, shard=owner,
                    target=len(targets))
            try:
                if len(targets) == 1:
                    yield from shard.merge_dir(path, shard.sim.now)
                else:
                    yield from shard.split_dir(path, targets, shard.sim.now)
            except FsError as exc:
                if span is not None:
                    tracer.finish(span, shard.sim.now, outcome=exc.code)
                continue  # vanished (or re-planned) since sampling
            except BaseException as exc:
                if span is not None:
                    tracer.finish(span, shard.sim.now,
                                  outcome=type(exc).__name__)
                raise
            if span is not None:
                tracer.finish(span, shard.sim.now)
            if obs.METRICS is not None:
                obs.METRICS.incr("split_moves", owner)
            executed.append((path, owner, tuple(targets)))
        moves = self.plan()
        for path, src, dst in moves:
            span = None
            if tracer is not None:
                span = tracer.start(
                    "rebalance_move", path, self.shards[src].sim.now,
                    shard=src, target=dst)
            try:
                yield from self.shards[src].rebalance_dir(
                    path, dst, self.shards[src].sim.now)
            except FsError as exc:
                if span is not None:
                    tracer.finish(span, self.shards[src].sim.now,
                                  outcome=exc.code)
                continue  # vanished or re-homed since sampling
            except BaseException as exc:
                if span is not None:
                    tracer.finish(span, self.shards[src].sim.now,
                                  outcome=type(exc).__name__)
                raise
            if span is not None:
                tracer.finish(span, self.shards[src].sim.now)
            if obs.METRICS is not None:
                obs.METRICS.incr("rebalance_moves", src)
            executed.append((path, src, dst))
        for router in self.routers:
            router.decay_loads()
        return executed

    def run_periodic(self, sim, interval_ms, rounds=None):
        """Coroutine: the continuous re-balancing loop.

        Schedule with ``sim.process(rebalancer.run_periodic(sim, t))``:
        every ``interval_ms`` of simulated time one :meth:`rebalance`
        round runs — sampling, splitting, re-homing, decaying — so the
        tier adapts to load without an administrative call.  ``rounds``
        bounds the loop for finite experiments; None runs until the
        simulation stops scheduling it.
        """
        done = 0
        while rounds is None or done < rounds:
            yield sim.timeout(interval_ms)
            yield from self.rebalance()
            done += 1

    def _observe_loads(self):
        """Record each shard's dir-attributed load at planning time."""
        n = len(self.shards)
        dir_load = self.sampled_loads()
        sharding = self.shards[0].sharding
        shard_load = [0] * n
        for path, count in dir_load.items():
            shard_load[sharding.shard_of_dir(path, n)] += count
        for shard, load in enumerate(shard_load):
            obs.METRICS.observe("rebalancer_load", shard, load)
