"""Coordination: intent/prepare/dedup records and cross-shard protocols.

The 2-phase prepare/commit layer of the sharded tier (formerly the
*coordination records*, *rename: local, replicated, and cross-shard*,
*link* and *vino-addressed mutation* sections of the old
``repro/core/sharding.py`` monolith):

- **Records** (table ``intents``): coordinator *intents* journaled
  atomically with the first local change, participant *prepare* records
  journaled atomically with install/bump, and *dedup* records guarding
  each remote link-count drop so redo applies it exactly once.
- **Cross-shard rename**: detach → ``rename_install`` (the commit point:
  its transaction carries the prepare record) → compensate on failure.
  Renames of replicated objects replay on every shard and re-home file
  children via the copy → import → purge migration triple — the same
  crash-safe primitive the online re-balancer reuses
  (:mod:`repro.core.shard.rebalance`).
- **Cross-shard link**: intent before any remote bump; the coordinator's
  dentry-insert transaction atomically deletes the intent (the commit
  point); ``link_abort`` rolls an optimistic bump back.

Recovery's completion pass (:mod:`repro.core.shard.recovery`) resolves
every surviving record — but only records whose coordinator is provably
dead.  Every record carries its coordinator's **recovery epoch**
(captured when the operation started), every coordinated peer RPC carries
the same ``(coordinator, epoch)`` stamp, and participants refuse stamps
older than the fence a recovery installed
(:class:`~repro.core.shard.routing.EpochFenced`).  The coordinator turns
a fence into a clean abort: compensations are record-guarded, so a
recovery that already resolved the intent makes them no-ops, and work
past the commit point is abandoned to the recovery's idempotent redo.
"""

from inspect import isgenerator

from repro import obs
from repro.core.shard.routing import (
    EpochFenced,
    MemberDown,
    ResolveForward,
    VinoForward,
)
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, normalize


class ShardCoordinationPart:
    """Mixin: coordination records + cross-shard rename/link protocols."""

    # -- coordination records (intent / prepare / dedup) -------------------

    def _new_tid(self):
        """A fresh intent id, unique per shard and across recoveries.

        The id is also registered as *live*: a coordinator process is now
        driving this transaction.  The caller must pair it with a
        ``finally: self._done_tids(...)`` so a finished (or killed)
        operation stops answering recovery's liveness probe.
        """
        tid = f"s{self.shard_id}.{next(self._intent_seq)}"
        self._live_tids.add(tid)
        return tid

    def _done_tids(self, *tids):
        """The coordinator process for these intents has ended (any way)."""
        for tid in tids:
            if isinstance(tid, (list, tuple, set)):
                self._live_tids.difference_update(tid)
            else:
                self._live_tids.discard(tid)

    def _coordinated(self, tids, body=None, run=None, tail=None, local=False,
                     swallow=(EpochFenced,), on_forward=None, on_vino=None,
                     on_fserror=None):
        """Coroutine: one coordinated mutation under a single tid lifecycle.

        The scaffold every intent-journaling operation used to hand-roll,
        in two shapes:

        - **txn mode** (``body``): run the intent-journaling transaction
          ``body``, then the post-commit side-effect ``tail``.  Any
          exception out of the transaction deregisters ``tids`` before it
          propagates: a forward restarts the operation through
          ``on_forward``/``on_vino`` (their return value becomes the
          result), a non-fence :class:`FsError` is handed to
          ``on_fserror`` (compensate and re-raise, or swallow and return
          a substitute), and everything else — including a fence, which
          must surface so the caller retries under the live epoch — is
          re-raised as-is.  ``tail`` is a coroutine taking a one-element
          result *box* ``[result]`` that it mutates as side effects land;
          an exception in ``swallow`` (default :class:`EpochFenced`:
          fenced past the commit point, the journaled intent hands the
          remaining side effects to recovery's redo) is absorbed and the
          box returns exactly what had landed by then.  Handlers may be
          plain functions or coroutines.
        - **protocol mode** (``run``): drive a multi-transaction protocol
          coroutine to completion with ``tids`` deregistered however it
          exits (cross-shard rename and link, whose fence handling lives
          with their commit points).

        The stage-intent helpers (:meth:`_stage_renamed_subtree`,
        :meth:`_abort_stage`) stay hand-rolled on purpose: their tid must
        outlive the helper that journaled it, which is exactly the
        lifecycle this wrapper exists to forbid.
        """
        if run is not None:
            try:
                result = yield from run
            finally:
                self._done_tids(tids)
            return result
        try:
            result = yield from self.dbsvc.execute(
                self._local_body(body) if local else body)
        except ResolveForward as fwd:
            self._done_tids(tids)
            if on_forward is None:
                raise
            result = on_forward(fwd)
            if isgenerator(result):
                result = yield from result
            return result
        except VinoForward as fwd:
            self._done_tids(tids)
            if on_vino is None:
                raise
            result = on_vino(fwd)
            if isgenerator(result):
                result = yield from result
            return result
        except EpochFenced:
            self._done_tids(tids)
            raise
        except FsError as exc:
            self._done_tids(tids)
            if on_fserror is None:
                raise
            result = on_fserror(exc)
            if isgenerator(result):
                result = yield from result
            return result
        except BaseException:
            self._done_tids(tids)
            raise
        box = [result]
        try:
            if tail is not None:
                yield from tail(box)
        except swallow:
            pass
        finally:
            self._done_tids(tids)
        return box[0]

    def _txn_intent(self, txn, epoch, rec):
        """Journal a coordinator intent stamped with the op's epoch.

        The self-fence check makes the whole transaction atomic with the
        epoch: an operation that captured its epoch before a recovery of
        this very shard (a "zombie" coordinator) aborts here, before any
        stale record or local change can commit.  The fenced tid is
        deregistered on the spot — the aborting transaction means no
        caller list ever learns the id, so the ``finally`` handlers at
        the call sites could not release it.
        """
        fence = self.fences.get(self.shard_id, 0)
        if epoch < fence:
            self._done_tids(rec["id"])
            if obs.METRICS is not None:
                obs.METRICS.incr("epoch_fenced", self.shard_id)
            raise EpochFenced(self.shard_id, epoch, fence)
        rec["epoch"] = epoch
        txn.insert("intents", rec)
        if obs.TRACER is not None:
            obs.TRACER.event("intent_journaled", self.sim.now,
                             tid=rec["id"], op=rec.get("op"))
        return rec["id"]

    @staticmethod
    def _stamp_epoch(stamp):
        """The coordinator epoch to record for a participant record."""
        return 0 if stamp is None else stamp[1]

    def tid_live(self, tid):
        """RPC (shard-to-shard): is a coordinator process still driving
        ``tid`` here?  Recovery asks before reclaiming a record it cannot
        prove dead by epoch: a live answer means a healthy coordinator
        will finish (or compensate) the operation itself."""
        yield from self._dispatch()
        return tid in self._live_tids

    @staticmethod
    def _part_id(tid):
        """The participant (prepare) record id derived from ``tid``."""
        return f"{tid}@p"

    @staticmethod
    def _dedup_id(tid, vino):
        """The dedup record id guarding one remote link-count drop."""
        return f"{tid}#d{vino}"

    def intent_forget(self, rid):
        """RPC (also used locally): durably drop one coordination record."""
        yield from self._dispatch()

        def body(txn):
            if txn.read("intents", rid) is None:
                return False
            txn.delete("intents", rid)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def open_intents(self):
        """RPC: every unresolved coordination record on this shard."""
        yield from self._dispatch()

        def body(txn):
            return [dict(row) for row in txn.match("intents")]

        rows = yield from self.dbsvc.execute(body)
        return rows

    def has_record(self, rid):
        """RPC (also used locally): does this coordination record still
        exist here?  Recovery's freshness checks — a gather snapshot goes
        stale the moment a live coordinator progresses, so every
        resolution decision re-reads the records it hinges on *after*
        the coordinator is known dead (a dead coordinator's records can
        no longer change; its in-flight RPC handlers died with it)."""
        yield from self._dispatch()

        def body(txn):
            return txn.read("intents", rid) is not None

        exists = yield from self.dbsvc.execute(body)
        return exists

    def _find_record(self, rid):
        """Coroutine: which shard (if any) currently holds ``rid``."""
        for shard in range(self.n_shards):
            if (yield from self._call_shard(shard, "has_record", rid)):
                return shard
        return None

    def _gather_intents(self):
        """Coroutine: ``(shard, record)`` for every open record tier-wide."""
        records = []
        for shard in range(self.n_shards):
            rows = yield from self._call_shard(shard, "open_intents")
            records.extend((shard, row) for row in rows)
        return records

    def _forget_dedups(self, tid, pending):
        """Coroutine: drop the dedup records a drained op left at homes."""
        for home, vino in pending:
            yield from self._peer(
                home, "intent_forget", self._dedup_id(tid, vino))
        return True

    def _drain_pending(self, pending, now, tid=None, stamp=None):
        """Coroutine: run remote inode adjustments a txn body queued.

        ``pending`` is the caller-owned list its transaction body filled
        (never instance state: bodies of concurrent operations must not
        see each other's queues).  Returns the remote ``(upath, last)``
        outcomes so a rename that replaced a stub name can report the
        underlying path to unlink.  With ``tid``, each drop is guarded by
        a dedup record at its home shard so a post-crash redo applies it
        exactly once.  ``stamp`` is the *originating coordinator's*
        ``(shard, epoch)`` — threaded through even when a participant
        drains on the coordinator's behalf, so the drop (and its dedup
        record) lives and dies with the operation that owns ``tid``.
        """
        outcomes = []
        for home, vino in pending:
            dedup = None if tid is None else self._dedup_id(tid, vino)
            outcomes.append(
                (yield from self._peer(home, "unlink_vino", vino, now,
                                       dedup, stamp)))
        return outcomes

    @staticmethod
    def _merge_replaced(result, outcomes):
        """Fold remote unlink outcomes into a rename's (upath, last)."""
        replaced_upath, replaced_last = result
        for outcome in outcomes:
            if outcome and outcome[0] is not None and outcome[1]:
                replaced_upath, replaced_last = outcome[0], outcome[1]
        return (replaced_upath, replaced_last)

    # -- base-service hooks -------------------------------------------------

    def _rename_replace_stub(self, txn, existing, pending):
        home = existing.get("home")
        if home is None or home == self.shard_id:
            return False
        pending.append((home, existing["vino"]))
        return True

    def _unlink_stub_home(self, dentry):
        home = dentry.get("home")
        if home is None or home == self.shard_id:
            return None
        return home

    # -- rename: local, replicated, and cross-shard ------------------------

    def rename(self, old, new, now, _hops=0):
        self._check_hops(_hops, old)
        yield from self._dispatch()
        epoch = self.epoch

        def peek(txn):
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                raise FsError.enoent(old)
            home = dentry.get("home")
            if home is not None and home != self.shard_id:
                return (None, dentry["vino"], home, 0)
            row = txn.read("inodes", dentry["vino"])
            if row is None:
                raise FsError.enoent(old)
            # The flip's seq floor: the replica's high-water retire seq,
            # or — when ``old`` resolved through a staged alias whose
            # retire has not landed here yet — that alias's seq, so a
            # chained rename orders strictly after the flip it rides on.
            rseq = max(row.get("rseq", 0), dentry.get("staged") or 0)
            return (row["kind"], row["vino"], None, rseq)

        try:
            kind, vino, home, rseq = yield from self.dbsvc.execute(peek)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename", fwd.path, new, now, _hops + 1)
            return result

        if normalize(old) == normalize(new):
            # POSIX: renaming a name onto itself (same dentry) succeeds
            # without doing anything.  The transaction body's same-vino
            # check would answer this too, but the replicated/cross-shard
            # branches run destination prechecks (peer ENOTEMPTY/ENOTDIR)
            # *before* any transaction — and the "occupied" destination
            # is the moving inode itself, so those must not fire.
            return (None, False)
        dst = self._owner_of(new)
        if kind in (DIRECTORY, SYMLINK):
            return (yield from self._rename_replicated(
                kind, vino, old, new, dst, now, _hops, epoch, rseq))
        if dst != self.shard_id or home is not None:
            # Cross-shard (or stub) file rename: the destination parent is
            # walked only *after* the detach removed the old name, so a
            # destination beneath the source itself would read as ENOENT.
            # The one-transaction local rename sees the still-attached
            # source on that walk and answers ENOTDIR — do the same here,
            # before any state moves.  (A symlink source never takes this
            # branch: walking through it follows its target.)
            norm_old, norm_new = normalize(old), normalize(new)
            if norm_new.startswith(norm_old + "/"):
                raise FsError.enotdir(new)
        if dst == self.shard_id and home is None:
            # Entirely this shard's business: the base transaction, plus
            # an intent when it leaves redoable remote work behind (a
            # replaced stub's link drop, a replaced symlink's replicas).
            pending, replaced, tids = [], [], []
            inner = self._rename_body(old, new, now, pending, replaced)

            def body(txn):
                result = inner(txn)
                if pending or SYMLINK in replaced:
                    tids.append(self._txn_intent(txn, epoch, {
                        "id": self._new_tid(), "role": "coord",
                        "op": "rename_post", "new": new, "now": now,
                        "pending": list(pending),
                        "replaced_symlink": SYMLINK in replaced,
                    }))
                return result

            def on_forward(fwd):
                if fwd.final:
                    # The retry below walks the same local skeleton, so
                    # it cannot answer what only the entries owner can;
                    # the probe raises the authoritative error.
                    yield from self._probe_dst_parent(fwd, _hops)
                retried = yield from self.rename(old, fwd.path, now, _hops + 1)
                return retried

            def tail(box):
                if not tids:
                    return
                tid = tids[0]
                drained = yield from self._drain_pending(
                    pending, now, tid, self._stamp(epoch))
                box[0] = self._merge_replaced(box[0], drained)
                if SYMLINK in replaced:
                    # The rename destroyed a replicated symlink at
                    # ``new``; its replicas on every other shard must
                    # die with it (as unlink does), or stale replicas
                    # keep resolving.
                    yield from self._broadcast(
                        "mirror_unlink", new, now,
                        stamp=self._stamp(epoch))
                yield from self.intent_forget(tid)
                yield from self._forget_dedups(tid, pending)

            return (yield from self._coordinated(
                tids, body=body, tail=tail, on_forward=on_forward))
        return (yield from self._rename_cross_shard(
            old, new, vino, home, dst, now, _hops, epoch))

    def _probe_dst_parent(self, fwd, _hops):
        """Coroutine: answer a *final* destination-parent forward in place.

        rename is pinned to its source's shard (the peek fixed the
        source here), so a final forward from the destination's parent
        walk cannot restart the whole operation on the forward's target
        the way self-contained ops are re-dispatched — the source's
        dentry would not be visible there.  Ask that shard to run the
        walk instead: its ENOENT/ENOTDIR is the operation's answer, and
        a clean return means the component landed meanwhile (a mirror
        broadcast), so the caller's local retry can make progress.
        """
        shard, path = fwd.shard, fwd.path
        while True:
            self._check_hops(_hops, path)
            outcome = yield from self._call_shard(
                shard, "probe_parent", path)
            if outcome is None:
                return
            _tag, shard, path = outcome
            _hops += 1

    # -- the skeleton flip (replicated rename) ------------------------------

    def _txn_stage_alias(self, txn, old, new, seq, vino):
        """Txn fragment: plant the staged alias for ``new`` (flip phase 1).

        The alias is a plain dentry carrying ``staged`` (the flip's seq)
        and ``prev`` (the old path it shadows): resolution falls through
        it like any dentry, so the new name answers during the broadcast
        window, but nothing else changes — no inode move, no nlink, no
        parent-time bumps.  Skipped when the destination name is already
        taken (the commit's rename body pronounces on replacements).
        """
        parent, name = self._txn_resolve_parent(txn, new)
        if txn.read("dentries", (parent["vino"], name)) is not None:
            return False
        txn.insert("dentries", {
            "key": (parent["vino"], name), "parent": parent["vino"],
            "name": name, "vino": vino, "staged": seq, "prev": old,
        })
        self._invalidate_resolve(parent["vino"])
        return True

    def _txn_gc_alias(self, txn, new, seq, vino):
        """Txn fragment: drop a staged alias for ``new`` (unstage, or a
        stale retire's garbage collection), leaving anything real — or
        staged by a newer flip — alone."""
        try:
            parent, name = self._txn_resolve_parent(txn, new)
        except FsError:
            return False
        dentry = txn.read("dentries", (parent["vino"], name))
        if (dentry is None or dentry.get("staged") is None
                or dentry["vino"] != vino or dentry["staged"] > seq):
            return False
        txn.delete("dentries", (parent["vino"], name))
        self._invalidate_resolve(parent["vino"])
        return True

    def _txn_collapse_chain(self, txn, old, vino):
        """Txn fragment: make ``old`` a real dentry before a fresh retire.

        A chained rename (a→b→c) can deliver this flip's retire while an
        *earlier* flip's retire is still in flight: ``old`` then holds a
        staged alias rather than the real dentry.  Follow the aliases'
        ``prev`` links back to the canonical name, drop the intermediate
        aliases, and move the real dentry (with the cross-parent
        directory-nlink transfer the skipped retires would have done)
        under ``old``'s key, so the rename body applies exactly as if
        the earlier retires had landed first — newest-seq-wins makes
        them no-ops when they do arrive.  Bails out untouched on any
        broken link (a concurrent retire landed mid-walk); replays
        converge regardless.
        """
        parent, name = self._txn_resolve_parent(txn, old)
        head = txn.read("dentries", (parent["vino"], name))
        if head is None or head.get("staged") is None or head["vino"] != vino:
            return False
        chain = [(parent["vino"], name)]
        cur_parent, cur_name, cur = parent, name, head
        for _hop in range(64):
            prev_path = cur.get("prev")
            if prev_path is None:
                return False
            try:
                cur_parent, cur_name = self._txn_resolve_parent(
                    txn, prev_path)
            except FsError:
                return False
            cur = txn.read("dentries", (cur_parent["vino"], cur_name))
            if cur is None or cur["vino"] != vino:
                return False
            if cur.get("staged") is None:
                break
            chain.append((cur_parent["vino"], cur_name))
        else:
            return False
        for alias_parent, alias_name in chain:
            txn.delete("dentries", (alias_parent, alias_name))
            self._invalidate_resolve(alias_parent)
        txn.delete("dentries", (cur_parent["vino"], cur_name))
        self._invalidate_resolve(cur_parent["vino"])
        moved = dict(cur)
        moved["key"] = (parent["vino"], name)
        moved["parent"] = parent["vino"]
        moved["name"] = name
        txn.insert("dentries", moved)
        if cur_parent["vino"] != parent["vino"]:
            row = txn.read("inodes", vino)
            if row is not None and row["kind"] == DIRECTORY:
                src = txn.read_for_update("inodes", cur_parent["vino"])
                if src is not None:
                    src["nlink"] -= 1
                    txn.write("inodes", src)
                dst = txn.read_for_update("inodes", parent["vino"])
                if dst is not None:
                    dst["nlink"] += 1
                    txn.write("inodes", dst)
        return True

    def _txn_flip_apply(self, txn, old, new, now, seq, vino, pending):
        """Txn fragment: one replica's seq-guarded flip commit (retire).

        Shared between the coordinator's commit transaction and the
        ``mirror_rename`` replay, so both judge freshness — and
        normalize chained renames — identically.  Returns the rename
        body's result, or None when this flip is stale here (a newer
        rename of the same object already applied; only this flip's
        staged alias is GC'd — the old name may legitimately be current
        again after a→b→a, so it is never touched on the stale path).
        """
        row = txn.read("inodes", vino)
        if row is None or row.get("rseq", 0) >= seq:
            self._txn_gc_alias(txn, new, seq, vino)
            return None
        self._txn_collapse_chain(txn, old, vino)
        # Drop any staged alias at the destination before the rename
        # body looks at it: our own alias would read as "old and new
        # are already the same inode" (a silent no-op), and a foreign
        # flip's alias as a real replacement with inode bookkeeping.
        try:
            nparent, nname = self._txn_resolve_parent(txn, new)
        except FsError:
            nparent = None
        if nparent is not None:
            ndentry = txn.read("dentries", (nparent["vino"], nname))
            if ndentry is not None and ndentry.get("staged") is not None:
                txn.delete("dentries", (nparent["vino"], nname))
                self._invalidate_resolve(nparent["vino"])
        result = self._rename_body(old, new, now, pending)(txn)
        moved = txn.read_for_update("inodes", vino)
        if moved is not None:
            moved["rseq"] = seq
            txn.write("inodes", moved)
        return result

    def _alias_partitions(self, old, new):
        """Mirror every partition key under ``old`` to ``new`` in the
        shared in-memory fan-out map (pure python — no simulated
        events), so entry routing by the staged name works tier-wide the
        instant any replica serves it.  Returns the ``(old, new)`` key
        pairs for the flip intent, so an abort — inline or recovery's —
        can unalias exactly what was aliased."""
        parts = self.sharding.partitions
        pairs = []
        for path in list(parts):
            if path == old or path.startswith(old + "/"):
                dest = new + path[len(old):]
                if dest not in parts:
                    parts[dest] = parts[path]
                    pairs.append([path, dest])
        return pairs

    def _unalias_partitions(self, pairs):
        """Drop staged partition-routing aliases (abort path).  Guarded
        on the old key still being canonical: after a committed flip the
        re-key moved it, and a late abort must not blind routing."""
        parts = self.sharding.partitions
        for old_key, new_key in pairs or ():
            fanout = parts.get(old_key)
            if fanout is not None and parts.get(new_key) == fanout:
                parts.pop(new_key, None)

    def _abort_flip(self, flip_tid, new, seq, vino, parts, stamp):
        """Coroutine: unwind phase 1 of a skeleton flip.

        Remote aliases die first (seq-guarded unstage broadcast), then
        the local alias and the flip intent in one transaction, then the
        in-memory partition aliases — so no instant leaves a replica
        serving a new name the tier can no longer route.  Shared with
        recovery's :meth:`redo_flip`.
        """
        try:
            yield from self._broadcast(
                "mirror_rename_unstage", new, seq, vino, stamp=stamp)

            def body(txn):
                if txn.read("intents", flip_tid) is None:
                    return False
                self._txn_gc_alias(txn, new, seq, vino)
                txn.delete("intents", flip_tid)
                return True

            yield from self.dbsvc.execute(self._local_body(body))
            self._unalias_partitions(parts)
        except (EpochFenced, MemberDown):
            pass  # the surviving flip intent hands cleanup to recovery
        finally:
            self._done_tids([flip_tid])
        return True

    def redo_flip(self, rec):
        """Coroutine: resolve a surviving ``rename_flip`` intent — by
        aborting.  The commit transaction deletes the flip intent
        atomically with the rename itself, so this record's survival
        proves the flip never committed: unstage the alias everywhere
        (seq-guarded, so a newer rename's state survives a replayed
        abort) and retire the intent."""
        yield from self._abort_flip(
            rec["id"], rec["new"], rec["seq"], rec["vino"],
            rec.get("parts"), self._stamp())
        return True

    def _rename_replicated(self, kind, vino, old, new, dst, now, _hops,
                           epoch=None, rseq=0):
        """Coroutine: rename of a directory/symlink — a two-phase,
        seq-guarded skeleton flip replayed on all shards.

        Phase 1 (*stage*) journals a durable ``rename_flip`` intent and
        plants an alias dentry for the new name — locally, then on every
        replica via ``mirror_rename_stage`` — so both names resolve
        while the broadcast is in flight.  Phase 2 (*commit*) applies
        the rename locally, deleting the flip intent atomically with it
        (the commit point), then *retires* old names with
        newest-seq-wins ``mirror_rename`` broadcasts.  At every instant
        each replica serves the old name, the new name, or both — never
        neither; the flip intent's survival proves the flip never
        committed, so any crash unwinds to the old name everywhere.
        """
        if epoch is None:
            epoch = self.epoch
        if kind == DIRECTORY:
            # The one-transaction rename tests the cycle (a directory
            # cannot move beneath itself) before it ever looks at the
            # destination; the remote prechecks below must not answer
            # ENOTDIR/ENOTEMPTY for a rename the body would EINVAL.
            norm_old, norm_new = normalize(old), normalize(new)
            if norm_new.startswith(norm_old + "/"):
                raise FsError.einval(
                    f"cannot move a directory beneath itself: "
                    f"{old} -> {new}")
        if dst != self.shard_id:
            entry = yield from self._peer(dst, "peek_entry", new)
            if entry is not None and entry["kind"] not in (DIRECTORY, SYMLINK):
                if kind == DIRECTORY:
                    # A file (or stub) occupies the target name on its owner.
                    raise FsError.enotdir(new)
        if kind == DIRECTORY:
            # Replacing a directory: its file population lives on its
            # entries owner — or, when it is split, across every
            # partition shard, each of which must report empty.
            for content_owner in self.sharding.entry_shards(
                    normalize(new), self.n_shards):
                if content_owner == self.shard_id:
                    continue  # the rename transaction checks locally
                entries = yield from self._peer(
                    content_owner, "count_children_of", new)
                if entries:
                    raise FsError.enotempty(new)
        stamp = self._stamp(epoch)
        norm_old, norm_new = normalize(old), normalize(new)
        seq = max(now, rseq + 1)
        stage_plans, stage_tid = [], None
        if kind == DIRECTORY:
            # Pre-stage the subtree's re-homed file populations at their
            # post-rename owners *before* any replica can serve the new
            # name: keyed by (directory vino, name) — which a rename
            # never changes — a staged copy is exactly where the renamed
            # path routes, so the instant any shard's replica shows the
            # new name its entries are already servable; no reader ever
            # sees the transient ENOENT the old migrate-after-commit
            # order allowed.  The stage intent is journaled before the
            # copies ship and deleted atomically by the rename
            # transaction below, so its survival proves the rename never
            # committed and recovery (or the inline compensation) purges
            # the strays.
            stage_plans, stage_tid = yield from self._stage_renamed_subtree(
                vino, old, new, epoch, stamp)

        # -- phase 1: stage -------------------------------------------------
        # Alias a split subtree's partition keys in the shared routing
        # map first (pure python), then journal the flip intent
        # atomically with this shard's alias dentry, then broadcast the
        # alias.  From here to the commit both names resolve everywhere
        # a stage landed; a refused stage (a newer flip's rseq won, or
        # the destination is taken) just keeps that replica old-only.
        parts = self._alias_partitions(norm_old, norm_new) \
            if kind == DIRECTORY else []
        flip_tid = self._new_tid()

        def stage(txn):
            # The staged alias legitimately writes ``new`` into this
            # shard's skeleton replica; the parent walk's ownership
            # re-check must not bounce the coordinator to the entries
            # owner.
            prev = self._skip_owner_guard
            self._skip_owner_guard = True
            try:
                self._txn_stage_alias(txn, norm_old, new, seq, vino)
            finally:
                self._skip_owner_guard = prev
            self._txn_intent(txn, epoch, {
                "id": flip_tid, "role": "coord", "op": "rename_flip",
                "old": old, "new": new, "seq": seq, "vino": vino,
                "parts": parts,
            })
            return True

        staged = False
        try:
            yield from self.dbsvc.execute(stage)
            staged = True
            yield from self._broadcast(
                "mirror_rename_stage", old, new, seq, vino, stamp=stamp)
        except ResolveForward as fwd:
            # Only the (atomically aborted) stage transaction forwards:
            # nothing was staged anywhere yet.
            self._done_tids([flip_tid])
            self._unalias_partitions(parts)
            yield from self._abort_stage(stage_plans, stage_tid, stamp)
            if fwd.final:
                yield from self._probe_dst_parent(fwd, _hops)
            retried = yield from self.rename(old, fwd.path, now, _hops + 1)
            return retried
        except EpochFenced:
            # Zombie coordinator: a journaled flip intent hands the
            # unstage (and the partition unalias recorded in it) to
            # recovery; a self-fenced stage transaction journaled
            # nothing, so unwind the pure-memory aliases here.
            self._done_tids([flip_tid])
            if not staged:
                self._unalias_partitions(parts)
            if stage_tid is not None:
                self._done_tids([stage_tid])
            raise
        except FsError:
            if staged:
                yield from self._abort_flip(
                    flip_tid, new, seq, vino, parts, stamp)
            else:
                self._done_tids([flip_tid])
                self._unalias_partitions(parts)
            yield from self._abort_stage(stage_plans, stage_tid, stamp)
            raise
        except BaseException:
            self._done_tids([flip_tid])
            if stage_tid is not None:
                self._done_tids([stage_tid])
            raise

        # -- phase 2: commit + retire ---------------------------------------
        pending, rekeyed = [], []
        tids = [flip_tid] + ([stage_tid] if stage_tid is not None else [])

        def body(txn):
            prev = self._skip_owner_guard
            self._skip_owner_guard = True
            try:
                result = self._txn_flip_apply(
                    txn, norm_old, new, now, seq, vino, pending)
            finally:
                self._skip_owner_guard = prev
            if result is None:
                # A newer rename of the same object won the race between
                # our stage and this commit: the old name is no longer
                # ours to move.
                raise FsError.enoent(old)
            txn.delete("intents", flip_tid)
            if stage_tid is not None:
                txn.delete("intents", stage_tid)
            if kind == DIRECTORY:
                # A split directory under ``old`` keeps its entries in
                # place (placement hashes only names); re-key its rows
                # durably with the rename.  The in-memory map follows in
                # the tail, after the commit — a self-fenced body rolls
                # the durable rekey back, and a mem rekey applied here
                # would survive that abort and diverge the shared map.
                # The gap is covered: the phase-1 alias keeps both names
                # routable until the tail runs.
                rekeyed[:] = self._txn_rekey_partitions(
                    txn, norm_old, norm_new)
            tids.append(self._txn_intent(txn, epoch, {
                "id": self._new_tid(), "role": "coord",
                "op": "rename_replicated", "kind": kind, "vino": vino,
                "old": old, "new": new, "now": now, "seq": seq,
                "pending": list(pending),
            }))
            return result

        def on_forward(fwd):
            yield from self._abort_flip(
                flip_tid, new, seq, vino, parts, stamp)
            yield from self._abort_stage(stage_plans, stage_tid, stamp)
            if fwd.final:
                # Same pinning as the same-shard branch: only the
                # entries owner can pronounce on the missing component.
                yield from self._probe_dst_parent(fwd, _hops)
            retried = yield from self.rename(old, fwd.path, now, _hops + 1)
            return retried

        def on_fserror(exc):
            # A fence never reaches here (the wrapper re-raises it
            # first): compensation RPCs would be refused too, and the
            # surviving flip + stage intents hand the cleanup to
            # recovery.
            yield from self._abort_flip(
                flip_tid, new, seq, vino, parts, stamp)
            yield from self._abort_stage(stage_plans, stage_tid, stamp)
            raise exc

        def tail(box):
            # Fenced past the commit point (the local flip + intent are
            # durable): recovery's redo re-broadcasts the retires and
            # re-migrates.
            if rekeyed:
                # Pure python, before any yield: the shared routing map
                # catches up with the committed durable rekey (recovery
                # rebuilds it from the rows if a crash lands first).
                self._rekey_partitions_mem(rekeyed)
                del rekeyed[:]
            tid = tids[-1]
            drained = yield from self._drain_pending(pending, now, tid, stamp)
            box[0] = self._merge_replaced(box[0], drained)
            mirrored = yield from self._broadcast(
                "mirror_rename", old, new, now, seq, vino, stamp=stamp)
            box[0] = self._merge_replaced(
                box[0], [m for m in mirrored if m is not None])
            if kind == DIRECTORY:
                yield from self._migrate_renamed_subtree(
                    vino, old, new, now, stamp)
            yield from self.intent_forget(tid)
            yield from self._forget_dedups(tid, pending)

        return (yield from self._coordinated(
            tids, body=body, tail=tail,
            on_forward=on_forward, on_fserror=on_fserror))

    def mirror_rename(self, old, new, now, seq, vino, stamp=None):
        """RPC (shard-to-shard): retire a replicated rename's old name.

        Phase 2 of the skeleton flip: the staged alias (phase 1) already
        serves the new name here, so this replay applies the real rename
        and consumes the alias in one transaction — a reader at any
        instant resolves old, new, or both, never neither.  Newest-seq
        wins (the per-replica ``rseq`` high-water mark on the moving
        inode) makes replays idempotent and lets chained renames land in
        any order; a stale retire only collects its own staged alias.

        A replay that replaces a stub queues a remote link-count drop;
        that drop gets its own intent here (this shard coordinates it),
        because the *caller's* intent only redoes the broadcast — and a
        replayed ``mirror_rename`` whose rename already applied answers
        stale, so it would never re-reach this drop.
        """
        yield from self._dispatch()
        epoch = self.epoch
        pending, tids = [], []

        def body(txn):
            self._check_stamp(stamp)
            result = self._txn_flip_apply(
                txn, normalize(old), new, now, seq, vino, pending)
            if result is None:
                return (None, False)
            # This replica's partition rows re-key with its replay (the
            # coordinator re-keyed its own atomically with the rename);
            # a no-op for symlink renames and unsplit subtrees.
            self._rekey_partitions_mem(self._txn_rekey_partitions(
                txn, normalize(old), normalize(new)))
            if pending:
                tids.append(self._txn_intent(txn, epoch, {
                    "id": self._new_tid(), "role": "coord",
                    "op": "rename_post", "new": new, "now": now,
                    "pending": list(pending), "replaced_symlink": False,
                }))
            return result

        def tail(box):
            # A fence here strands the rename_post intent for recovery.
            if not tids:
                return
            tid = tids[0]
            drained = yield from self._drain_pending(
                pending, now, tid, self._stamp(epoch))
            box[0] = self._merge_replaced(box[0], drained)
            yield from self.intent_forget(tid)
            yield from self._forget_dedups(tid, pending)

        return (yield from self._coordinated(
            tids, body=body, tail=tail, local=True,
            on_fserror=lambda exc: (None, False)))

    # -- subtree migration (copy → import → purge) --------------------------

    def _txn_subtree_dirs(self, txn, vino, old, new):
        """Txn fragment: every directory of ``vino``'s subtree, listed as
        ``(old_path, new_path, dir_vino)`` under both name mappings."""
        found = [(old, new, vino)]
        frontier = [(vino, old, new)]
        while frontier:
            dvino, old_path, new_path = frontier.pop()
            for dentry in txn.index_read("dentries", "parent", dvino):
                if dentry.get("home") is not None:
                    continue
                row = txn.read("inodes", dentry["vino"])
                if row is not None and row["kind"] == DIRECTORY:
                    entry = (f"{old_path}/{dentry['name']}",
                             f"{new_path}/{dentry['name']}",
                             dentry["vino"])
                    found.append(entry)
                    frontier.append((dentry["vino"], entry[0], entry[1]))
        return found

    def _stage_renamed_subtree(self, vino, old, new, epoch, stamp):
        """Coroutine: pre-copy re-homed subtree populations to their
        post-rename owners, under a durable ``stage`` intent.

        Split directories are skipped (their entries are placed by name
        hash, which a rename never changes), as are directories whose
        owner is unchanged.  The copies are invisible until the rename
        commits — routing still names the sources — and the stage intent
        (journaled before any copy ships, deleted atomically by the
        rename transaction) guarantees a crash or abort leaves
        :meth:`redo_stage` enough to purge them.  Returns
        ``(plans, stage_tid)``.
        """
        norm_old, norm_new = normalize(old), normalize(new)

        def collect(txn):
            return self._txn_subtree_dirs(txn, vino, norm_old, norm_new)

        dirs = yield from self.dbsvc.execute(self._local_body(collect))
        plans = []
        for old_path, new_path, dvino in dirs:
            if normalize(old_path) in self.sharding.partitions:
                continue
            src = self._dir_owner(old_path)
            dst = self._dir_owner(new_path)
            if src != dst:
                plans.append((dvino, src, dst))
        if not plans:
            return [], None
        tid = self._new_tid()

        def intent(txn):
            self._txn_intent(txn, epoch, {
                "id": tid, "role": "coord", "op": "stage", "vino": vino,
                "plans": [[dvino, dst] for dvino, _src, dst in plans],
            })
            return True

        try:
            yield from self.dbsvc.execute(intent)
            for dvino, src, dst in plans:
                dentries, inodes = yield from self._call_shard(
                    src, "copy_dir_children", dvino, stamp)
                if dentries:
                    yield from self._call_shard(
                        dst, "import_dir_children", dvino, dentries,
                        inodes, stamp)
        except BaseException:
            self._done_tids([tid])
            raise
        return [(dvino, dst) for dvino, _src, dst in plans], tid

    def _abort_stage(self, plans, stage_tid, stamp):
        """Coroutine: unwind staged subtree copies after an aborted rename.

        The destinations are (still) not the owners of anything under
        the staged directories, so every file entry they hold there is a
        stray — our staged copy, or an older migration's not-yet-purged
        leftover — and re-listing then purging cleans both.  Shared with
        recovery's :meth:`redo_stage`.
        """
        if stage_tid is None:
            return False
        try:
            for dvino, dst in plans:
                dentries, inodes = yield from self._call_shard(
                    dst, "copy_dir_children", dvino, stamp)
                if dentries:
                    yield from self._call_shard(
                        dst, "purge_dir_children", dvino,
                        [d["key"] for d in dentries],
                        [r["vino"] for r in inodes], stamp)
            yield from self.intent_forget(stage_tid)
        except EpochFenced:
            pass  # the surviving stage intent hands cleanup to recovery
        finally:
            self._done_tids([stage_tid])
        return True

    def redo_stage(self, rec):
        """Coroutine: resolve a surviving ``stage`` intent — by aborting.

        The rename transaction deletes its stage intent atomically with
        the rename itself, so this record's survival proves the rename
        never committed: purge the pre-staged copies at the planned
        destinations and retire the intent.
        """
        plans = [tuple(plan) for plan in rec["plans"]]
        yield from self._abort_stage(plans, rec["id"], self._stamp())
        return True

    def _migrate_renamed_subtree(self, vino, old, new, now, stamp=None):
        """Coroutine: converge file children after a directory rename.

        Partitioning is by *path*, so renaming a directory may change the
        owner of its (and every descendant directory's) file entries — the
        well-known cost of path-based partitioning that HopsFS sidesteps by
        hashing immutable inode ids.  The rename pre-staged each re-homed
        population at its destination (:meth:`_stage_renamed_subtree`),
        so this post-commit pass is catch-up and cleanup: one more
        copy → import round picks up entries created between the staging
        snapshot and the rename commit, and the purge then drops the
        source copies.  Copy-then-delete (rather than the destructive
        export this replaced) means a crash between the RPCs never loses
        entries: they transiently exist on both shards (the merged
        readdir dedups by name), and re-running the migration
        (recovery's intent roll-forward does) converges — import skips
        keys it already holds, purge deletes only what the copy listed.
        Split directories are skipped: their rows were re-keyed by the
        rename and their entries never move.
        """

        def collect(txn):
            return self._txn_subtree_dirs(txn, vino, old, new)

        dirs = yield from self.dbsvc.execute(collect)
        for old_path, new_path, dvino in dirs:
            if normalize(new_path) in self.sharding.partitions:
                continue
            src = self._dir_owner(old_path)
            dst = self._dir_owner(new_path)
            if src == dst:
                continue
            dentries, inodes = yield from self._call_shard(
                src, "copy_dir_children", dvino, stamp)
            if dentries:
                yield from self._call_shard(
                    dst, "import_dir_children", dvino, dentries, inodes,
                    stamp)
                yield from self._call_shard(
                    src, "purge_dir_children", dvino,
                    [d["key"] for d in dentries],
                    [r["vino"] for r in inodes], stamp)

    def _txn_collect_children(self, txn, vino):
        """Txn fragment: this shard's movable entries of directory ``vino``.

        ``(dentry, inode)`` pairs shaped exactly as
        :meth:`import_dir_children` consumes them: replicated skeleton
        children (directories, symlinks) are excluded, a hard-linked
        file's inode stays home behind a stub (``inode`` is None), and
        pre-existing stubs travel as-is.  Read-only — shared between the
        copy RPC and the verified-flip transaction's straggler scan
        (:meth:`~repro.core.shard.rebalance.ShardRebalancePart.
        _verified_flip`), so placement and its atomic proof can never
        disagree about what counts as movable.
        """
        pairs = []
        for dentry in txn.index_read("dentries", "parent", vino):
            dentry = dict(dentry)
            # A mid-flight cross-shard rename's retiring marker is local
            # bookkeeping; a migrated copy must not carry it (the source
            # retire is marker-guarded and the abort falls back to
            # re-attaching when the ghost moved away).
            dentry.pop("retiring", None)
            inode = None
            if dentry.get("home") is None:
                row = txn.read("inodes", dentry["vino"])
                if row is None or row["kind"] != FILE:
                    continue  # replicated skeleton stays put
                if row["nlink"] > 1:
                    # Hard-linked under other names: the inode stays
                    # home (see _rename_cross_shard's detach); only
                    # the name moves, shipped as a stub back here.
                    dentry["home"] = self.shard_id
                else:
                    inode = dict(row)
            pairs.append((dentry, inode))
        return pairs

    def copy_dir_children(self, vino, stamp=None):
        """RPC (shard-to-shard): read a directory's file entries here.

        Read-only: the entries stay until :meth:`purge_dir_children`
        confirms the destination holds them, so no crash point between
        the migration RPCs can lose an entry.
        """
        yield from self._dispatch()
        self._check_stamp(stamp)

        def body(txn):
            dentries, inodes = [], []
            for dentry, inode in self._txn_collect_children(txn, vino):
                dentries.append(dentry)
                if inode is not None:
                    inodes.append(inode)
            return (dentries, inodes)

        result = yield from self.dbsvc.execute(body)
        return result

    def import_dir_children(self, vino, dentries, inodes, stamp=None):
        """RPC (shard-to-shard): adopt re-homed file entries (idempotent)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            for row in inodes:
                if txn.read("inodes", row["vino"]) is None:
                    txn.insert("inodes", dict(row))
                    if row["upath"]:
                        self._txn_bucket_adjust(txn, row["upath"], 1)
            for dentry in dentries:
                dentry = dict(dentry)
                if dentry.get("home") == self.shard_id:
                    del dentry["home"]  # the stub came home
                if txn.read("dentries", tuple(dentry["key"])) is None:
                    txn.insert("dentries", dentry)
            self._invalidate_resolve(vino)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    def purge_dir_children(self, vino, keys, vinos, stamp=None):
        """RPC (shard-to-shard): drop migrated entries once the new owner
        holds them (idempotent: deletes only what is still here)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            changed = False
            for key in keys:
                if txn.read("dentries", tuple(key)) is not None:
                    txn.delete("dentries", tuple(key))
                    changed = True
            for moved in vinos:
                row = txn.read("inodes", moved)
                if row is not None and row["kind"] == FILE:
                    txn.delete("inodes", moved)
                    if row["upath"]:
                        self._txn_bucket_adjust(txn, row["upath"], -1)
                    changed = True
            if changed:
                self._invalidate_resolve(vino)
            return changed

        result = yield from self.dbsvc.execute(body)
        return result

    # -- cross-shard file rename --------------------------------------------

    def _rename_cross_shard(self, old, new, vino, home, dst, now, _hops,
                            epoch=None):
        """Coroutine: move a file's name (and inode) to another shard.

        Two-phase: the detach transaction journals an intent record —
        carrying the detached inode row itself, so no crash point can
        lose it — atomically with the detach; the destination's install
        transaction journals a prepare record atomically with the
        install and is the commit point.  Afterwards the coordinator
        drops its intent, then the participant's prepare record.  A
        crash anywhere is resolved by recovery's completion pass: the
        prepare record's existence decides commit (roll forward) vs
        abort (re-attach from the intent's payload).
        """
        if epoch is None:
            epoch = self.epoch
        tid = self._new_tid()
        return (yield from self._coordinated(
            tid, run=self._rename_cross_shard_fenced(
                old, new, vino, home, dst, now, tid, epoch)))

    def _rename_cross_shard_fenced(self, old, new, vino, home, dst, now,
                                   tid, epoch):
        """Coroutine: the cross-shard rename body under one live tid."""

        def detach(txn):
            # Dual residence: the old name is only *marked* retiring —
            # dentry and inode stay servable here until the install at
            # the destination commits and :meth:`_retire_rename_src`
            # drops them, so no instant of the rename resolves neither
            # name.  A second rename of a mid-move name reads ENOENT,
            # exactly as if the move had already finished.
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None or dentry.get("retiring") is not None:
                raise FsError.enoent(old)
            marked = dict(dentry)
            marked["retiring"] = tid
            txn.delete("dentries", (parent["vino"], name))
            txn.insert("dentries", marked)
            self._invalidate_resolve(parent["vino"])
            if dentry.get("home") is not None:
                out = (None, dentry["home"])
            else:
                row = txn.read_for_update("inodes", dentry["vino"])
                if row is None:
                    raise FsError.enoent(old)
                if row["nlink"] > 1:
                    # Other names — local hard links or remote stubs —
                    # still reference this inode; moving the row would
                    # dangle every one of them.  It stays home and the
                    # renamed name becomes a stub pointing here.
                    row["ctime"] = now
                    txn.write("inodes", row)
                    out = (None, self.shard_id)
                else:
                    # The row itself is *copied* to the destination; the
                    # local original (and its placement charge) retires
                    # with the marked name after the commit.
                    row["ctime"] = now
                    out = (row, None)
            moved, stub_home = out
            self._txn_intent(txn, epoch, {
                "id": tid, "role": "coord", "op": "rename",
                "old": old, "new": new, "dst": dst, "now": now,
                "row": dict(moved) if moved is not None else None,
                "stub": None if stub_home is None
                else {"vino": dentry["vino"], "home": stub_home},
            })
            return out

        # The peek above already pinned ``old``'s canonical resolution to
        # this shard; the detach — and any compensation — walks the local
        # replica of the skeleton (_local_body), so a cross-shard symlink
        # installed concurrently on the path can neither leak a forward
        # exception to the client nor strand the detached inode.
        row, stub_home = yield from self.dbsvc.execute(
            self._local_body(detach))
        if row is None:
            payload, stub = None, {"vino": vino, "home": stub_home}
        else:
            payload, stub = row, None
        stamp = self._stamp(epoch)
        try:
            result = yield from self._call_shard(
                dst, "rename_install", new, payload, stub, now, tid, stamp)
        except FsError:
            # EpochFenced lands here too: the rollback is record-guarded,
            # so if a recovery already resolved this intent it no-ops and
            # the clean abort surfaces to the client (EAGAIN on a fence).
            yield from self._rename_rollback(tid, old, payload, stub, now)
            raise
        if result == "#same":
            # Old and new name already point at the same inode: POSIX says
            # do nothing, so undo the detach (the install wrote no prepare
            # record, so a crash before this lands rolls back the same way).
            yield from self._rename_rollback(tid, old, payload, stub, now)
            return (None, False)
        try:
            yield from self._retire_rename_src(tid, old, payload, stub, now)
            yield from self._call_shard(
                result[2], "retire_rename_part", tid, stamp)
        except EpochFenced:
            # Fenced after the commit point: the surviving records are
            # retired by recovery's completion pass (the intent by
            # finish_rename_intent — which applies this same source
            # retire — the prepare by pass B).
            pass
        return (result[0], result[1])

    def _retire_rename_src(self, tid, old, row, stub, now):
        """Coroutine: drop a committed cross-shard rename's source
        residue — the retiring-marked dentry, the inode copy a full move
        left behind (with its placement charge), the parent-time bump
        the detach deferred, and the intent — in one transaction.
        Record-guarded and idempotent: recovery's
        :meth:`~repro.core.shard.recovery.ShardRecoveryPart.
        finish_rename_intent` applies the same retire when the
        coordinator dies between install and this."""

        def body(txn):
            if txn.read("intents", tid) is None:
                return False
            vino = row["vino"] if row is not None else stub["vino"]
            try:
                parent, name = self._txn_resolve_parent(txn, old)
            except FsError:
                parent = None
            if parent is not None:
                dentry = txn.read("dentries", (parent["vino"], name))
                if (dentry is not None and dentry["vino"] == vino
                        and dentry.get("retiring") is not None):
                    txn.delete("dentries", (parent["vino"], name))
                    self._invalidate_resolve(parent["vino"])
                    up = dict(parent)
                    up["mtime"] = up["ctime"] = now
                    txn.write("inodes", up)
            if row is not None:
                stored = txn.read("inodes", row["vino"])
                if stored is not None and stored["kind"] == FILE:
                    txn.delete("inodes", row["vino"])
                    if stored["upath"]:
                        self._txn_bucket_adjust(txn, stored["upath"], -1)
            txn.delete("intents", tid)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _rename_rollback(self, tid, old, row, stub, now):
        """Coroutine: abort a cross-shard rename — clear the retiring
        marker (or re-attach, if a migration moved the ghost meanwhile)
        and drop the intent in one transaction (idempotent: recovery
        may race or repeat it)."""

        def body(txn):
            if txn.read("intents", tid) is None:
                return False
            parent, name = self._txn_resolve_parent(txn, old)
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                self._txn_reattach(txn, old, row, stub, now)
            elif dentry.get("retiring") is not None:
                cleared = dict(dentry)
                del cleared["retiring"]
                txn.delete("dentries", (parent["vino"], name))
                txn.insert("dentries", cleared)
                self._invalidate_resolve(parent["vino"])
            txn.delete("intents", tid)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _txn_reattach(self, txn, path, row, stub, now):
        """Compensation: put a detached name (and inode) back."""
        parent, name = self._txn_resolve_parent(txn, path)
        vino = row["vino"] if row is not None else stub["vino"]
        dentry = {
            "key": (parent["vino"], name), "parent": parent["vino"],
            "name": name, "vino": vino,
        }
        if stub is not None and stub["home"] != self.shard_id:
            dentry["home"] = stub["home"]
        self._invalidate_resolve(parent["vino"])
        txn.insert("dentries", dentry)
        if row is not None and txn.read("inodes", row["vino"]) is None:
            # Dual residence: a rolled-back detach usually still holds
            # the row (only the marker is stale); re-insert only when a
            # racing migration really moved it away.
            txn.insert("inodes", dict(row))
            if row["upath"]:
                self._txn_bucket_adjust(txn, row["upath"], 1)
        up = dict(parent)
        up["mtime"] = up["ctime"] = now
        txn.write("inodes", up)
        return True

    def rename_install(self, new, row, stub, now, tid, stamp=None, _hops=0):
        """RPC (shard-to-shard): attach a renamed file at its new shard.

        The install transaction is the rename's commit point: it journals
        a prepare record (under ``tid``) atomically with the attach, so
        recovery can tell a committed rename (roll the coordinator's
        intent forward) from an aborted one (re-attach the old name).
        The coordinator's epoch stamp is checked *inside* the transaction
        — atomically against fence installation — so no stale-epoch
        prepare record can commit after its coordinator was fenced.
        Returns ``(replaced_upath, replaced_last, installer_shard)``, or
        ``"#same"`` without writing a prepare record.
        """
        self._check_hops(_hops, new)
        yield from self._dispatch()
        moving_vino = row["vino"] if row is not None else stub["vino"]
        pending, replaced = [], []

        def body(txn):
            self._check_stamp(stamp)
            new_parent, new_name = self._txn_resolve_parent(txn, new)
            existing = txn.read("dentries", (new_parent["vino"], new_name))
            if existing is not None and existing.get("staged") is not None:
                # A skeleton flip's staged alias occupies the name: it
                # is a resolution shadow, not a reference — drop it
                # without inode bookkeeping and install over it (the
                # flip's retire replays as a rename over this install,
                # identically on every replica).
                txn.delete("dentries", (new_parent["vino"], new_name))
                existing = None
            replaced_upath, replaced_last = None, False
            if existing is not None:
                if existing["vino"] == moving_vino:
                    return "#same"
                ehome = existing.get("home")
                if ehome is not None and ehome != self.shard_id:
                    pending.append((ehome, existing["vino"]))
                else:
                    target = txn.read_for_update("inodes", existing["vino"])
                    if target is not None:
                        if target["kind"] == DIRECTORY:
                            raise FsError.eisdir(new)
                        target["nlink"] -= 1
                        if target["nlink"] <= 0:
                            txn.delete("inodes", target["vino"])
                            if target["kind"] == FILE and target["upath"]:
                                self._txn_bucket_adjust(
                                    txn, target["upath"], -1)
                            replaced_upath = target["upath"]
                            replaced_last = True
                            replaced.append(target["kind"])
                        else:
                            txn.write("inodes", target)
                txn.delete("dentries", (new_parent["vino"], new_name))
            self._invalidate_resolve(new_parent["vino"])
            dentry = {
                "key": (new_parent["vino"], new_name),
                "parent": new_parent["vino"], "name": new_name,
                "vino": moving_vino,
            }
            if stub is not None and stub["home"] != self.shard_id:
                dentry["home"] = stub["home"]
            txn.insert("dentries", dentry)
            if row is not None:
                txn.insert("inodes", dict(row))
                if row["upath"]:
                    self._txn_bucket_adjust(txn, row["upath"], 1)
            np = dict(new_parent)
            np["mtime"] = np["ctime"] = now
            txn.write("inodes", np)
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "rename",
                "new": new, "now": now, "pending": list(pending),
                "replaced_symlink": SYMLINK in replaced,
                "epoch": self._stamp_epoch(stamp),
            })
            return (replaced_upath, replaced_last)

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "rename_install", fwd.path, row, stub, now, tid,
                stamp, _hops + 1)
            return result
        if result == "#same":
            return result
        try:
            outcomes = yield from self._drain_pending(
                pending, now, tid, stamp)
            if SYMLINK in replaced:
                # The install destroyed a replicated symlink at ``new``;
                # kill its replicas everywhere else (including the
                # coordinator) so no stale replica keeps resolving the
                # dead link.
                yield from self._broadcast(
                    "mirror_unlink", new, now, stamp=stamp)
        except EpochFenced:
            # The coordinator was fenced after this commit point: its
            # recovery redoes the surviving prepare record's side effects.
            outcomes = ()
        merged = self._merge_replaced(result, outcomes)
        return (merged[0], merged[1], self.shard_id)

    # -- link: possibly cross-shard ---------------------------------------

    def link(self, src, dst, now, _hops=0):
        """Coroutine: hard link, two-phase when it crosses shards.

        The coordinator (destination-parent owner) journals an intent
        *before* any link count moves; the bump transaction at the
        source's home journals a prepare record atomically with the
        bump; the coordinator's dentry-insert transaction atomically
        deletes the intent — that deletion is the commit point.  On any
        failure (or crash) the bump is rolled back by
        :meth:`link_abort`, which drops the count and the prepare record
        in one transaction, so neither a repeat nor a crash mid-rollback
        can double-revert it.
        """
        self._check_hops(_hops, src)
        yield from self._dispatch()
        epoch = self.epoch
        tid = self._new_tid()
        return (yield from self._coordinated(
            tid, run=self._link_fenced(src, dst, now, _hops, tid, epoch)))

    def _link_fenced(self, src, dst, now, _hops, tid, epoch):
        """Coroutine: the link protocol body under one live tid."""
        stamp = self._stamp(epoch)
        src_owner = self._owner_of(src)
        try:
            if src_owner == self.shard_id:
                view, home = yield from self._link_fetch_local(
                    src, now, tid, coordinate=True, stamp=stamp)
            else:
                # The intent must be durable before any *remote* bump:
                # a prepare record without a coordinator intent reads as
                # committed to recovery.  (The local-fetch path instead
                # folds the intent into the bump transaction itself.)
                yield from self.dbsvc.execute(
                    lambda txn: self._txn_intent(
                        txn, epoch, self._link_intent(tid, src, dst, now)))
                view, home = yield from self._peer(
                    src_owner, "link_fetch", src, now, tid, stamp)
        except ResolveForward as fwd:
            yield from self.intent_forget(tid)
            result = yield from self._redispatch(
                fwd, "link", fwd.path, dst, now, _hops + 1)
            return result
        except FsError:
            # The bump transaction aborted: no prepare record anywhere.
            # (EpochFenced lands here too; the forget is record-guarded,
            # so a recovery that already resolved the intent wins.)
            yield from self.intent_forget(tid)
            raise

        def body(txn):
            # The commit is valid only while this coordinator's epoch is
            # live *and* its intent record still exists: a recovery that
            # fenced this coordinator has already rolled the bump back,
            # and committing the dentry now would resurrect half the op.
            fence = self.fences.get(self.shard_id, 0)
            if epoch < fence or txn.read("intents", tid) is None:
                raise EpochFenced(self.shard_id, epoch, fence)
            parent, name = self._txn_resolve_parent(txn, dst)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                raise FsError.eexist(dst)
            self._invalidate_resolve(parent["vino"])
            dentry = {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            }
            if home != self.shard_id:
                dentry["home"] = home
            txn.insert("dentries", dentry)
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            txn.delete("intents", tid)  # the commit point
            if home == self.shard_id:
                # The prepare record sits on this very shard: retire it
                # with the commit instead of in a follow-up transaction.
                txn.delete("intents", self._part_id(tid))
            return True

        try:
            yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            # Destination parent crossed shards: undo the bump, move the
            # whole operation to the right coordinator.
            yield from self._link_undo(home, tid, now, stamp)
            result = yield from self._redispatch(
                fwd, "link", src, fwd.path, now, _hops + 1)
            return result
        except FsError:
            yield from self._link_undo(home, tid, now, stamp)
            raise
        if home != self.shard_id:
            try:
                yield from self._peer(
                    home, "intent_forget", self._part_id(tid))
            except EpochFenced:  # pragma: no cover - forgets are unfenced
                pass
        return view

    def _link_undo(self, home, tid, now, stamp):
        """Coroutine: compensate an aborted link (fence-tolerant).

        Both steps are record-guarded and idempotent; if this coordinator
        was fenced mid-abort, the recovery that fenced it resolves the
        surviving records the same way, so a fence here is swallowed.
        """
        try:
            yield from self._call_shard(home, "link_abort", tid, now, stamp)
            yield from self.intent_forget(tid)
        except EpochFenced:
            pass

    def _link_intent(self, tid, src, dst, now):
        return {"id": tid, "role": "coord", "op": "link",
                "src": src, "dst": dst, "now": now}

    def _link_fetch_local(self, src, now, tid, coordinate=False, stamp=None):
        """Coroutine: bump the link count of ``src``'s inode on this shard.

        With ``coordinate`` (this shard is the link's coordinator), the
        coordinator intent rides the bump transaction alongside the
        prepare record — one durable commit covers both; when the source
        turns out to be a stub, the intent is journaled alone *before*
        the remote bump instead.  A remote coordinator (``link_fetch``)
        already journaled its intent and passes ``coordinate=False``.
        """
        epoch = self._stamp_epoch(stamp)

        def body(txn):
            self._check_stamp(stamp)
            row = self._txn_resolve(txn, src, follow=False)
            if row["kind"] == DIRECTORY:
                raise FsError.eisdir(src)
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: {src}")
            row = dict(row)
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            if coordinate:
                self._txn_intent(
                    txn, epoch, self._link_intent(tid, src, None, now))
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "link",
                "vino": row["vino"], "now": now, "epoch": epoch,
            })
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except VinoForward as fwd:
            if coordinate:
                yield from self.dbsvc.execute(
                    lambda txn: self._txn_intent(
                        txn, epoch, self._link_intent(tid, src, None, now)))
            view = yield from self._peer(
                fwd.shard, "link_vino", fwd.vino, now, tid, stamp)
            return (view, fwd.shard)
        return (self._attr_view(row), self.shard_id)

    def link_fetch(self, src, now, tid, stamp=None, _hops=0):
        """RPC (shard-to-shard): resolve + bump a link source for a peer
        (the caller coordinates: its intent is already durable)."""
        self._check_hops(_hops, src)
        yield from self._dispatch()
        try:
            result = yield from self._link_fetch_local(
                src, now, tid, stamp=stamp)
        except ResolveForward as fwd:
            result = yield from self._redispatch(
                fwd, "link_fetch", fwd.path, now, tid, stamp, _hops + 1)
        return result

    def link_abort(self, tid, now, stamp=None):
        """RPC (shard-to-shard): roll back an optimistic link-count bump.

        Atomic with the prepare record's deletion, so it is idempotent:
        recovery (or a repeated live rollback) finds no record and does
        nothing.  Uses the full ``_drop_link`` semantics — if every other
        name vanished while the link was in flight, the rollback is the
        last drop and must reclaim the inode and its placement slot.
        """
        yield from self._dispatch()
        pid = self._part_id(tid)

        def body(txn):
            self._check_stamp(stamp)
            rec = txn.read("intents", pid)
            if rec is None:
                return False
            txn.delete("intents", pid)
            row = txn.read_for_update("inodes", rec["vino"])
            if row is None:
                return False
            self._drop_link(txn, row, now)
            return True

        result = yield from self.dbsvc.execute(body)
        return result

    # -- vino-addressed mutations (forward / drain targets) -----------------

    def link_vino(self, vino, now, tid, stamp=None):
        """RPC: bump a link count at the inode's home, with the prepare
        record journaled atomically (the stub-mediated fetch path)."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            row = txn.read_for_update("inodes", vino)
            if row is None:
                raise FsError.enoent(f"vino {vino}")
            if row["kind"] == SYMLINK:
                raise FsError.einval(
                    f"hard link to a symlink on a sharded namespace: "
                    f"vino {vino}")
            row["nlink"] += 1
            row["ctime"] = now
            txn.write("inodes", row)
            txn.insert("intents", {
                "id": self._part_id(tid), "role": "part", "op": "link",
                "vino": vino, "now": now,
                "epoch": self._stamp_epoch(stamp),
            })
            return row

        row = yield from self.dbsvc.execute(body)
        return self._attr_view(row)

    def unlink_vino(self, vino, now, dedup=None, stamp=None):
        """RPC: drop one link at the inode's home shard.

        With ``dedup``, the drop is exactly-once: a dedup record commits
        atomically with it (storing the outcome), and a repeat — live
        retry or recovery redo — returns the recorded outcome instead of
        dropping again.  The dedup record carries the owning operation's
        coordinator epoch, so recovery can tell an abandoned guard from
        one a live (or newer-epoch) operation still needs.
        """
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            if dedup is not None:
                rec = txn.read("intents", dedup)
                if rec is not None:
                    return tuple(rec["outcome"])
            row = txn.read_for_update("inodes", vino)
            if row is None:
                outcome = (None, False)
            else:
                outcome = self._drop_link(txn, row, now)
            if dedup is not None:
                txn.insert("intents", {
                    "id": dedup, "role": "dedup",
                    "outcome": list(outcome),
                    "epoch": self._stamp_epoch(stamp),
                })
            return outcome

        result = yield from self.dbsvc.execute(body)
        return result
