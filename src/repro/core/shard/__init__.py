"""Sharded metadata tier: the COFS namespace over N metadata servers.

The paper's metadata service is a single node; the moment client counts
grow, it becomes the next bottleneck after the one it removed.  This
package partitions the virtual namespace across N
:class:`~repro.core.metaservice.MetadataService` shards, following the
HopsFS school of hierarchical-metadata partitioning, as layered
subsystems (one module per concern — the old single-module layout maps
onto them as noted in :mod:`repro.core.sharding`):

- :mod:`repro.core.shard.routing` — the partition function
  (:class:`ShardingPolicy`: hash-by-parent-directory or static subtrees,
  plus the re-homing override map), the client-side :class:`ShardRouter`
  with its load counters, and the forward machinery
  (:class:`ResolveForward` / :class:`VinoForward`) with the service-side
  resolution hooks and read handlers.
- :mod:`repro.core.shard.replication` — the replicated directory/symlink
  skeleton: mutation handlers that pair a local transaction with a
  redoable mirror broadcast, and the broadcast primitive (serial by
  default, overlapped via ``sim.all_of`` under
  ``CofsConfig.parallel_broadcasts``).  Also the primary/backup shard
  groups (:class:`ReplicatedShard`): synchronous journal log shipping
  with quorum acknowledgement, epoch-fenced failover, snapshot rejoin,
  and bounded-staleness follower reads, with :class:`GroupTargets`
  keeping cross-shard coordination addressed to groups, never nodes.
- :mod:`repro.core.shard.coordination` — 2-phase prepare/commit:
  intent/prepare/dedup records, cross-shard rename and hard link, and the
  crash-safe copy → import → purge population migration.
- :mod:`repro.core.shard.rebalance` — online load-aware re-partitioning:
  the re-homing protocol, override durability, and the
  :class:`Rebalancer` that samples router load and migrates hot
  directories.
- :mod:`repro.core.shard.recovery` — recovery of one shard or the whole
  tier: epoch bump + tier fence (recovery is safe against a *live* tier:
  stale coordinators are refused via :class:`EpochFenced`, live intents
  are spared), fenced intent completion, override restore, skeleton
  resync, placement reconciliation, allocator reseating
  (:func:`recover_tier`).
- :mod:`repro.core.shard.service` — :class:`ShardMetadataService`, the
  composition of the above over the base service.

A 1-shard configuration never constructs this service; the stack keeps the
plain :class:`~repro.core.metaservice.MetadataService` + a pass-through
router, so every seed figure doubles as a regression test for the routing
layer.
"""

from repro.core.shard.rebalance import Rebalancer, ShardRebalancePart
from repro.core.shard.recovery import ShardRecoveryPart, recover_tier
from repro.core.shard.replication import (
    GroupTargets,
    ReplicatedShard,
    ShardReplicationPart,
)
from repro.core.shard.routing import (
    EpochFenced,
    HashDirSharding,
    MemberDown,
    ResolveForward,
    ShardingPolicy,
    ShardRouter,
    ShardRoutingPart,
    SubtreeSharding,
    VinoForward,
)
from repro.core.shard.coordination import ShardCoordinationPart
from repro.core.shard.service import ShardMetadataService

__all__ = [
    "EpochFenced",
    "GroupTargets",
    "HashDirSharding",
    "MemberDown",
    "Rebalancer",
    "ReplicatedShard",
    "ResolveForward",
    "ShardCoordinationPart",
    "ShardingPolicy",
    "ShardMetadataService",
    "ShardRebalancePart",
    "ShardRecoveryPart",
    "ShardReplicationPart",
    "ShardRouter",
    "ShardRoutingPart",
    "SubtreeSharding",
    "VinoForward",
    "recover_tier",
]
