"""Replication: skeleton mirrors, and the primary/backup shard groups.

Two distinct replication mechanisms live here:

1. **Skeleton mirrors** (PR 2): the directory/symlink skeleton is
   replicated across *shards* so any shard can walk any path.  The
   mutation handlers pair a local transaction with a redoable mirror
   broadcast (create_node, unlink, rmdir, setattr); the ``mirror_*`` RPCs
   replay those mutations on a peer.

2. **Primary/backup groups** (this PR): each logical shard is a
   :class:`ReplicatedShard` group — one primary plus backups on their own
   machines, connected by *synchronous journal log shipping*.  After
   every locally durable update transaction the primary ships its redo
   journal's unacknowledged suffix to each live backup
   (:meth:`ReplicatedShard._ship`, driven from the
   ``DbService.replicator`` hook), and the client is acknowledged only
   once a **quorum** (majority of the live membership) holds the change
   durably.  Backups apply the suffix atomically with a durable
   applied-LSN pointer (:meth:`ShardReplicationPart.repl_apply`), so a
   shipped record is never applied twice and a gap is never silently
   skipped.  On primary failure a *fenced failover*
   (:meth:`ReplicatedShard.failover`) promotes the most caught-up live
   backup: the candidate bumps the group's durable recovery epoch — PR
   5's fencing token — and installs it tier-wide and on its fellow
   members before serving, so a zombie ex-primary's stamps (and its
   journal ships) are refused everywhere; its locally committed but
   never-quorum-acked suffix is discarded by the snapshot resync when it
   rejoins (:meth:`ReplicatedShard.rejoin`).  Cross-shard coordination
   is untouched: record ids and RPC targets name *groups* (shard ids),
   never nodes — :class:`GroupTargets` re-resolves every peer RPC to the
   group's current primary.  In-sync backups additionally serve
   bounded-staleness follower reads (see
   :meth:`~repro.core.shard.routing.ShardRouter._read_driver`).

Broadcasts are **serial** RPC chains by default — one mirror at a time,
the seed behavior every figure was measured with.  With
``CofsConfig.parallel_broadcasts`` the per-peer RPCs overlap via
``sim.all_of`` (one child process per peer): the coordinator still answers
only after *every* mirror applied, but pays max instead of sum of the peer
round trips.  No new recovery machinery is needed — the per-op intent
records journaled with the local change already make the redo safe
regardless of how many mirrors landed, in any order, before a crash
(proven per boundary by the parallel scenarios in
``tests/core/test_crash_points.py``).  Under fault injection a crash in
one overlapped mirror kills the coordinator immediately (all-of fails
fast); sibling RPCs already in the network may still land on healthy
peers, exactly as real in-flight messages would.
"""

from repro import obs
from repro.core.shard.routing import EpochFenced, MemberDown, ResolveForward
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, normalize, split


class ShardReplicationPart:
    """Mixin: replicated mutations + mirror replays.

    Composed into :class:`repro.core.shard.service.ShardMetadataService`;
    ``super()`` calls resolve to the base
    :class:`~repro.core.metaservice.MetadataService` transaction bodies.
    """

    def _local_body(self, fn):
        """Wrap a txn body so resolution never forwards (mirror replays)."""
        def wrapped(txn):
            self._local_only = True
            try:
                return fn(txn)
            finally:
                self._local_only = False
        return wrapped

    # -- the broadcast primitive -------------------------------------------

    def _broadcast(self, method, *args, stamp=None):
        """Coroutine: apply a mirror op on every other shard.

        Serial peer-by-peer by default; overlapped with ``sim.all_of``
        when ``config.parallel_broadcasts`` is set and there is more than
        one peer (a single peer gains nothing from the fan-out).  Results
        keep shard order in both modes.  ``stamp`` is the issuing
        operation's ``(coordinator, epoch)``; without one the broadcast
        carries the live epoch (recovery redo, which is always current).
        The stamp is appended as each mirror RPC's last argument — it is
        deliberately *not* part of the recorded intent args, so a redo
        replays under the recovering coordinator's fresh epoch.
        """
        if stamp is None:
            stamp = self._stamp()
        peers = [shard for shard in range(self.n_shards)
                 if shard != self.shard_id]
        if not self.config.parallel_broadcasts or len(peers) <= 1:
            results = []
            for shard in peers:
                results.append(
                    (yield from self._peer(shard, method, *args, stamp)))
            return results
        procs = [
            self.sim.process(
                self._peer(shard, method, *args, stamp),
                name=f"mirror-{method}-s{self.shard_id}to{shard}",
            )
            for shard in peers
        ]
        results = yield self.sim.all_of(procs)
        return results

    def _txn_mirror_intent(self, txn, mirror, args, epoch=None):
        """Journal a redoable mirror broadcast with the local change."""
        return self._txn_intent(
            txn, self.epoch if epoch is None else epoch, {
                "id": self._new_tid(), "role": "coord", "op": "mirror",
                "mirror": mirror, "args": list(args),
            })

    # -- namespace mutation with replication -------------------------------

    def setattr(self, path, changes, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        epoch = self.epoch
        self._check_setattr(changes)
        tids = []
        inner = self._setattr_body(path, changes, now)

        def body(txn):
            row = inner(txn)
            if row["kind"] == DIRECTORY:
                # Keep every replica of the skeleton coherent (stat reads
                # the contents-owner replica; see getattr); the intent
                # makes the broadcast crash-redoable.
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_setattr", [path, changes, now], epoch))
            return row

        def on_forward(fwd):
            view = yield from self._redispatch(
                fwd, "setattr", fwd.path, changes, now, _hops + 1)
            return view

        def on_vino(fwd):
            view = yield from self._peer(
                fwd.shard, "setattr_vino", fwd.vino, changes, now)
            return view

        def tail(box):
            # Committed locally (and shipped); fenced or killed in the
            # broadcast tail: the completion pass redoes the mirrors
            # from the journaled intent.
            box[0] = self._attr_view(box[0])
            if tids:
                yield from self._broadcast(
                    "mirror_setattr", path, changes, now,
                    stamp=self._stamp(epoch))
                yield from self.intent_forget(tids[0])

        return (yield from self._coordinated(
            tids, body=body, tail=tail, swallow=(EpochFenced, MemberDown),
            on_forward=on_forward, on_vino=on_vino))

    def create_node(self, path, kind, mode, uid, gid, node, pid, now,
                    target=None, _hops=0):
        self._check_hops(_hops, path)
        if kind == FILE:
            # Files are single-shard: the base transaction, no intent.
            try:
                view = yield from super().create_node(
                    path, kind, mode, uid, gid, node, pid, now, target)
            except ResolveForward as fwd:
                # The serving shard runs its own owner-clock bump.
                view = yield from self._redispatch(
                    fwd, "create_node", fwd.path, kind, mode, uid, gid,
                    node, pid, now, target, _hops + 1)
                return view
            self._bump_split_dir_times(path, now)
            return view
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        inner = self._create_body(
            path, kind, mode, uid, gid, node, pid, now, target)

        def body(txn):
            row = inner(txn)
            tids.append(self._txn_mirror_intent(
                txn, "mirror_create", [path, self._attr_view(row), now],
                epoch))
            return row

        def on_forward(fwd):
            view = yield from self._redispatch(
                fwd, "create_node", fwd.path, kind, mode, uid, gid, node,
                pid, now, target, _hops + 1)
            return view

        def tail(box):
            # Committed locally (and shipped); fenced or killed in the
            # broadcast tail: the completion pass redoes the mirrors
            # from the journaled intent.
            box[0] = self._attr_view(box[0])
            yield from self._broadcast(
                "mirror_create", path, box[0], now, stamp=self._stamp(epoch))
            yield from self.intent_forget(tids[0])

        return (yield from self._coordinated(
            tids, body=body, tail=tail, swallow=(EpochFenced, MemberDown),
            on_forward=on_forward))

    def unlink(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        forwarded = []
        inner = self._unlink_body(path, now)

        def body(txn):
            outcome = inner(txn)
            if outcome[0] == "#stub":
                # The remote link-count drop must survive a crash here.
                tids.append(self._txn_intent(txn, epoch, {
                    "id": self._new_tid(), "role": "coord",
                    "op": "unlink_stub", "vino": outcome[1],
                    "home": outcome[2], "now": now,
                }))
            elif outcome[0] == SYMLINK and outcome[1][1]:
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_unlink", [path, now], epoch))
            return outcome

        def on_forward(fwd):
            # The serving shard runs its own owner-clock bump.
            forwarded.append(True)
            result = yield from self._redispatch(
                fwd, "unlink", fwd.path, now, _hops + 1)
            return result

        def tail(box):
            # Fenced (or killed) past the local commit: recovery's redo
            # performs the remote drop / replica removal, and the box
            # holds what had landed by then.  A stub unlink cannot
            # report the remote (upath, last) outcome any more; the
            # client skips its underlying cleanup and the scrubber
            # reclaims the object.
            outcome = box[0]
            if outcome[0] == "#stub":  # inode adjusted at its home shard
                box[0] = (None, False)
                _marker, vino, home = outcome
                tid = tids[0]
                dedup = self._dedup_id(tid, vino)
                result = yield from self._peer(
                    home, "unlink_vino", vino, now, dedup,
                    self._stamp(epoch))
                yield from self.intent_forget(tid)
                yield from self._peer(home, "intent_forget", dedup)
                box[0] = result
                return
            kind, (upath, last) = outcome
            box[0] = (upath, last)
            if kind == SYMLINK and last:
                yield from self._broadcast(
                    "mirror_unlink", path, now, stamp=self._stamp(epoch))
                yield from self.intent_forget(tids[0])

        result = yield from self._coordinated(
            tids, body=body, tail=tail, swallow=(EpochFenced, MemberDown),
            on_forward=on_forward)
        if not forwarded:
            self._bump_split_dir_times(path, now)
        return result

    def rmdir(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        # The directory's file population lives on its entries owner —
        # or, when it is split, across every partition shard; each
        # remote holder must report empty (this shard's own entries are
        # checked by the transaction body below).
        for owner in self.sharding.entry_shards(
                normalize(path), self.n_shards):
            if owner == self.shard_id:
                continue
            entries = yield from self._peer(owner, "count_children_of", path)
            if entries:
                raise FsError.enotempty(path)
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        norm = normalize(path)
        inner = self._rmdir_body(path, now)

        forgotten = []

        def body(txn):
            result = inner(txn)
            # A re-homing override — and a partition row — dies with its
            # directory: dropping the durable rows atomically with the
            # rmdir (and on every peer via mirror_rmdir) closes the
            # "override outlives its directory" stickiness — a recreated
            # directory routes by the static rule again, unsplit.
            if self._drop_override_body(norm, now)(txn):
                forgotten.append("override")
            if self._drop_partitions_body(norm, now)(txn):
                forgotten.append("partitions")
            tids.append(self._txn_mirror_intent(
                txn, "mirror_rmdir", [path, now], epoch))
            return result

        def on_forward(fwd):
            result = yield from self._redispatch(
                fwd, "rmdir", fwd.path, now, _hops + 1)
            return result

        def tail(box):
            # Committed locally (and shipped); fenced or killed in the
            # broadcast tail: the completion pass redoes the mirrors
            # from the journaled intent.
            if "override" in forgotten:
                self.sharding.overrides.pop(norm, None)
            if "partitions" in forgotten:
                self.sharding.partitions.pop(norm, None)
            yield from self._broadcast(
                "mirror_rmdir", path, now, stamp=self._stamp(epoch))
            yield from self.intent_forget(tids[0])

        return (yield from self._coordinated(
            tids, body=body, tail=tail, swallow=(EpochFenced, MemberDown),
            on_forward=on_forward))

    # -- mirror (replication) RPCs -----------------------------------------

    def mirror_setattr(self, path, changes, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory/symlink setattr."""
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            self._check_stamp(stamp)
            try:
                row = dict(self._txn_resolve(txn, path))
            except FsError:
                return False
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_create(self, path, view, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory/symlink create."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            parent, name = self._txn_resolve_parent(txn, path)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                return False
            row = {
                "vino": view["vino"], "kind": view["kind"],
                "mode": view["mode"], "uid": view["uid"], "gid": view["gid"],
                "nlink": view["nlink"], "size": view["size"],
                "atime": view["atime"], "mtime": view["mtime"],
                "ctime": view["ctime"], "target": view["target"],
                "upath": view["upath"], "delegated": False,
            }
            txn.insert("inodes", row)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            })
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            if view["kind"] == DIRECTORY:
                up["nlink"] += 1
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_unlink(self, path, now, stamp=None):
        """RPC (shard-to-shard): replicate a symlink removal."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            row = txn.read("inodes", dentry["vino"])
            if row is not None:
                txn.delete("inodes", row["vino"])
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_rmdir(self, path, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory removal.

        Guard against the coordinator's check-then-act window: if entries
        appeared here since the emptiness checks, refuse to delete so no
        file becomes unreachable (the skeleton diverges until the retried
        rmdir; full cross-shard atomicity is a ROADMAP open item).

        Any re-homing override row for the path is dropped in the same
        transaction — on *every* path through the replay, including the
        refusal: the coordinator's commit is the authoritative removal
        of the directory, its own row is already gone, and a refusing
        shard keeping the row would diverge the override tables (and a
        later ``restore_overrides`` union would resurrect the forgotten
        override tier-wide).  The forget-on-rmdir thereby rides the
        existing redoable broadcast instead of needing its own intent.
        """
        yield from self._dispatch()
        norm = normalize(path)
        forgotten = []

        def body(txn):
            self._check_stamp(stamp)
            # Same newest-wins discipline as mirror_override: a redo
            # replaying this rmdir late must not drop an override (or a
            # partition row) a recreated directory acquired since.
            if self._drop_override_body(norm, now)(txn):
                forgotten.append("override")
            if self._drop_partitions_body(norm, now)(txn):
                forgotten.append("partitions")
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False  # already replayed here
            if txn.index_read("dentries", "parent", dentry["vino"]):
                return False  # refused: the directory survives here
            self._invalidate_resolve(parent["vino"])
            self._invalidate_resolve(dentry["vino"])
            txn.delete("dentries", (parent["vino"], name))
            txn.delete("inodes", dentry["vino"])
            up = dict(parent)
            up["nlink"] -= 1
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        if "override" in forgotten:
            self.sharding.overrides.pop(norm, None)
        if "partitions" in forgotten:
            self.sharding.partitions.pop(norm, None)
        return result

    def mirror_rename_stage(self, old, new, seq, vino, stamp=None):
        """RPC (shard-to-shard): stage a rename's new-name alias (phase 1).

        Idempotent and newest-seq-wins: a replica whose retire high-water
        mark already passed ``seq`` refuses the stale stage — a redo
        replaying behind a later rename of the same directory must not
        resurrect a dead alias.  Once staged, both the old and the new
        name resolve here until the flip's retire lands.
        """
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            row = txn.read("inodes", vino)
            if row is None or row.get("rseq", 0) >= seq:
                return False
            try:
                return self._txn_stage_alias(
                    txn, normalize(old), new, seq, vino)
            except FsError:
                return False

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_rename_unstage(self, new, seq, vino, stamp=None):
        """RPC (shard-to-shard): drop a staged alias (flip abort path).

        Seq-guarded like the stage: only the alias this flip staged
        (same vino, ``staged <= seq``) is dropped, so an abort replay
        racing a newer rename of the same directory never strips the
        newer flip's alias.
        """
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            return self._txn_gc_alias(txn, new, seq, vino)

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    # -- split-directory owner clock ---------------------------------------

    def _bump_split_dir_times(self, path, now):
        """Route a split directory's own time bump to its owner's clock.

        A split directory's file creates/unlinks commit on the partition
        shard owning the *entry*, which bumps only that replica's copy of
        the directory inode — invisible to stat, which reads the
        directory's owner.  Forwarding the bump to the owner (applied
        last-writer-wins, in the owner's arrival order) makes the
        owner's clock the one totally-ordered history for the directory's
        mtime/ctime instead of a per-partition merge.

        Plain python end to end: advisory timestamps get no simulated
        events (charge-preserving, like the shared partition map — see
        :meth:`bump_dir_times`), so the common unsplit/served-here path
        and the forwarded path alike cost nothing modeled.
        """
        parent, _name = split(path)
        if normalize(parent) not in self.sharding.partitions:
            return False
        owner = self._dir_owner(parent)
        if owner == self.shard_id:
            return False
        peer = self.shard_machines[owner].services.get("cofsmds")
        if peer is None:
            return False  # advisory times; the op itself committed
        return peer.bump_dir_times(parent, now)

    # -- primary/backup group RPCs -----------------------------------------

    def _member_call(self, member, method, *args, req_size=None):
        """Coroutine: an intra-group RPC to a *specific* member.

        Unlike :meth:`~repro.core.shard.routing.ShardRoutingPart._peer`
        this does not resolve through the group's current primary — log
        shipping, fence installs and snapshot pushes target an exact
        node.  Under fault injection the send/receive become crash
        boundaries labelled with the member's slot (``m<i>``), so the
        crash-point harness enumerates "primary dies before/after the
        ship" and "backup dies mid-catch-up" exactly like peer RPCs.
        """
        call = self.machine.call(
            member.machine, "cofsmds", method, args=args,
            req_size=self.config.rpc_bytes if req_size is None else req_size,
            resp_size=self.config.rpc_bytes,
        )
        slot = f"m{getattr(member, 'member_index', '?')}"
        if self.faults is not None:
            call = self._peer_traced(call, slot, method)
        if obs.TRACER is None:
            return call
        return self._peer_span(call, "member_rpc", slot, method)

    def repl_apply(self, base, records, stamp=None):
        """RPC (primary-to-backup): apply a shipped journal suffix.

        ``base`` is the LSN (index into the primary's redo journal) of
        ``records[0]``.  The backup keeps a *durable* applied-LSN pointer
        (the ``repl`` table row), written in the same transaction as the
        applied records, so the apply is atomic and idempotent: a
        re-shipped prefix is skipped by the pointer, a suffix beyond a
        gap is refused.  The primary's stamp is epoch-checked inside the
        transaction body — after a fenced failover the promoted primary
        installs its bumped epoch on every live member, so a zombie
        ex-primary's ships are refused *here* even if some other fence
        has not reached it yet.
        """
        yield from self._dispatch()

        fence_rows = []
        touched_dirs = []

        def body(txn):
            del fence_rows[:], touched_dirs[:]
            self._check_stamp(stamp)
            row = txn.read("repl", "applied")
            applied = row["lsn"]
            if base > applied:
                raise FsError(
                    "EAGAIN",
                    f"shard s{self.shard_id}: replication gap "
                    f"(ship base {base} > applied {applied})")
            for ops in records[applied - base:]:
                for op, table, payload in ops:
                    if op == "write":
                        txn.write(table, dict(payload))
                        if table == "epochs":
                            fence_rows.append(
                                (payload["shard"], payload["epoch"]))
                    else:
                        txn.delete(table, payload)
                    if table == "dentries":
                        touched_dirs.append(True)
            applied = max(applied, base + len(records))
            txn.write("repl", {"slot": "applied", "lsn": applied})
            return applied

        applied = yield from self.dbsvc.execute(self._local_body(body))
        # Keep the in-memory epoch/fence mirrors honest: fence installs
        # and epoch bumps on the primary arrive here as shipped ``epochs``
        # rows (the invariant checker asserts rows == memory on every
        # member it inspects).
        for shard, epoch in fence_rows:
            if self.fences.get(shard, 0) < epoch:
                self.fences[shard] = epoch
            if shard == self.shard_id and self.epoch < epoch:
                self.epoch = epoch
        if touched_dirs:
            self._resolve_cache.clear()
            self._resolve_by_parent.clear()
        return applied

    def repl_snapshot(self):
        """Coroutine (runs on the primary): snapshot for a rejoin resync.

        Returns ``(tables, head)``: every table's rows except the
        receiver-local ``repl`` pointer, plus the journal length the
        snapshot corresponds to.  Both are captured inside one
        transaction body (bodies are atomic), so the table image and the
        LSN can never disagree.
        """
        yield from self._dispatch()

        def body(txn):
            tables = {
                name: [dict(row) for row in txn.match(name)]
                for name in self.db.tables if name != "repl"
            }
            return tables, len(self.dbsvc.journal._records)

        snapshot = yield from self.dbsvc.execute(body)
        return snapshot

    def repl_install_snapshot(self, tables, head):
        """RPC (primary-to-member): overwrite state with a resync snapshot.

        Brings a dead member (stale backup, or a zombie ex-primary whose
        divergent never-acked suffix must be discarded) back in sync:
        every table is made identical to the snapshot in one transaction,
        the applied pointer jumps to the snapshot's LSN, and the
        in-memory epoch/fence mirrors and resolve caches are rebuilt from
        the installed rows.  The overwrite goes through the normal
        transaction path, so the member's own redo journal stays
        coherent: a crash after the install rebuilds to exactly the
        installed state.
        """
        yield from self._rejoin_dispatch()

        def body(txn):
            for name, rows in tables.items():
                pk = self.db.table(name).key
                desired = {row[pk]: row for row in rows}
                for row in list(txn.match(name)):
                    if row[pk] not in desired:
                        txn.delete(name, row[pk])
                for key, row in desired.items():
                    current = txn.read(name, key)
                    if current is None or dict(current) != row:
                        txn.write(name, dict(row))
            txn.write("repl", {"slot": "applied", "lsn": head})
            return True

        yield from self.dbsvc.execute(self._local_body(body))
        self.fences = {
            row["shard"]: row["epoch"] for row in tables["epochs"]}
        self.epoch = self.fences.get(self.shard_id, 0)
        self._resolve_cache.clear()
        self._resolve_by_parent.clear()
        self._live_tids.clear()
        return head


class GroupTargets:
    """Sequence mapping shard id -> the group's *current* primary machine.

    Cross-shard coordination names **groups, not nodes**: record ids stay
    ``s<k>.…`` and every peer RPC indexes this sequence at call time, so
    after a failover all new coordination traffic lands on the promoted
    primary with zero changes to the protocols.  The slots are
    pre-allocated and bound after the groups exist, breaking the
    construction cycle (members need ``len(shard_machines)`` before any
    group can be built).
    """

    def __init__(self, n_shards):
        self._groups = [None] * n_shards

    def bind(self, groups):
        """Attach the built groups (once, at tier construction)."""
        assert len(groups) == len(self._groups)
        self._groups[:] = groups

    def group(self, shard):
        return self._groups[shard]

    def __len__(self):
        return len(self._groups)

    def __getitem__(self, shard):
        return self._groups[shard].primary.machine

    def __iter__(self):
        for group in self._groups:
            yield group.primary.machine


class ReplicatedShard:
    """One logical shard: a primary plus backups under log shipping.

    All members bootstrap the same deterministic state (same shard id,
    same replicated root, same epoch row) on their own machines; from
    then on the primary's redo journal is the group's single history.
    The primary's :attr:`~repro.db.service.DbService.replicator` hook
    drives :meth:`_ship` after every locally durable update — client
    acknowledgement therefore *implies* quorum durability.

    Membership bookkeeping (who is down, who is most caught up, who is
    the primary) is plain Python state: it models the external
    coordination service real deployments lean on (the paper's tier has
    one too — Mnesia's schema coordinator), so reading it costs nothing.
    The *work* of failover — the epoch bump, the tier-wide fence
    installs, allocator reseats, snapshot resyncs — all rides the
    simulated RPC/transaction paths and pays full cost.
    """

    def __init__(self, members, config):
        assert members, "a group needs at least a primary"
        self.members = list(members)
        self.config = config
        self.shard_id = members[0].shard_id
        self.sim = members[0].sim
        self.primary_index = 0
        #: the group's promoted epoch: a member whose epoch lags this is
        #: a zombie and its ships are refused (second, group-local fence
        #: independent of the tier-wide stamp fences).
        self.epoch = members[0].epoch
        self.failovers = 0
        #: ``(ex_primary, applied_lsn)`` of the last promotion: the
        #: candidate's applied pointer *in the ex-primary's LSN space* at
        #: the moment it was promoted.  A zombie commit at or below this
        #: LSN provably survived into the promoted history (a concurrent
        #: committer's suffix ship carried it over before the fence), so
        #: its client is acknowledged instead of fenced — fencing it
        #: would make the router retry an already-replicated,
        #: non-idempotent mutation (EEXIST on the new primary).
        self.promoted_from = None
        #: ``(started_ms, serving_ms)`` of the last promotion — the
        #: availability gap the failover benchmark reports.
        self.last_failover = None
        self._failover_gate = None
        base = len(self.primary.dbsvc.journal._records)
        for index, member in enumerate(self.members):
            assert member.shard_id == self.shard_id
            assert len(member.dbsvc.journal._records) == base, \
                "group members must bootstrap identical journals"
            member.group = self
            member.member_index = index
        #: backup -> highest primary-journal LSN it has durably applied
        #: (``None`` while a member is resyncing: it is not yet part of
        #: the quorum membership).  The durable twin of each entry is the
        #: backup's own ``repl`` table row.
        self.acked = {}
        for member in self.backups:
            # The applied pointer exists from birth (bootstrap path, same
            # zero-cost discipline as the epoch row).
            member.db.transaction(
                lambda txn, lsn=base: txn.insert(
                    "repl", {"slot": "applied", "lsn": lsn}))
            member.dbsvc.journal.mark_durable()
            self.acked[member] = base
        self.primary.dbsvc.replicator = self._shipper(self.primary)

    # -- membership --------------------------------------------------------

    @property
    def primary(self):
        return self.members[self.primary_index]

    @property
    def backups(self):
        return [m for i, m in enumerate(self.members)
                if i != self.primary_index]

    @property
    def lsn(self):
        """The group's history head: the primary's journal length."""
        return len(self.primary.dbsvc.journal._records)

    def live_backups(self):
        """Backups that are up *and* in the quorum membership."""
        return [m for m in self.backups
                if not m.down and self.acked.get(m) is not None]

    def mark_down(self, member):
        """A member stopped answering: it leaves the live membership."""
        member.down = True

    def follower_for_read(self, staleness):
        """An in-sync live backup (lag ≤ ``staleness`` records), or None.

        Follower reads are the payoff for synchronous shipping: a backup
        whose applied LSN is within the configured bound of the group
        head serves ``stat``/``readdir``-class traffic without touching
        the primary, with a staleness bounded by that many records.
        """
        head = self.lsn
        for member in self.live_backups():
            if head - self.acked[member] <= staleness:
                return member
        return None

    # -- log shipping ------------------------------------------------------

    def _shipper(self, member):
        """The replicator closure installed on a member while primary.

        Deliberately *never* detached when the member stops being
        primary: a resurrected zombie's next local commit calls into
        :meth:`_ship`, fails the primaryship check, and surfaces
        :class:`EpochFenced` — the client is never acknowledged and the
        divergent local commit is discarded by the rejoin resync.
        """
        def replicate(commit_lsn):
            return self._ship(member, commit_lsn)
        return replicate

    def _survived_promotion(self, member, commit_lsn):
        """Did a fenced ex-primary's commit make it into the new history?

        Suffix shipping means a *concurrent* committer's ship can carry
        this transaction's record to a backup before the fence lands; if
        that backup was then promoted with the record applied
        (``commit_lsn`` ≤ its applied pointer in the ex-primary's LSN
        space), the mutation lives on in the group's one true history and
        the client must be acknowledged — the same rule as a Raft entry
        already replicated to the new leader.  Everything newer is truly
        lost and the caller surfaces the fence (client retries on the
        promoted primary).
        """
        return (self.promoted_from is not None
                and self.promoted_from[0] is member
                and commit_lsn <= self.promoted_from[1])

    def _ship(self, member, commit_lsn):
        """Coroutine: ship the journal suffix, ack only on quorum.

        Runs inside the primary's update transaction path (the
        ``DbService.replicator`` hook), after local durability and
        before the client regains control; ``commit_lsn`` is the LSN of
        the caller's own transaction.  Each live backup receives the
        suffix past its acked LSN — shipping from the ack pointer makes
        the protocol self-healing: a backup that missed a ship (crash
        between send and apply) is caught up by the very next one.  The
        mutation is acknowledged only when a **majority of the live
        membership** (the primary's own durable copy included) holds it;
        otherwise the client sees EAGAIN and retries.  A ship fenced by
        a concurrent promotion acks anyway when the commit provably
        survived into the promoted history
        (:meth:`_survived_promotion`).
        """
        if obs.TRACER is None and obs.METRICS is None:
            return self._ship_inner(member, commit_lsn)
        return self._ship_observed(member, commit_lsn)

    def _ship_observed(self, member, commit_lsn):
        """Coroutine: :meth:`_ship_inner` under a ``ship`` span + metrics."""
        tracer, metrics = obs.TRACER, obs.METRICS
        sim = self.sim
        start = sim.now
        span = None
        if tracer is not None:
            span = tracer.start("ship", f"s{self.shard_id}", start,
                                shard=self.shard_id, epoch=member.epoch,
                                lsn=commit_lsn)
        try:
            yield from self._ship_inner(member, commit_lsn)
        except FsError as exc:
            if span is not None:
                tracer.finish(span, sim.now, outcome=exc.code)
            raise
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, sim.now, outcome=type(exc).__name__)
            raise
        if span is not None:
            tracer.finish(span, sim.now)
        if metrics is not None:
            metrics.observe("quorum_ack_ms", self.shard_id, sim.now - start)

    def _ship_inner(self, member, commit_lsn):
        if member is not self.primary or member.epoch < self.epoch:
            if self._survived_promotion(member, commit_lsn):
                return
            raise EpochFenced(self.shard_id, member.epoch, self.epoch)
        journal = member.dbsvc.journal
        head = len(journal._records)
        stamp = (self.shard_id, member.epoch)
        for backup in self.members:
            if backup is member or backup.down:
                continue
            base = self.acked.get(backup)
            if base is None:
                continue  # mid-resync: the rejoin will set its pointer
            if obs.METRICS is not None:
                obs.METRICS.observe(
                    "ship_lag_records", self.shard_id, head - base)
            try:
                applied = yield from member._member_call(
                    backup, "repl_apply", base,
                    journal._records[base:head], stamp,
                    req_size=self.config.rpc_bytes + 256 * (head - base))
            except MemberDown:
                # The backup died under us: it leaves the live
                # membership (the quorum shrinks with it) and will
                # full-resync when it rejoins.
                self.mark_down(backup)
                continue
            except EpochFenced:
                # The backup fenced us mid-ship: a promotion won the
                # race while this RPC was in flight (it waited out the
                # candidate's admission gate).  Same survival rule as
                # the entry check.
                if self._survived_promotion(member, commit_lsn):
                    return
                raise
            if self.acked.get(backup) is not None:
                self.acked[backup] = max(self.acked[backup], applied)
            if obs.METRICS is not None:
                obs.METRICS.observe(
                    "apply_lag_records", self.shard_id, head - applied)
        live = 1 + len(self.live_backups())
        acks = 1 + sum(1 for b in self.live_backups()
                       if self.acked[b] >= commit_lsn)
        if acks < live // 2 + 1:
            raise FsError(
                "EAGAIN",
                f"shard s{self.shard_id}: quorum lost "
                f"({acks}/{live} acks for lsn {commit_lsn})")

    # -- failover ----------------------------------------------------------

    def ensure_failover(self):
        """Coroutine: guarantee the group has a live, promoted primary.

        No-op while the primary is up.  Called by the router's retry
        path on EAGAIN — the router, not a background detector, notices
        the dead primary, which keeps the availability gap equal to the
        promotion work itself.
        """
        if not self.primary.down:
            return None
        promoted = yield from self.failover()
        return promoted

    def failover(self):
        """Coroutine: fenced promotion of the most caught-up live backup.

        Sequence (single-flight; concurrent callers wait on the gate and
        return the winner's primary):

        1. pick the live backup with the highest applied LSN — under
           synchronous shipping its tables already hold every record the
           group ever acknowledged, so there is no journal replay and the
           availability gap is promotion work, not recovery work;
        2. the candidate bumps the group's durable epoch, installs the
           fence tier-wide *and* on its fellow members, and reseats its
           allocators — all behind its admission gate
           (:meth:`~repro.core.shard.recovery.ShardRecoveryPart.promote`);
        3. the group re-points at the candidate (``GroupTargets`` makes
           every future peer RPC land there) and its replicator hook
           starts shipping;
        4. the new primary runs the tier-wide completion pass for the
           dead coordinator's epoch — cross-shard records the old
           primary left mid-protocol are finished or reclaimed from the
           *replicated* intent rows;
        5. any other stale backups rejoin by snapshot (their pointers
           index the dead primary's journal, a different LSN space).

        The dead ex-primary itself stays down until explicitly revived
        and :meth:`rejoin`-ed.
        """
        if self._failover_gate is not None:
            yield self._failover_gate
            return self.primary
        self._failover_gate = self.sim.event()
        started = self.sim.now
        tracer = obs.TRACER
        # The failover span measures exactly the availability gap: it opens
        # at the single-flight claim and closes the instant serving resumes
        # (``last_failover``); the overlapped cleanup below stays outside.
        span = None
        if tracer is not None:
            span = tracer.start("failover", f"s{self.shard_id}", started,
                                shard=self.shard_id, epoch=self.epoch)
        try:
            old = self.primary
            candidates = [m for m in self.backups
                          if not m.down and self.acked.get(m) is not None]
            if not candidates:
                raise FsError(
                    "EIO",
                    f"shard s{self.shard_id}: no live in-sync backup "
                    f"to promote")
            best = max(
                candidates,
                key=lambda m: (self.acked[m], -m.member_index))
            yield from best.promote(self)
            self.failovers += 1
            self.primary_index = best.member_index
            self.epoch = best.epoch
            stale = [m for m in candidates if m is not best]
            # Everything the candidate had applied survives into the
            # promoted history: zombie ships at or below this LSN are
            # acknowledged, not fenced (see _survived_promotion).  The
            # candidate's *durable* pointer is the authority — the ack
            # map lags it when an apply's response was in flight at the
            # kill.
            self.promoted_from = (old, next(
                row["lsn"] for row in best.db.table("repl").all()
                if row["slot"] == "applied"))
            self.acked = {}
            best.dbsvc.replicator = self._shipper(best)
            self.last_failover = (started, self.sim.now)
            if span is not None:
                tracer.finish(span, self.sim.now)
                span = None
            if obs.METRICS is not None:
                obs.METRICS.observe(
                    "failover_gap_ms", self.shard_id, self.sim.now - started)
            # Serving has resumed; the cleanup below overlaps new traffic.
            yield from best.complete_tier_intents(
                {self.shard_id: best.epoch})
            for member in stale:
                # Their applied pointers index the *old* primary's
                # journal — a different LSN space.  Snapshot resync.
                yield from self.rejoin(member)
        finally:
            if span is not None:  # error before serving resumed
                tracer.finish(span, self.sim.now, outcome="error")
            gate, self._failover_gate = self._failover_gate, None
            gate.succeed()
        return self.primary

    def rejoin(self, member):
        """Coroutine: bring a dead or stale member back as a backup.

        Full snapshot resync from the current primary: the member is
        down for the whole window (it must serve nothing until the
        snapshot is in), its possibly-divergent state — including a
        zombie ex-primary's committed-but-never-acked suffix — is
        overwritten, and only then does it enter the quorum membership
        at the snapshot's LSN.  Ships that race the resync skip the
        member (``acked`` is None); the first ship after it lands closes
        any gap from the snapshot head.
        """
        primary = self.primary
        assert member is not primary, "cannot rejoin the primary"
        member.down = True
        member.dbsvc.replicator = None  # a backup never ships
        self.acked[member] = None
        tables, head = yield from primary.repl_snapshot()
        yield from primary._member_call(
            member, "repl_install_snapshot", tables, head,
            req_size=self.config.rpc_bytes
            + 256 * sum(len(rows) for rows in tables.values()))
        self.acked[member] = head
        member.down = False
        return head
