"""Replication: the skeleton replicas and their mirror broadcasts.

The "keep every shard's copy of the directory/symlink skeleton coherent"
layer (formerly the *namespace mutation with replication* and *mirror
(replication) ops* sections of the old ``repro/core/sharding.py``
monolith): the mutation handlers that pair a local transaction with a
redoable mirror broadcast (create_node, unlink, rmdir, setattr), the
``mirror_*`` RPCs that replay those mutations on a peer, and the broadcast
primitive itself.

Broadcasts are **serial** RPC chains by default — one mirror at a time,
the seed behavior every figure was measured with.  With
``CofsConfig.parallel_broadcasts`` the per-peer RPCs overlap via
``sim.all_of`` (one child process per peer): the coordinator still answers
only after *every* mirror applied, but pays max instead of sum of the peer
round trips.  No new recovery machinery is needed — the per-op intent
records journaled with the local change already make the redo safe
regardless of how many mirrors landed, in any order, before a crash
(proven per boundary by the parallel scenarios in
``tests/core/test_crash_points.py``).  Under fault injection a crash in
one overlapped mirror kills the coordinator immediately (all-of fails
fast); sibling RPCs already in the network may still land on healthy
peers, exactly as real in-flight messages would.
"""

from repro.core.shard.routing import (
    EpochFenced, ResolveForward, VinoForward,
)
from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, SYMLINK, normalize


class ShardReplicationPart:
    """Mixin: replicated mutations + mirror replays.

    Composed into :class:`repro.core.shard.service.ShardMetadataService`;
    ``super()`` calls resolve to the base
    :class:`~repro.core.metaservice.MetadataService` transaction bodies.
    """

    def _local_body(self, fn):
        """Wrap a txn body so resolution never forwards (mirror replays)."""
        def wrapped(txn):
            self._local_only = True
            try:
                return fn(txn)
            finally:
                self._local_only = False
        return wrapped

    # -- the broadcast primitive -------------------------------------------

    def _broadcast(self, method, *args, stamp=None):
        """Coroutine: apply a mirror op on every other shard.

        Serial peer-by-peer by default; overlapped with ``sim.all_of``
        when ``config.parallel_broadcasts`` is set and there is more than
        one peer (a single peer gains nothing from the fan-out).  Results
        keep shard order in both modes.  ``stamp`` is the issuing
        operation's ``(coordinator, epoch)``; without one the broadcast
        carries the live epoch (recovery redo, which is always current).
        The stamp is appended as each mirror RPC's last argument — it is
        deliberately *not* part of the recorded intent args, so a redo
        replays under the recovering coordinator's fresh epoch.
        """
        if stamp is None:
            stamp = self._stamp()
        peers = [shard for shard in range(self.n_shards)
                 if shard != self.shard_id]
        if not self.config.parallel_broadcasts or len(peers) <= 1:
            results = []
            for shard in peers:
                results.append(
                    (yield from self._peer(shard, method, *args, stamp)))
            return results
        procs = [
            self.sim.process(
                self._peer(shard, method, *args, stamp),
                name=f"mirror-{method}-s{self.shard_id}to{shard}",
            )
            for shard in peers
        ]
        results = yield self.sim.all_of(procs)
        return results

    def _txn_mirror_intent(self, txn, mirror, args, epoch=None):
        """Journal a redoable mirror broadcast with the local change."""
        return self._txn_intent(
            txn, self.epoch if epoch is None else epoch, {
                "id": self._new_tid(), "role": "coord", "op": "mirror",
                "mirror": mirror, "args": list(args),
            })

    # -- namespace mutation with replication -------------------------------

    def setattr(self, path, changes, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        epoch = self.epoch
        self._check_setattr(changes)
        tids = []
        inner = self._setattr_body(path, changes, now)

        def body(txn):
            row = inner(txn)
            if row["kind"] == DIRECTORY:
                # Keep every replica of the skeleton coherent (stat reads
                # the contents-owner replica; see getattr); the intent
                # makes the broadcast crash-redoable.
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_setattr", [path, changes, now], epoch))
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            self._done_tids(tids)
            view = yield from self._redispatch(
                fwd, "setattr", fwd.path, changes, now, _hops + 1)
            return view
        except VinoForward as fwd:
            self._done_tids(tids)
            view = yield from self._peer(
                fwd.shard, "setattr_vino", fwd.vino, changes, now)
            return view
        except BaseException:
            self._done_tids(tids)
            raise
        view = self._attr_view(row)
        try:
            if tids:
                yield from self._broadcast(
                    "mirror_setattr", path, changes, now,
                    stamp=self._stamp(epoch))
                yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # committed locally; recovery redoes the broadcast
        finally:
            self._done_tids(tids)
        return view

    def create_node(self, path, kind, mode, uid, gid, node, pid, now,
                    target=None, _hops=0):
        self._check_hops(_hops, path)
        if kind == FILE:
            # Files are single-shard: the base transaction, no intent.
            try:
                view = yield from super().create_node(
                    path, kind, mode, uid, gid, node, pid, now, target)
            except ResolveForward as fwd:
                view = yield from self._redispatch(
                    fwd, "create_node", fwd.path, kind, mode, uid, gid,
                    node, pid, now, target, _hops + 1)
            return view
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        inner = self._create_body(
            path, kind, mode, uid, gid, node, pid, now, target)

        def body(txn):
            row = inner(txn)
            tids.append(self._txn_mirror_intent(
                txn, "mirror_create", [path, self._attr_view(row), now],
                epoch))
            return row

        try:
            row = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            self._done_tids(tids)
            view = yield from self._redispatch(
                fwd, "create_node", fwd.path, kind, mode, uid, gid, node,
                pid, now, target, _hops + 1)
            return view
        except BaseException:
            self._done_tids(tids)
            raise
        view = self._attr_view(row)
        try:
            yield from self._broadcast(
                "mirror_create", path, view, now, stamp=self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # committed locally; recovery redoes the broadcast
        finally:
            self._done_tids(tids)
        return view

    def unlink(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        inner = self._unlink_body(path, now)

        def body(txn):
            outcome = inner(txn)
            if outcome[0] == "#stub":
                # The remote link-count drop must survive a crash here.
                tids.append(self._txn_intent(txn, epoch, {
                    "id": self._new_tid(), "role": "coord",
                    "op": "unlink_stub", "vino": outcome[1],
                    "home": outcome[2], "now": now,
                }))
            elif outcome[0] == SYMLINK and outcome[1][1]:
                tids.append(self._txn_mirror_intent(
                    txn, "mirror_unlink", [path, now], epoch))
            return outcome

        try:
            outcome = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            self._done_tids(tids)
            result = yield from self._redispatch(
                fwd, "unlink", fwd.path, now, _hops + 1)
            return result
        except BaseException:
            self._done_tids(tids)
            raise
        try:
            if outcome[0] == "#stub":  # inode adjusted at its home shard
                _marker, vino, home = outcome
                tid = tids[0]
                dedup = self._dedup_id(tid, vino)
                result = yield from self._peer(
                    home, "unlink_vino", vino, now, dedup,
                    self._stamp(epoch))
                yield from self.intent_forget(tid)
                yield from self._peer(home, "intent_forget", dedup)
                return result
            kind, (upath, last) = outcome
            if kind == SYMLINK and last:
                yield from self._broadcast(
                    "mirror_unlink", path, now, stamp=self._stamp(epoch))
                yield from self.intent_forget(tids[0])
        except EpochFenced:
            # Fenced past the local commit: recovery's redo performs the
            # remote drop / replica removal.  A stub unlink cannot report
            # the remote (upath, last) outcome any more; the client skips
            # its underlying cleanup and the scrubber reclaims the object.
            if outcome[0] == "#stub":
                return (None, False)
            kind, (upath, last) = outcome
        finally:
            self._done_tids(tids)
        return (upath, last)

    def rmdir(self, path, now, _hops=0):
        self._check_hops(_hops, path)
        owner = self._dir_owner(path)
        if owner != self.shard_id:
            # The directory's file population lives on its owner shard.
            entries = yield from self._peer(owner, "count_children_of", path)
            if entries:
                raise FsError.enotempty(path)
        yield from self._dispatch()
        epoch = self.epoch
        tids = []
        norm = normalize(path)
        inner = self._rmdir_body(path, now)

        forgotten = []

        def body(txn):
            result = inner(txn)
            # A re-homing override dies with its directory: dropping the
            # durable row atomically with the rmdir (and on every peer
            # via mirror_rmdir) closes the "override outlives its
            # directory" stickiness — a recreated directory routes by
            # the static rule again.
            if self._drop_override_body(norm, now)(txn):
                forgotten.append(True)
            tids.append(self._txn_mirror_intent(
                txn, "mirror_rmdir", [path, now], epoch))
            return result

        try:
            result = yield from self.dbsvc.execute(body)
        except ResolveForward as fwd:
            self._done_tids(tids)
            result = yield from self._redispatch(
                fwd, "rmdir", fwd.path, now, _hops + 1)
            return result
        except BaseException:
            self._done_tids(tids)
            raise
        if forgotten:
            self.sharding.overrides.pop(norm, None)
        try:
            yield from self._broadcast(
                "mirror_rmdir", path, now, stamp=self._stamp(epoch))
            yield from self.intent_forget(tids[0])
        except EpochFenced:
            pass  # committed locally; recovery redoes the broadcast
        finally:
            self._done_tids(tids)
        return result

    # -- mirror (replication) RPCs -----------------------------------------

    def mirror_setattr(self, path, changes, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory/symlink setattr."""
        yield from self._dispatch()
        self._check_setattr(changes)

        def body(txn):
            self._check_stamp(stamp)
            try:
                row = dict(self._txn_resolve(txn, path))
            except FsError:
                return False
            row.update(changes)
            row["ctime"] = now
            txn.write("inodes", row)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_create(self, path, view, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory/symlink create."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            parent, name = self._txn_resolve_parent(txn, path)
            if txn.read("dentries", (parent["vino"], name)) is not None:
                return False
            row = {
                "vino": view["vino"], "kind": view["kind"],
                "mode": view["mode"], "uid": view["uid"], "gid": view["gid"],
                "nlink": view["nlink"], "size": view["size"],
                "atime": view["atime"], "mtime": view["mtime"],
                "ctime": view["ctime"], "target": view["target"],
                "upath": view["upath"], "delegated": False,
            }
            txn.insert("inodes", row)
            self._invalidate_resolve(parent["vino"])
            txn.insert("dentries", {
                "key": (parent["vino"], name), "parent": parent["vino"],
                "name": name, "vino": view["vino"],
            })
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            if view["kind"] == DIRECTORY:
                up["nlink"] += 1
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_unlink(self, path, now, stamp=None):
        """RPC (shard-to-shard): replicate a symlink removal."""
        yield from self._dispatch()

        def body(txn):
            self._check_stamp(stamp)
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False
            self._invalidate_resolve(parent["vino"])
            txn.delete("dentries", (parent["vino"], name))
            row = txn.read("inodes", dentry["vino"])
            if row is not None:
                txn.delete("inodes", row["vino"])
            up = dict(parent)
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def mirror_rmdir(self, path, now, stamp=None):
        """RPC (shard-to-shard): replicate a directory removal.

        Guard against the coordinator's check-then-act window: if entries
        appeared here since the emptiness checks, refuse to delete so no
        file becomes unreachable (the skeleton diverges until the retried
        rmdir; full cross-shard atomicity is a ROADMAP open item).

        Any re-homing override row for the path is dropped in the same
        transaction — on *every* path through the replay, including the
        refusal: the coordinator's commit is the authoritative removal
        of the directory, its own row is already gone, and a refusing
        shard keeping the row would diverge the override tables (and a
        later ``restore_overrides`` union would resurrect the forgotten
        override tier-wide).  The forget-on-rmdir thereby rides the
        existing redoable broadcast instead of needing its own intent.
        """
        yield from self._dispatch()
        norm = normalize(path)
        forgotten = []

        def body(txn):
            self._check_stamp(stamp)
            # Same newest-wins discipline as mirror_override: a redo
            # replaying this rmdir late must not drop an override a
            # recreated directory acquired since.
            if self._drop_override_body(norm, now)(txn):
                forgotten.append(True)
            try:
                parent, name = self._txn_resolve_parent(txn, path)
            except FsError:
                return False
            dentry = txn.read("dentries", (parent["vino"], name))
            if dentry is None:
                return False  # already replayed here
            if txn.index_read("dentries", "parent", dentry["vino"]):
                return False  # refused: the directory survives here
            self._invalidate_resolve(parent["vino"])
            self._invalidate_resolve(dentry["vino"])
            txn.delete("dentries", (parent["vino"], name))
            txn.delete("inodes", dentry["vino"])
            up = dict(parent)
            up["nlink"] -= 1
            up["mtime"] = up["ctime"] = now
            txn.write("inodes", up)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        if forgotten:
            self.sharding.overrides.pop(norm, None)
        return result
