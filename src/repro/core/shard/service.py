"""The sharded metadata service: one shard of the partitioned tier.

Composes the layered subsystems of :mod:`repro.core.shard` into the
concrete service class (formerly the single ``ShardMetadataService`` of
the old ``repro/core/sharding.py`` monolith):

- :class:`~repro.core.shard.routing.ShardRoutingPart` — shard arithmetic,
  peer RPCs, forwards, read handlers;
- :class:`~repro.core.shard.replication.ShardReplicationPart` — skeleton
  replication and (serial or overlapped) mirror broadcasts;
- :class:`~repro.core.shard.coordination.ShardCoordinationPart` —
  intent/prepare/dedup records, cross-shard rename/link, migration;
- :class:`~repro.core.shard.rebalance.ShardRebalancePart` — online
  load-aware re-partitioning;
- :class:`~repro.core.shard.recovery.ShardRecoveryPart` — crash recovery
  and the tier-wide repair passes;

with :class:`~repro.core.metaservice.MetadataService` at the root of the
MRO supplying the transaction bodies every layer builds on.
"""

import itertools

from repro.core.metaservice import MetadataService
from repro.core.shard.coordination import ShardCoordinationPart
from repro.core.shard.rebalance import ShardRebalancePart
from repro.core.shard.recovery import ShardRecoveryPart
from repro.core.shard.replication import ShardReplicationPart
from repro.core.shard.routing import ShardRoutingPart


class ShardMetadataService(
    ShardRoutingPart,
    ShardReplicationPart,
    ShardCoordinationPart,
    ShardRebalancePart,
    ShardRecoveryPart,
    MetadataService,
):
    """One shard of the partitioned metadata tier.

    Extends :class:`MetadataService` with a shard identity, the replicated
    directory/symlink skeleton, forwarded resolves, the cross-shard
    rename/link protocols and online re-partitioning described in the
    package docstring.  Registered as ``cofsmds`` on its own machine, so
    shard-to-shard coordination uses the exact same simulated RPC path as
    client traffic.
    """

    def __init__(self, machine, config, shard_id, shard_machines, sharding,
                 policy=None, streams=None):
        self.shard_id = shard_id
        self.n_shards = len(shard_machines)
        self.shard_machines = shard_machines
        self.sharding = sharding
        self._local_only = False
        self._parent_walk = False
        #: rewritten path of the last local symlink retarget (scoped to
        #: one synchronous walk; see routing's ownership guard / readdir).
        self._walk_target = None
        #: suppresses the parent-walk ownership re-check for handlers
        #: that legitimately walk another shard's skeleton replica
        #: (replicated-rename bodies and their replays).
        self._skip_owner_guard = False
        #: optional :class:`repro.core.faults.CrashSchedule`; when set,
        #: every peer RPC send/receive becomes a crash boundary.
        self.faults = None
        #: allocator for intent-record ids (reseated on recovery).
        self._intent_seq = itertools.count(1)
        #: recovery epoch of this shard (mirrors the durable ``epochs``
        #: row for ``shard_id``; bumped atomically at the start of every
        #: recovery).  Coordinated operations capture it when they start
        #: and stamp it onto every record and peer RPC they issue.
        self.epoch = 0
        #: in-memory fence map, coordinator shard -> minimum live epoch
        #: (mirrors the durable ``epochs`` rows).  Records and RPCs from
        #: a coordinator with a smaller epoch are provably dead and are
        #: refused (:class:`~repro.core.shard.routing.EpochFenced`).
        self.fences = {shard_id: 0}
        #: ids of coordinator intents whose operation is still running on
        #: this shard (pure bookkeeping — models "is there a live process
        #: driving this transaction?", which recovery's completion pass
        #: asks before reclaiming a record it cannot fence by epoch).
        self._live_tids = set()
        #: admission gate: an Event while the local rebuild is in flight
        #: (incoming requests wait on it), None while serving.
        self._admission = None
        #: dead-member flag (set by the kill/partition fault hooks in
        #: :mod:`repro.core.faults`): a down member refuses every new
        #: dispatch with :class:`~repro.core.shard.routing.MemberDown`.
        #: In-flight handlers keep running — exactly the zombie window
        #: epoch fencing exists for.
        self.down = False
        #: the :class:`~repro.core.shard.replication.ReplicatedShard`
        #: group this service belongs to (None on unreplicated tiers).
        self.group = None
        super().__init__(machine, config, policy=policy, streams=streams)
        # Metrics and force spans from this node key on the shard id, not
        # the machine name.
        self.dbsvc.obs_shard = shard_id
        # The durable epoch row exists from birth (no simulated cost: it
        # rides the same bootstrap transaction path as the root inode and
        # is marked durable before the first client request).
        self.db.transaction(
            lambda txn: txn.insert(
                "epochs", {"shard": shard_id, "epoch": 0}))
        self.dbsvc.journal.mark_durable()
        # Vino allocation: stride-N classes keep shards collision-free while
        # every shard bootstraps the same replicated root as vino 1.
        start = self.shard_id + 1
        if self.shard_id == 0:
            start += self.n_shards  # vino 1 is the root, already allocated
        self._vino = itertools.count(start, self.n_shards)

    def _placement_stream(self):
        """Placement randomization: an independent stream per shard."""
        return f"cofs.placement.s{self.shard_id}"
