"""Recovery: tier-wide intent completion, resync, reconcile, reseat.

The crash-recovery layer of the sharded tier (formerly the *recovery* and
*tier-wide recovery passes* sections of the old ``repro/core/sharding.py``
monolith).  One shard's :meth:`ShardRecoveryPart.recover` — or the
module-level :func:`recover_tier` after a whole-tier crash — runs, in
order:

1. local journal rebuild + allocator reseat (``recover_local``);
2. :meth:`complete_tier_intents` — resolve every surviving
   intent/prepare/dedup record (roll committed operations forward,
   uncommitted back); must run *first*: a half-replicated change's
   surviving intent re-broadcasts it, whereas resyncing first would read
   it as divergence and erase both sides;
3. :meth:`~repro.core.shard.rebalance.ShardRebalancePart.restore_overrides`
   — rebuild the re-partitioning override map from its durable rows (the
   completed intents just re-installed any in-flight ones);
4. :meth:`resync_skeleton` — repair skeleton replicas against the
   authoritative owner (a shard restored from an older journal prefix);
5. :meth:`reconcile_tier_buckets` — recount placement counters from the
   surviving rows;
6. a second allocator reseat (completion can re-attach rows that
   travelled inside intent records, invisible to the first reseat).
"""

import itertools

from repro.pfs.errors import FsError
from repro.pfs.types import DIRECTORY, FILE, split


class ShardRecoveryPart:
    """Mixin: crash recovery of one shard plus the tier-wide passes."""

    def recover(self):
        """Coroutine: crash/recover this shard, then repair the tier.

        After the local rebuild (journal replay + allocator reseating,
        :meth:`recover_local`), this shard drives the tier-wide passes:
        resolve every open intent/prepare record (roll committed
        cross-shard operations forward, uncommitted ones back), restore
        the re-partitioning overrides, *then* resync the replicated
        skeleton (a shard restored from an older journal prefix may hold
        a stale replica set), and reconcile the placement counters
        against the surviving inode rows.  Intent completion must come
        first: a half-replicated rename's surviving intent re-broadcasts
        the replay, whereas resyncing first would read the
        half-replicated state as divergence and erase both sides of it.
        Every pass is idempotent — a crash *during* recovery is recovered
        from by simply recovering again.

        Recovery assumes a quiesced tier: the completion pass reads
        *every* shard's open intents and would resolve (abort) the
        intent of an operation still in flight on a healthy peer,
        racing its coordinator.  Real deployments fence with epochs or
        leases before admitting new operations; that machinery is a
        ROADMAP item, and the crash drills quiesce by construction (the
        injected crash kills the whole in-flight operation).
        """
        lost = yield from self.recover_local()
        yield from self.complete_tier_intents()
        yield from self.restore_overrides()
        yield from self.resync_skeleton()
        yield from self.reconcile_tier_buckets()
        # The completion pass can re-attach rows a rolled-back rename had
        # detached (they travelled inside the intent record, invisible to
        # the first reseat): reseat again against the settled tables.
        yield from self.reseat_allocators()
        return lost

    def recover_local(self):
        """Coroutine: rebuild this shard only, keeping its vino stride."""
        lost = yield from super().recover()
        yield from self.reseat_allocators()
        return lost

    def reseat_allocators(self):
        """Coroutine: reseat the vino and intent-id allocators.

        Cross-shard renames migrate inodes (with their vinos) to other
        shards, so the local tables alone under-estimate how far this
        shard's allocation class has advanced: the peers are asked for
        their highest vino in this class before the allocator reseats.
        The intent-id allocator reseats the same way (prepare and dedup
        records derived from this shard's ids live on peers).
        """
        base, step = self.shard_id + 1, self.n_shards
        vinos = [row["vino"] for row in self.db.table("inodes").all()]
        top = max(vinos) if vinos else 0
        seq = self._max_local_intent_seq()
        for shard in range(self.n_shards):
            if shard != self.shard_id:
                peak = yield from self._peer(
                    shard, "max_vino_in_class", base, step)
                top = max(top, peak)
                speak = yield from self._peer(
                    shard, "max_intent_seq", f"s{self.shard_id}.")
                seq = max(seq, speak)
        if top >= base:
            base += ((top - base) // step + 1) * step
        self._vino = itertools.count(base, step)
        self._intent_seq = itertools.count(seq + 1)
        return True

    def _max_local_intent_seq(self, prefix=None):
        """Highest intent sequence number with ``prefix`` in this table."""
        prefix = prefix or f"s{self.shard_id}."
        peak = 0
        for row in self.db.table("intents").all():
            base = row["id"].split("@")[0].split("#")[0]
            if base.startswith(prefix):
                try:
                    peak = max(peak, int(base[len(prefix):]))
                except ValueError:
                    pass
        return peak

    def max_vino_in_class(self, base, step):
        """RPC (shard-to-shard): highest local vino ≡ base (mod step)."""
        yield from self._dispatch()

        def body(txn):
            peak = 0
            for row in txn.match("inodes"):
                vino = row["vino"]
                if vino >= base and (vino - base) % step == 0:
                    peak = max(peak, vino)
            return peak

        peak = yield from self.dbsvc.execute(body)
        return peak

    def max_intent_seq(self, prefix):
        """RPC (shard-to-shard): highest intent seq with ``prefix`` here."""
        yield from self._dispatch()

        def body(txn):
            return self._max_local_intent_seq(prefix)

        peak = yield from self.dbsvc.execute(body)
        return peak

    # -- tier-wide recovery passes -----------------------------------------

    def resync_skeleton(self):
        """Coroutine: make every skeleton replica match its authority.

        The authoritative copy of the entry at path P lives on the shard
        owning P's parent's entries — the shard that coordinated its
        creation.  A shard that recovered from an older journal prefix
        may be missing newer entries (copy them in) or still hold entries
        whose authority lost them (remove them).  Runs *after* the intent
        completion pass, which already re-broadcast every half-finished
        replication — what remains diverging here is journal loss, and
        the authority's survived prefix is the truth.

        The per-shard ``skeleton_map`` gather is a read-only fan-out;
        with ``config.parallel_broadcasts`` the RPCs overlap (recovery
        latency is max, not sum, of the shard round trips).
        """
        maps = yield from self._gather_maps()
        auth = {}
        every = set()
        for view in maps:
            every.update(view)
        for path in sorted(every, key=lambda p: p.count("/")):
            row = maps[self._owner_of(path)].get(path)
            if row is None:
                continue  # the authority lost it: everyone drops it
            parent, _name = split(path)
            if parent != "/" and parent not in auth:
                continue  # orphaned subtree: its parent is gone
            auth[path] = row
        ordered = sorted(auth, key=lambda p: p.count("/"))
        structural = ("kind", "mode", "uid", "gid", "target")
        for shard in range(self.n_shards):
            local = maps[shard]
            adds, rewrites = [], []
            for path in ordered:
                row = auth[path]
                mine = local.get(path)
                if mine is None or mine["vino"] != row["vino"]:
                    # Missing — or a *different* object reused the path
                    # (divergent histories): replace, don't keep both.
                    adds.append((path, row))
                elif any(mine[f] != row[f] for f in structural):
                    rewrites.append((path, row))
            removes = sorted(
                (path for path, mine in local.items()
                 if path not in auth or auth[path]["vino"] != mine["vino"]),
                key=lambda p: -p.count("/"))
            if adds or removes or rewrites:
                yield from self._call_shard(
                    shard, "skeleton_apply", adds, removes, rewrites)
        return True

    def _gather_maps(self):
        """Coroutine: every shard's skeleton replica, in shard order."""
        if not self.config.parallel_broadcasts or self.n_shards <= 2:
            maps = []
            for shard in range(self.n_shards):
                maps.append(
                    (yield from self._call_shard(shard, "skeleton_map")))
            return maps
        local = yield from self.skeleton_map()
        procs = [
            self.sim.process(
                self._peer(shard, "skeleton_map"),
                name=f"skelmap-s{self.shard_id}to{shard}",
            )
            for shard in range(self.n_shards) if shard != self.shard_id
        ]
        remote = yield self.sim.all_of(procs)
        maps = []
        for shard in range(self.n_shards):
            if shard == self.shard_id:
                maps.append(local)
            else:
                maps.append(remote.pop(0))
        return maps

    def skeleton_map(self):
        """RPC (shard-to-shard): this shard's skeleton replica by path."""
        yield from self._dispatch()

        def body(txn):
            view = {}
            frontier = [("", self.root_vino)]
            while frontier:
                dir_path, dvino = frontier.pop()
                for dentry in txn.index_read("dentries", "parent", dvino):
                    if dentry.get("home") is not None:
                        continue
                    row = txn.read("inodes", dentry["vino"])
                    if row is None or row["kind"] == FILE:
                        continue
                    path = f"{dir_path}/{dentry['name']}"
                    view[path] = dict(row)
                    if row["kind"] == DIRECTORY:
                        frontier.append((path, row["vino"]))
            return view

        view = yield from self.dbsvc.execute(body)
        return view

    def skeleton_apply(self, adds, removes, rewrites):
        """RPC (shard-to-shard): reshape this replica to the authority.

        ``removes`` (deepest first) drop stale skeleton entries — along
        with any local file entries under a dropped directory, which are
        unreachable once the directory is gone everywhere.  ``adds``
        (shallowest first) copy in authoritative rows.  ``rewrites``
        overwrite same-vino rows whose attributes diverged (a lost
        setattr broadcast).  Directory link counts are recomputed from
        the final dentry set afterwards — authoritative rows already
        count children the same apply may add or remove, so incremental
        bookkeeping would double-count.  One transaction: a crash
        mid-resync leaves the old replica, and the next recovery resyncs
        again.
        """
        yield from self._dispatch()

        def body(txn):
            for path in removes:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                dentry = txn.read("dentries", (parent["vino"], name))
                if dentry is None:
                    continue
                self._invalidate_resolve(parent["vino"])
                txn.delete("dentries", (parent["vino"], name))
                row = txn.read("inodes", dentry["vino"])
                if row is not None:
                    if row["kind"] == DIRECTORY:
                        for child in txn.index_read(
                                "dentries", "parent", row["vino"]):
                            txn.delete("dentries", child["key"])
                            crow = txn.read("inodes", child["vino"])
                            if crow is not None and crow["kind"] == FILE \
                                    and child.get("home") is None:
                                txn.delete("inodes", crow["vino"])
                                if crow["upath"]:
                                    self._txn_bucket_adjust(
                                        txn, crow["upath"], -1)
                        self._invalidate_resolve(row["vino"])
                    txn.delete("inodes", row["vino"])
            for path, auth_row in adds:
                try:
                    parent, name = self._txn_resolve_parent(txn, path)
                except FsError:
                    continue
                if txn.read("dentries", (parent["vino"], name)) is not None:
                    continue
                txn.write("inodes", dict(auth_row))
                self._invalidate_resolve(parent["vino"])
                txn.insert("dentries", {
                    "key": (parent["vino"], name), "parent": parent["vino"],
                    "name": name, "vino": auth_row["vino"],
                })
            for _path, auth_row in rewrites:
                txn.write("inodes", dict(auth_row))
            self._txn_fix_dir_nlinks(txn)
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def _txn_fix_dir_nlinks(self, txn):
        """Recompute every directory's nlink (2 + subdirectories) from
        the transaction's final dentry set."""
        for row in txn.match("inodes"):
            if row["kind"] != DIRECTORY:
                continue
            subdirs = 0
            for dentry in txn.index_read("dentries", "parent", row["vino"]):
                if dentry.get("home") is not None:
                    continue
                child = txn.read("inodes", dentry["vino"])
                if child is not None and child["kind"] == DIRECTORY:
                    subdirs += 1
            if row["nlink"] != 2 + subdirs:
                fixed = dict(row)
                fixed["nlink"] = 2 + subdirs
                txn.write("inodes", fixed)

    def complete_tier_intents(self):
        """Coroutine: resolve every open coordination record tier-wide.

        Three idempotent passes: (A) every coordinator intent is rolled
        forward (its prepare record exists → the operation committed) or
        back; (B) surviving prepare records — their coordinator already
        committed and dropped its intent — redo their post-commit side
        effects (dedup-guarded) and retire; (C) dedup records whose
        operation is fully resolved are garbage-collected.  A crash at
        any point leaves records a re-run resolves the same way.
        """
        records = yield from self._gather_intents()
        parts = {rec["id"]: shard for shard, rec in records
                 if rec["role"] == "part"}
        for shard, rec in records:
            if rec["role"] != "coord":
                continue
            if rec["op"] == "rename":
                committed = self._part_id(rec["id"]) in parts
                yield from self._call_shard(
                    shard, "finish_rename_intent", rec, committed)
            elif rec["op"] == "link":
                # The intent is deleted atomically with the commit, so
                # its survival means abort: revert the bump if it landed.
                pshard = parts.get(self._part_id(rec["id"]))
                if pshard is not None:
                    yield from self._call_shard(
                        pshard, "link_abort", rec["id"], rec["now"])
                yield from self._call_shard(
                    shard, "intent_forget", rec["id"])
            else:
                yield from self._call_shard(shard, "redo_intent", rec)
        records = yield from self._gather_intents()
        for shard, rec in records:
            if rec["role"] != "part":
                continue
            if rec["op"] == "rename":
                yield from self._call_shard(shard, "redo_rename_part", rec)
            else:  # a committed link's prepare record: the bump stands
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        records = yield from self._gather_intents()
        live = {rec["id"].split("@")[0].split("#")[0]
                for _shard, rec in records if rec["role"] != "dedup"}
        for shard, rec in records:
            if rec["role"] == "dedup" and \
                    rec["id"].split("#")[0] not in live:
                yield from self._call_shard(shard, "intent_forget",
                                            rec["id"])
        return True

    def finish_rename_intent(self, rec, committed):
        """RPC (shard-to-shard): resolve a cross-shard rename intent here.

        Committed (the destination holds the prepare record): the detach
        stands, only the intent retires.  Aborted: re-attach the old name
        from the intent's payload — unless something already occupies it
        — atomically with the intent's deletion.
        """
        yield from self._dispatch()

        def body(txn):
            if txn.read("intents", rec["id"]) is None:
                return False
            if not committed:
                parent, name = self._txn_resolve_parent(txn, rec["old"])
                if txn.read("dentries", (parent["vino"], name)) is None:
                    self._txn_reattach(
                        txn, rec["old"], rec["row"], rec["stub"],
                        rec["now"])
            txn.delete("intents", rec["id"])
            return True

        result = yield from self.dbsvc.execute(self._local_body(body))
        return result

    def redo_intent(self, rec):
        """RPC (shard-to-shard): roll a coordinator intent forward here.

        Every redo is idempotent (mirror replays no-op when already
        applied; link drops are dedup-guarded; the rebalance migration
        converges), so the record is deleted only after its effects are
        re-applied.
        """
        op = rec["op"]
        if op == "mirror":
            yield from self._broadcast(rec["mirror"], *rec["args"])
            yield from self.intent_forget(rec["id"])
        elif op == "rename_post":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(pending, rec["now"], rec["id"])
            if rec["replaced_symlink"]:
                yield from self._broadcast(
                    "mirror_unlink", rec["new"], rec["now"])
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "rename_replicated":
            pending = [tuple(p) for p in rec["pending"]]
            yield from self._drain_pending(pending, rec["now"], rec["id"])
            yield from self._broadcast(
                "mirror_rename", rec["old"], rec["new"], rec["now"])
            if rec["kind"] == DIRECTORY:
                yield from self._migrate_renamed_subtree(
                    rec["vino"], rec["old"], rec["new"], rec["now"])
            yield from self.intent_forget(rec["id"])
            yield from self._forget_dedups(rec["id"], pending)
        elif op == "unlink_stub":
            dedup = self._dedup_id(rec["id"], rec["vino"])
            yield from self._peer(
                rec["home"], "unlink_vino", rec["vino"], rec["now"], dedup)
            yield from self.intent_forget(rec["id"])
            yield from self._peer(rec["home"], "intent_forget", dedup)
        elif op == "rebalance":
            yield from self.redo_rebalance(rec)
        return True

    def retire_rename_part(self, tid):
        """RPC (shard-to-shard): drop a committed install's prepare record
        and then its dedup guards (in that order: a crash in between
        leaves only garbage the completion pass collects)."""
        yield from self._dispatch()
        pid = self._part_id(tid)

        def body(txn):
            rec = txn.read("intents", pid)
            if rec is None:
                return None
            txn.delete("intents", pid)
            return [tuple(p) for p in rec["pending"]]

        pending = yield from self.dbsvc.execute(body)
        if pending:
            yield from self._forget_dedups(tid, pending)
        return True

    def redo_rename_part(self, rec):
        """RPC (shard-to-shard): redo a committed install's side effects.

        The prepare record survives only when the coordinator committed
        but the forget never arrived; the drains are dedup-guarded and
        the symlink-replica removal idempotent, so redoing is safe.  The
        record is deleted before its dedup guards so a crash between the
        deletions leaves only garbage pass C collects.
        """
        pending = [tuple(p) for p in rec["pending"]]
        tid = rec["id"].rsplit("@", 1)[0]
        yield from self._drain_pending(pending, rec["now"], tid)
        if rec["replaced_symlink"]:
            yield from self._broadcast(
                "mirror_unlink", rec["new"], rec["now"])
        yield from self.intent_forget(rec["id"])
        yield from self._forget_dedups(tid, pending)
        return True

    def reconcile_tier_buckets(self):
        """Coroutine: recount placement counters on every shard."""
        for shard in range(self.n_shards):
            yield from self._call_shard(shard, "reconcile_buckets")
        return True

    def reconcile_buckets(self):
        """RPC (shard-to-shard): recount this shard's placement counters
        from its surviving file rows (counters travel with inode rows;
        a crash between a migration's transactions can leave them a step
        behind — the recount is the authoritative repair)."""
        yield from self._dispatch()

        def body(txn):
            want = {}
            for row in txn.match("inodes"):
                if row["kind"] == FILE and row["upath"]:
                    bucket, _slash, _leaf = row["upath"].rpartition("/")
                    want[bucket] = want.get(bucket, 0) + 1
            changed = 0
            for brow in txn.match("buckets"):
                target = want.pop(brow["path"], 0)
                if brow["count"] != target:
                    fixed = dict(brow)
                    fixed["count"] = target
                    txn.write("buckets", fixed)
                    changed += 1
            for path, count in want.items():
                txn.write("buckets", {"path": path, "count": count})
                changed += 1
            return changed

        result = yield from self.dbsvc.execute(body)
        return result


# ---------------------------------------------------------------------------
# Tier-wide crash recovery
# ---------------------------------------------------------------------------

def recover_tier(shards):
    """Coroutine: recover a whole crashed tier.

    Rebuilds *every* shard from its durable journal prefix first — a
    whole-tier power failure leaves no live peer to ask — then runs the
    tier-wide repair passes (intent completion, override restore, skeleton
    resync, bucket reconciliation) exactly once, driven by shard 0.
    Single-shard crashes use :meth:`ShardRecoveryPart.recover`, which runs
    the same passes against the surviving peers' live tables.
    """
    lost = 0
    for shard in shards:
        lost += yield from shard.recover_local()
    driver = shards[0]
    yield from driver.complete_tier_intents()
    yield from driver.restore_overrides()
    yield from driver.resync_skeleton()
    yield from driver.reconcile_tier_buckets()
    for shard in shards:
        # intent completion may have re-attached rows that travelled
        # inside intent records; reseat against the settled tables.
        yield from shard.reseat_allocators()
    return lost
